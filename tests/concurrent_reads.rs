//! Snapshot isolation under concurrency: many reader threads execute
//! against pinned [`Snapshot`]s while a writer commits new epochs, and
//! every result must be byte-identical to a quiet single-threaded run of
//! the same query at the same epoch.
//!
//! Two layers:
//!
//! * a threaded battery — N readers in a loop, each taking a fresh
//!   snapshot per statement through the real serving path
//!   ([`Session::query_snapshot`]), racing one writer that commits a
//!   visible mutation per epoch and records the single-threaded answer
//!   for each epoch it publishes;
//! * a ≥256-case property test over *random mutation interleavings* —
//!   snapshots pinned at arbitrary points of a random op sequence must
//!   replay to exactly the value a fresh database fed the same op prefix
//!   produces, even after every later op has run.

use monoid_db::calculus::symbol::Symbol;
use monoid_db::calculus::value::Value;
use monoid_db::store::{travel, Database, Snapshot, TravelScale};
use monoid_db::{Params, Session};
use proptest::prelude::*;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Counting query whose answer changes whenever the writer inserts a
/// city: the readers' probe.
const COUNT_CITIES: &str = "count(Cities)";

fn db(seed: u64) -> Database {
    travel::generate(TravelScale::tiny(), seed)
}

fn city(name: &str) -> Value {
    Value::record_from(vec![
        ("name", Value::str(name)),
        ("hotels", Value::list(vec![])),
        ("hotel#", Value::Int(0)),
    ])
}

/// The single-threaded oracle: execute `src` against a snapshot with a
/// private cold session — no shared cache, no other threads.
fn oracle(snap: &Snapshot, src: &str) -> Value {
    let session = Session::with_cache(Arc::new(monoid_db::PlanCache::new()));
    session.query_snapshot(snap, src, &Params::new()).expect("oracle query executes")
}

// ---------------------------------------------------------------------
// Threaded battery
// ---------------------------------------------------------------------

/// N readers race one writer. The writer publishes, for every epoch it
/// commits, the single-threaded answer at that epoch; each reader
/// observation (epoch, value) must match the published answer exactly.
#[test]
fn concurrent_readers_see_single_threaded_answers() {
    const READERS: usize = 8;
    const WRITES: usize = 40;
    const READS_PER_READER: usize = 60;

    let database = Arc::new(RwLock::new(db(11)));
    // epoch → the quiet single-threaded answer at that epoch.
    let expected: Arc<Mutex<HashMap<u64, Value>>> = Arc::new(Mutex::new(HashMap::new()));
    {
        let d = database.read().unwrap();
        let snap = d.snapshot();
        expected.lock().unwrap().insert(snap.epoch(), oracle(&snap, COUNT_CITIES));
    }

    let writer = {
        let database = Arc::clone(&database);
        let expected = Arc::clone(&expected);
        std::thread::spawn(move || {
            for i in 0..WRITES {
                let snap = {
                    let mut d = database.write().unwrap();
                    d.insert(Symbol::new("City"), city(&format!("w{i}"))).unwrap();
                    d.snapshot()
                };
                // Publish the oracle answer for the epoch just committed
                // *outside* the write lock — readers race the map, which
                // is exactly the point: an observation is only checked
                // against its own epoch's entry.
                let value = oracle(&snap, COUNT_CITIES);
                expected.lock().unwrap().insert(snap.epoch(), value);
            }
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let database = Arc::clone(&database);
            std::thread::spawn(move || {
                let session = Session::new();
                let mut seen = Vec::with_capacity(READS_PER_READER);
                for _ in 0..READS_PER_READER {
                    let snap = database.read().unwrap().snapshot();
                    let value = session
                        .query_snapshot(&snap, COUNT_CITIES, &Params::new())
                        .expect("snapshot read executes");
                    seen.push((snap.epoch(), value));
                }
                seen
            })
        })
        .collect();

    let observations: Vec<(u64, Value)> =
        readers.into_iter().flat_map(|r| r.join().expect("reader thread completes")).collect();
    writer.join().expect("writer thread completes");

    assert_eq!(observations.len(), READERS * READS_PER_READER);
    let expected = expected.lock().unwrap();
    let mut epochs_seen = std::collections::BTreeSet::new();
    for (epoch, value) in &observations {
        let want = expected
            .get(epoch)
            .unwrap_or_else(|| panic!("reader observed unpublished epoch {epoch}"));
        assert_eq!(value, want, "epoch {epoch}: concurrent read diverged from oracle");
        epochs_seen.insert(*epoch);
    }
    // Sanity on the harness itself: the counting query really does move
    // with the writer, so equality above is not vacuous.
    let values: std::collections::BTreeSet<i64> = observations
        .iter()
        .map(|(_, v)| match v {
            Value::Int(n) => *n,
            other => panic!("count query returned {other:?}"),
        })
        .collect();
    assert!(!epochs_seen.is_empty());
    assert_eq!(
        expected.len(),
        WRITES + 1,
        "every committed epoch published exactly one oracle answer"
    );
    // The final epoch's answer reflects all WRITES inserts.
    let last = expected.keys().max().unwrap();
    let first = expected.keys().min().unwrap();
    let base = match expected[first] {
        Value::Int(n) => n,
        ref other => panic!("count query returned {other:?}"),
    };
    assert_eq!(expected[last], Value::Int(base + WRITES as i64));
    assert!(values.iter().all(|n| (base..=base + WRITES as i64).contains(n)));
}

/// Readers pinned to one snapshot keep answering from it while the
/// writer commits arbitrarily many epochs past them — and unshared COW
/// storage means the live database and the pinned snapshot evolve
/// independently.
#[test]
fn pinned_snapshots_never_observe_later_commits() {
    let database = Arc::new(RwLock::new(db(13)));
    let pinned = database.read().unwrap().snapshot();
    let before = oracle(&pinned, COUNT_CITIES);

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let pinned = pinned.clone();
            let before = before.clone();
            let database = Arc::clone(&database);
            std::thread::spawn(move || {
                let session = Session::new();
                for i in 0..50 {
                    if i % 5 == 0 {
                        let mut d = database.write().unwrap();
                        let n = d.mutation_epoch();
                        d.set_root("Scratch", Value::Int(n as i64));
                        d.insert(Symbol::new("City"), city(&format!("p{n}"))).unwrap();
                    }
                    let v = session
                        .query_snapshot(&pinned, COUNT_CITIES, &Params::new())
                        .expect("pinned read executes");
                    assert_eq!(v, before, "pinned snapshot drifted");
                }
            })
        })
        .collect();
    for r in readers {
        r.join().expect("pinned reader completes");
    }

    // The live database really did move on.
    let live = database.read().unwrap().snapshot();
    assert!(live.epoch() > pinned.epoch());
    assert_ne!(oracle(&live, COUNT_CITIES), before);
    // And the pinned snapshot still answers from its own epoch.
    assert_eq!(oracle(&pinned, COUNT_CITIES), before);
}

// ---------------------------------------------------------------------
// Property test: random mutation interleavings
// ---------------------------------------------------------------------

/// One step of a random history.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh city into the extent.
    InsertCity,
    /// Clobber a scratch root (epoch bump without touching the extent).
    SetScratch(i64),
    /// Pin a snapshot here.
    Pin,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::InsertCity),
        (-100i64..100).prop_map(Op::SetScratch),
        Just(Op::Pin),
    ]
}

/// Replay `ops[..k]` into a fresh database and return the oracle answers
/// at that point.
fn replay(seed: u64, ops: &[Op]) -> (Value, Value) {
    let mut d = db(seed);
    let mut inserted = 0usize;
    for op in ops {
        apply(&mut d, op, &mut inserted);
    }
    let snap = d.snapshot();
    (oracle(&snap, COUNT_CITIES), oracle(&snap, "sum(select c.hotel# from c in Cities)"))
}

fn apply(d: &mut Database, op: &Op, inserted: &mut usize) {
    match op {
        Op::InsertCity => {
            d.insert(Symbol::new("City"), city(&format!("gen{inserted}"))).unwrap();
            *inserted += 1;
        }
        Op::SetScratch(n) => d.set_root("Scratch", Value::Int(*n)),
        Op::Pin => {}
    }
}

proptest! {
    // ≥256 interleavings, as the battery demands.
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Snapshots pinned at arbitrary points of a random mutation history
    /// answer — *after the whole history has run* — exactly what a fresh
    /// database fed the same prefix answers. COW isolation holds at
    /// every interleaving, not just the ones the threaded battery
    /// happens to hit.
    #[test]
    fn random_interleavings_preserve_pinned_answers(
        seed in 0u64..64,
        ops in prop::collection::vec(op(), 1..24),
    ) {
        let mut d = db(seed);
        let mut inserted = 0usize;
        let mut pins: Vec<(usize, Snapshot)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            if matches!(op, Op::Pin) {
                pins.push((i, d.snapshot()));
            }
            apply(&mut d, op, &mut inserted);
        }
        // Pin the final state too, so every run checks at least one.
        pins.push((ops.len(), d.snapshot()));

        for (prefix_len, snap) in &pins {
            let (want_count, want_sum) = replay(seed, &ops[..*prefix_len]);
            prop_assert_eq!(&oracle(snap, COUNT_CITIES), &want_count);
            prop_assert_eq!(
                &oracle(snap, "sum(select c.hotel# from c in Cities)"),
                &want_sum
            );
            // Epochs pinned earlier never exceed the live epoch.
            prop_assert!(snap.epoch() <= d.mutation_epoch());
        }
    }
}
