//! End-to-end tests for the static query analyzer: the umbrella
//! `analyze` API over OQL source, lint codes on calculus terms, the
//! stage-tagged verifier errors, and JSON quoting edge cases in the
//! analyzer's machine-readable output.

use monoid_db::analyze;
use monoid_db::calculus::analysis::{
    lint, AnalysisReport, Code, Diagnostic, EffectSummary, Severity,
};
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::store::travel;

fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

// -------------------------------------------------------------------------
// The umbrella analyze() path: OQL in, spanned diagnostics out.
// -------------------------------------------------------------------------

#[test]
fn clean_query_reports_no_diagnostics() {
    let schema = travel::schema();
    let report = analyze(
        &schema,
        "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'",
    )
    .unwrap();
    assert!(report.diagnostics.is_empty(), "got {:?}", report.diagnostics);
    assert!(report.effects.is_pure());
    assert!(report.effects.parallel_safe());
    assert!(report.effects.reads_extents());
    assert_eq!(report.max_severity(), None);
}

#[test]
fn unused_generator_is_flagged_with_its_source_position() {
    let schema = travel::schema();
    let report =
        analyze(&schema, "select c.name\nfrom c in Cities, h in Hotels").unwrap();
    // `h` is unused (MC001); the independent second generator also makes
    // the query a join, which the fused engine refuses (MC009, info). No
    // MC007: an *unused* cross-product side is MC001's business.
    assert_eq!(codes(&report.diagnostics), vec!["MC001", "MC009"]);
    let d = &report.diagnostics[0];
    assert!(d.message.contains('h'), "{d}");
    let span = d.span.expect("front end recorded the binder position");
    assert_eq!(span.line, 2, "the `h` binder is on line 2");
    let fallback = &report.diagnostics[1];
    assert_eq!(fallback.severity, Severity::Info);
    assert!(fallback.message.contains("join"), "{fallback}");
}

#[test]
fn constant_predicate_and_shadowing_are_flagged() {
    let schema = travel::schema();
    let report =
        analyze(&schema, "select h.name from h in Hotels where h.name = h.name").unwrap();
    assert!(codes(&report.diagnostics).contains(&"MC002"), "{:?}", report.diagnostics);

    let report = analyze(
        &schema,
        "select (select c.name from c in Cities) from c in Cities",
    )
    .unwrap();
    assert!(codes(&report.diagnostics).contains(&"MC003"), "{:?}", report.diagnostics);
    assert_eq!(report.max_severity(), Some(Severity::Warning));
}

/// `$param` predicates are *not* constant — their value arrives at
/// execution time — so a parameterized query lints clean: no MC002 on
/// `c.name = $city`, and no other false positives across the analyzer.
#[test]
fn parameterized_predicates_are_not_constant() {
    let schema = travel::schema();
    let report = analyze(
        &schema,
        "select h.name from c in Cities, h in c.hotels \
         where c.name = $city and $beds <= $beds",
    )
    .unwrap();
    // Even `$beds <= $beds` stays unflagged: two occurrences of one
    // placeholder are the same unknown, but the analyzer must not guess.
    assert!(report.diagnostics.is_empty(), "got {:?}", report.diagnostics);
    assert!(report.effects.is_pure(), "placeholders are pure leaves");
    assert!(report.effects.parallel_safe());
}

// -------------------------------------------------------------------------
// The inference lints MC007–MC009: spans pinned to the offending source
// position, and diagnostic stability under `parse ∘ unparse`.
// -------------------------------------------------------------------------

#[test]
fn cross_product_is_flagged_at_the_generator() {
    let schema = travel::schema();
    let report = analyze(
        &schema,
        "select struct(city: c.name, hotel: h.name)\nfrom c in Cities, h in Hotels",
    )
    .unwrap();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::CrossProduct)
        .expect("MC007 for an unlinked, used generator");
    assert_eq!(d.severity, Severity::Warning);
    assert!(d.message.contains("`h`"), "{d}");
    let span = d.span.expect("MC007 anchors at the binder");
    assert_eq!((span.line, span.col), (2, 19), "the `h` binder position");
}

#[test]
fn statically_empty_predicate_is_flagged_at_the_where_clause() {
    let schema = travel::schema();
    let report = analyze(
        &schema,
        "select h.name from h in Hotels\nwhere h.name = 'A' and h.name = 'B'",
    )
    .unwrap();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::StaticallyEmpty)
        .expect("MC008 for contradictory conjuncts");
    assert_eq!(d.severity, Severity::Warning);
    let span = d.span.expect("MC008 anchors at the predicate");
    assert_eq!((span.line, span.col), (2, 7), "first token of the predicate");
}

#[test]
fn fused_fallback_is_flagged_with_the_refusal_reason() {
    let schema = travel::schema();
    let report = analyze(
        &schema,
        "select h.name\nfrom c in Cities, h in Hotels where c.name = h.name",
    )
    .unwrap();
    let d = report
        .diagnostics
        .iter()
        .find(|d| d.code == Code::FusedFallback)
        .expect("MC009 for a join query");
    assert_eq!(d.severity, Severity::Info);
    assert!(d.message.contains("independent generator `h`"), "{d}");
    let span = d.span.expect("MC009 anchors at the refusing construct");
    assert_eq!((span.line, span.col), (2, 19), "the `h` binder position");
}

/// Exemplar diagnostics are stable under `parse ∘ unparse`: re-rendering
/// an exemplar to OQL text and re-analyzing it yields the same codes in
/// the same order (spans may move — the rendering is one line).
#[test]
fn exemplar_diagnostics_survive_parse_unparse() {
    let schema = travel::schema();
    for entry in std::fs::read_dir(concat!(env!("CARGO_MANIFEST_DIR"), "/examples/oql")).unwrap()
    {
        let path = entry.unwrap().path();
        let src = std::fs::read_to_string(&path).unwrap();
        let before = analyze(&schema, &src).unwrap();
        let reprinted = monoid_db::oql::unparse(&monoid_db::oql::parse_query(&src).unwrap());
        let after = analyze(&schema, &reprinted).unwrap();
        assert_eq!(
            codes(&before.diagnostics),
            codes(&after.diagnostics),
            "diagnostics moved under parse∘unparse of {path:?}:\n{reprinted}"
        );
    }
}

// -------------------------------------------------------------------------
// Calculus-level lints the OQL front end cannot express.
// -------------------------------------------------------------------------

#[test]
fn mutating_query_gets_mc005_with_the_reason() {
    // all{ e := ⟨…⟩ | e ← Employees } — hand-built; OQL has no `:=`.
    let e = Expr::comp(
        Monoid::All,
        Expr::var("e").assign(Expr::record(vec![
            ("name", Expr::var("e").proj("name")),
            ("salary", Expr::int(1)),
        ])),
        vec![Expr::gen("e", Expr::var("Employees"))],
    );
    let diags = lint(&e);
    let d = diags
        .iter()
        .find(|d| d.code == Code::NotParallelizable)
        .expect("MC005 for a mutating query");
    assert!(d.message.contains(":="), "reason names the obstacle: {d}");
    assert!(!EffectSummary::of(&e).parallel_safe());
}

#[test]
fn generator_free_comprehension_gets_mc005() {
    let e = Expr::comp(Monoid::Sum, Expr::int(1), vec![Expr::pred(Expr::bool(true))]);
    let diags = lint(&e);
    let d = diags
        .iter()
        .find(|d| d.code == Code::NotParallelizable)
        .expect("MC005 for a generator-free query");
    assert!(d.message.contains("no generators"), "{d}");
}

#[test]
fn illegal_hom_near_miss_gets_mc006_with_fix_hint() {
    // list{ x | x ← set(1,2) } — set into list breaks the C/I restriction.
    let e = Expr::comp(
        Monoid::List,
        Expr::var("x"),
        vec![Expr::gen("x", Expr::CollLit(Monoid::Set, vec![Expr::int(1), Expr::int(2)]))],
    );
    let diags = lint(&e);
    let d = diags
        .iter()
        .find(|d| d.code == Code::IllegalHom)
        .expect("MC006 for a set generator in a list comprehension");
    assert_eq!(d.severity, Severity::Error);
    assert!(
        d.note.as_deref().is_some_and(|n| n.contains("to_bag")),
        "fix hint suggests the documented coercion: {d}"
    );
}

// -------------------------------------------------------------------------
// Stage-tagged verifier errors through the public APIs.
// -------------------------------------------------------------------------

#[test]
fn plan_verifier_reports_stage_tagged_errors() {
    use monoid_db::algebra::{plan_comprehension, verify_query, Plan};
    use monoid_db::store::TravelScale;
    let db = travel::generate(TravelScale::tiny(), 5);
    let pure = Expr::comp(
        Monoid::Bag,
        Expr::var("c").proj("name"),
        vec![Expr::gen("c", Expr::var("Cities"))],
    );
    let mut query = plan_comprehension(&pure).unwrap();
    assert!(verify_query(&query, &db).is_ok());
    query.plan = Plan::Filter {
        input: Box::new(query.plan.clone()),
        pred: Expr::var("c").assign(Expr::int(0)),
    };
    let err = verify_query(&query, &db).unwrap_err();
    assert_eq!(err.stage, "plan/effects");
    assert!(err.to_string().contains("plan/effects"), "{err}");
}

// -------------------------------------------------------------------------
// JSON quoting edge cases: analyzer and profiler output must escape
// quotes, backslashes, and newlines through the shared json module.
// -------------------------------------------------------------------------

#[test]
fn analysis_report_json_escapes_hostile_strings() {
    let report = AnalysisReport {
        effects: EffectSummary::of(&Expr::int(1)),
        diagnostics: vec![Diagnostic {
            code: Code::ConstantPredicate,
            severity: Severity::Warning,
            span: None,
            message: "has \"quotes\" and \\slashes\\".to_string(),
            note: Some("line one\nline two\ttabbed".to_string()),
        }],
    };
    let rendered = report.to_json().render();
    assert!(rendered.contains(r#"has \"quotes\" and \\slashes\\"#), "{rendered}");
    assert!(rendered.contains(r"line one\nline two\ttabbed"), "{rendered}");
    assert!(!rendered.contains('\n'), "raw newline leaked into JSON: {rendered}");
}

#[test]
fn profile_json_escapes_string_literals_in_heads() {
    use monoid_db::store::TravelScale;
    let mut db = travel::generate(TravelScale::tiny(), 5);
    // The head contains a string literal with a quote and a backslash;
    // the profile serializes the pretty-printed head, which must escape.
    let src = r#"select 'quote " and \ slash' from h in Hotels"#;
    let analysis = monoid_db::explain_analyze(src, &mut db).unwrap();
    let rendered = analysis.profile.to_json().render();
    assert!(!rendered.contains('\n'), "raw newline leaked into JSON");
    // Every `"` inside the rendered JSON string values must be escaped:
    // strip legal escapes, then no bare quote may remain between the
    // structural ones. A cheap proxy: the rendered text must still split
    // into an even number of unescaped quotes.
    let unescaped_quotes = rendered
        .as_bytes()
        .iter()
        .enumerate()
        .filter(|(i, b)| **b == b'"' && (*i == 0 || rendered.as_bytes()[i - 1] != b'\\'))
        .count();
    assert_eq!(unescaped_quotes % 2, 0, "unbalanced quoting: {rendered}");
}
