//! E3 — the §3.1 normalization derivations, end to end: OQL source →
//! calculus → Table-3 rewriting → the paper's canonical form, literally.

use monoid_db::calculus::expr::{Expr, Qual};
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::normalize::{is_canonical, normalize, normalize_traced, Rule};
use monoid_db::calculus::pretty::pretty;
use monoid_db::oql::compile;
use monoid_db::store::travel::{self, TravelScale};

/// The paper's Portland query: the nested OQL form normalizes to
/// `bag{ h.name | c ← Cities, h ← c.hotels, r ← h.rooms, … }` via the
/// flatten + bind rules ("rules 4 and 5" in the paper's numbering).
#[test]
fn portland_derivation() {
    let schema = travel::schema();
    let q = compile(
        &schema,
        "select h.name \
         from h in (select h2 from c in Cities, h2 in c.hotels \
                    where c.name = 'Portland'), \
              r in h.rooms \
         where r.bed# = 3",
    )
    .unwrap();
    let (n, trace, _) = normalize_traced(&q);
    // The rules that fire are exactly flatten-generator then bind-inline.
    let rules: Vec<Rule> = trace.iter().map(|t| t.rule).collect();
    assert_eq!(rules, vec![Rule::FlattenGen, Rule::BindInline]);
    // The canonical form is one flat comprehension with three generators
    // over simple paths and two predicates.
    let Expr::Comp { monoid, quals, .. } = &n else { panic!("not a comp") };
    assert_eq!(*monoid, Monoid::Bag);
    let gens = quals.iter().filter(|q| matches!(q, Qual::Gen(..))).count();
    let preds = quals.iter().filter(|q| matches!(q, Qual::Pred(..))).count();
    assert_eq!((gens, preds), (3, 2));
    assert!(is_canonical(&n));
    assert_eq!(
        pretty(&n),
        "bag{ h2.name | c ← Cities, h2 ← c.hotels, c.name = \"Portland\", \
         r ← h2.rooms, r.bed# = 3 }"
    );
}

/// The exists-unnesting derivation (rule N6) used by benchmark B1.
#[test]
fn exists_unnesting_derivation() {
    let schema = travel::schema();
    let q = compile(
        &schema,
        "select distinct cl.name from cl in Clients \
         where exists c in Cities: c.name in cl.preferred",
    )
    .unwrap();
    let (n, trace, _) = normalize_traced(&q);
    assert!(
        trace.iter().any(|t| t.rule == Rule::ExistsFilter),
        "N6 must fire: {:?}",
        trace.iter().map(|t| t.rule).collect::<Vec<_>>()
    );
    // Two exists levels: `in` is itself a some-comprehension.
    let Expr::Comp { quals, .. } = &n else { panic!() };
    let gens = quals.iter().filter(|q| matches!(q, Qual::Gen(..))).count();
    assert_eq!(gens, 3, "cl, c, and the membership witness: {}", pretty(&n));
    assert!(is_canonical(&n));
}

/// Every rule of our Table 3 is exercised by at least one scheme, and each
/// rewrite preserves meaning (checked by evaluation).
#[test]
fn each_rule_fires_on_its_scheme() {
    use monoid_db::calculus::eval::eval_closed;
    let xs = || Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)]);
    let cases: Vec<(Rule, Expr)> = vec![
        (
            Rule::Beta,
            Expr::lambda("x", Expr::var("x").add(Expr::int(1))).apply(Expr::int(1)),
        ),
        (
            Rule::Proj,
            Expr::record(vec![("a", Expr::int(1))]).proj("a"),
        ),
        (
            Rule::ZeroGen,
            Expr::comp(
                Monoid::Sum,
                Expr::var("x"),
                vec![Expr::gen("x", Expr::list_of(vec![]))],
            ),
        ),
        (
            Rule::SingletonGen,
            Expr::comp(
                Monoid::Sum,
                Expr::var("x"),
                vec![Expr::gen("x", Expr::list_of(vec![Expr::int(9)]))],
            ),
        ),
        (
            Rule::FlattenGen,
            Expr::comp(
                Monoid::Set,
                Expr::var("x"),
                vec![Expr::gen(
                    "x",
                    Expr::comp(Monoid::List, Expr::var("y"), vec![Expr::gen("y", xs())]),
                )],
            ),
        ),
        (
            Rule::ExistsFilter,
            Expr::comp(
                Monoid::Set,
                Expr::var("x"),
                vec![
                    Expr::gen("x", xs()),
                    Expr::pred(Expr::comp(
                        Monoid::Some,
                        Expr::var("y").eq(Expr::var("x")),
                        vec![Expr::gen("y", xs())],
                    )),
                ],
            ),
        ),
        (
            Rule::BindInline,
            Expr::comp(
                Monoid::Sum,
                Expr::var("y"),
                vec![Expr::gen("x", xs()), Expr::bind("y", Expr::var("x").mul(Expr::int(2)))],
            ),
        ),
        (
            Rule::MergeGen,
            Expr::comp(
                Monoid::Sum,
                Expr::var("x"),
                vec![Expr::gen("x", Expr::merge(Monoid::List, xs(), xs()))],
            ),
        ),
        (
            Rule::AndSplit,
            Expr::comp(
                Monoid::Sum,
                Expr::var("x"),
                vec![
                    Expr::gen("x", xs()),
                    Expr::pred(
                        Expr::var("x").gt(Expr::int(0)).and(Expr::var("x").lt(Expr::int(3))),
                    ),
                ],
            ),
        ),
        (
            Rule::TruePred,
            Expr::comp(
                Monoid::Sum,
                Expr::var("x"),
                vec![Expr::gen("x", xs()), Expr::pred(Expr::bool(true))],
            ),
        ),
        (
            Rule::FalsePred,
            Expr::comp(
                Monoid::Sum,
                Expr::var("x"),
                vec![Expr::gen("x", xs()), Expr::pred(Expr::bool(false))],
            ),
        ),
        (
            Rule::LetInline,
            Expr::let_("k", Expr::int(5), Expr::var("k").add(Expr::var("k"))),
        ),
        (
            Rule::HomToComp,
            Expr::hom(Monoid::Sum, "x", Expr::var("x"), xs()),
        ),
        (
            Rule::IfPredSplit,
            Expr::comp(
                Monoid::Sum,
                Expr::var("x"),
                vec![
                    Expr::gen("x", xs()),
                    Expr::pred(Expr::if_(
                        Expr::var("x").gt(Expr::int(1)),
                        Expr::var("x").lt(Expr::int(3)),
                        Expr::bool(false),
                    )),
                ],
            ),
        ),
    ];
    for (rule, e) in cases {
        let (n, trace, _) = normalize_traced(&e);
        assert!(
            trace.iter().any(|t| t.rule == rule),
            "{rule} did not fire on {} (fired: {:?})",
            pretty(&e),
            trace.iter().map(|t| t.rule).collect::<Vec<_>>()
        );
        assert!(is_canonical(&n), "not canonical after {rule}: {}", pretty(&n));
        assert_eq!(
            eval_closed(&e).unwrap(),
            eval_closed(&n).unwrap(),
            "{rule} changed the meaning of {}",
            pretty(&e)
        );
    }
}

/// Normalization is idempotent over a whole battery of OQL queries, and
/// the normalized form always evaluates identically on a real database.
#[test]
fn battery_of_queries_normalize_soundly() {
    let mut db = travel::generate(TravelScale::tiny(), 31);
    let sources = [
        "select c.name from c in Cities",
        "select distinct r.bed# from h in Hotels, r in h.rooms",
        "count(select h from c in Cities, h in c.hotels where c.hotel# > 1)",
        "select h.name from h in Hotels where exists r in h.rooms: r.price < 100",
        "avg(select r.price from h in Hotels, r in h.rooms)",
        "select struct(n: c.name, k: count(c.hotels)) from c in Cities",
        "select c.name from c in Cities order by c.name desc",
        "select struct(b: b, n: count(partition)) \
         from h in Hotels, r in h.rooms group by b: r.bed#",
        "flatten(select h.facilities from h in Hotels)",
        "select e.name from h in Hotels, e in h.employees where e.salary > 40000",
    ];
    for src in sources {
        let q = compile(db.schema(), src).unwrap();
        let n1 = normalize(&q);
        let n2 = normalize(&n1);
        assert_eq!(n1, n2, "normalize not idempotent on `{src}`");
        assert!(is_canonical(&n1), "`{src}` not canonical: {}", pretty(&n1));
        let direct = db.query(&q).unwrap();
        let normd = db.query(&n1).unwrap();
        assert_eq!(direct, normd, "meaning changed for `{src}`");
    }
}

/// Normalization shrinks or preserves the number of comprehension levels:
/// no generator ranges over a comprehension in a canonical term.
#[test]
fn canonical_forms_have_no_nested_generators() {
    let schema = travel::schema();
    let q = compile(
        &schema,
        "select r.price from r in \
           (select r2 from h in \
              (select h2 from c in Cities, h2 in c.hotels), \
            r2 in h.rooms) \
         where r.price > 50",
    )
    .unwrap();
    let n = normalize(&q);
    fn no_comp_generators(e: &Expr) -> bool {
        let mut ok = true;
        e.visit(&mut |node| {
            if let Expr::Comp { quals, .. } = node {
                for q in quals {
                    if let Qual::Gen(_, src) = q {
                        if matches!(src, Expr::Comp { .. }) {
                            ok = false;
                        }
                    }
                }
            }
        });
        ok
    }
    assert!(no_comp_generators(&n), "{}", pretty(&n));
}
