//! End-to-end `EXPLAIN ANALYZE` coverage: full-lifecycle profiles for OQL
//! queries over the company store, including the acceptance shape (a join
//! with per-operator actual rows, per-phase timings, and estimated vs
//! actual cardinalities side by side) and short-circuit accounting for
//! `some`/`all` reductions.

use monoid_calculus::trace::Phase;
use monoid_db::explain_analyze;
use monoid_store::company;

#[test]
fn company_join_profile_has_phases_operators_and_estimates() {
    let mut db = company::generate(6, 15, 10, 42);
    let src = "select struct(mgr: m.name, emp: e.name) \
               from m in Managers, e in CompanyEmployees \
               where m.dept = e.dept";
    let analysis = explain_analyze(src, &mut db).unwrap();
    let p = &analysis.profile;
    let rendered = p.render();

    // Every lifecycle phase is timed: parse, translate, normalize,
    // optimize, plan, execute.
    for phase in [
        Phase::Parse,
        Phase::Translate,
        Phase::Normalize,
        Phase::Optimize,
        Phase::Plan,
        Phase::Execute,
    ] {
        assert!(
            p.trace.phase_nanos(phase).is_some(),
            "missing phase {phase}:\n{rendered}"
        );
    }
    assert!(p.trace.total_nanos() > 0);
    assert!(p.trace.normalize.is_some(), "normalize stats attached");

    // The dept equality across independent extents becomes a hash join
    // whose profile reports actual rows, build size, and an estimate.
    let join = p
        .operators
        .iter()
        .find(|o| o.label.contains("Join"))
        .unwrap_or_else(|| panic!("no join operator:\n{rendered}"));
    assert!(join.actual_rows > 0, "{rendered}");
    assert!(join.build_rows > 0, "{rendered}");
    assert!(join.estimated_rows > 0.0, "{rendered}");

    // Scans report the true extent sizes, and estimates sit next to
    // actuals on every operator line.
    let scans: Vec<_> = p
        .operators
        .iter()
        .filter(|o| o.label.starts_with("Scan"))
        .collect();
    assert_eq!(scans.len(), 2, "{rendered}");
    let mut scan_rows: Vec<u64> = scans.iter().map(|o| o.actual_rows).collect();
    scan_rows.sort_unstable();
    assert_eq!(
        scan_rows,
        vec![
            db.extent_len(company::names::MANAGERS) as u64,
            db.extent_len(company::names::EMPLOYEES) as u64,
        ]
    );
    for scan in &scans {
        assert_eq!(
            scan.estimated_rows, scan.actual_rows as f64,
            "extent sizes are known exactly:\n{rendered}"
        );
    }
    assert!(rendered.contains("est≈"), "{rendered}");
    assert!(rendered.contains("actual"), "{rendered}");

    // Rows reaching the reduction match the join output.
    assert_eq!(p.rows_to_reduce, join.actual_rows);
    assert!(!p.short_circuited);

    // The JSON profile carries the same data.
    let json = p.to_json().render();
    for key in [
        "\"phases\"",
        "\"operators\"",
        "\"estimated_rows\"",
        "\"actual_rows\"",
        "\"rows_to_reduce\"",
        "\"normalize\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("select struct"), "source text embedded: {json}");
}

#[test]
fn some_over_large_extent_short_circuits_and_reports_it() {
    // 8 managers × 25 reports = 200 employees; every salary clears the
    // generator's 40k floor, so `exists` must stop at the first row.
    let mut db = company::generate(8, 25, 0, 7);
    let extent = db.extent_len(company::names::EMPLOYEES) as u64;
    assert!(extent >= 200);

    let src = "exists e in CompanyEmployees: e.salary >= 40000";
    let analysis = explain_analyze(src, &mut db).unwrap();
    assert_eq!(analysis.value, monoid_calculus::value::Value::Bool(true));
    let p = &analysis.profile;
    assert!(p.short_circuited, "{}", p.render());
    assert!(
        p.rows_to_reduce < extent,
        "pushed {} rows, extent holds {extent}",
        p.rows_to_reduce
    );
    // Stronger: the scan itself stopped early, not just the reduce.
    for o in &p.operators {
        assert!(
            o.actual_rows < extent,
            "operator `{}` saw {} rows of {extent}",
            o.label,
            o.actual_rows
        );
    }
}

#[test]
fn all_quantifier_without_counterexample_scans_everything() {
    // The dual: `for all` over salaries that never dip below the floor
    // cannot short-circuit — it must push every row.
    let mut db = company::generate(4, 10, 0, 7);
    let extent = db.extent_len(company::names::EMPLOYEES) as u64;
    let src = "for all e in CompanyEmployees: e.salary >= 40000";
    let analysis = explain_analyze(src, &mut db).unwrap();
    assert_eq!(analysis.value, monoid_calculus::value::Value::Bool(true));
    let p = &analysis.profile;
    assert!(!p.short_circuited, "{}", p.render());
    assert_eq!(p.rows_to_reduce, extent);
}

// --- Plan-quality audit, flamegraph export, per-row attribution. ------

#[test]
fn profile_reports_self_time_steps_and_q_error_everywhere() {
    let mut db = company::generate(6, 15, 10, 42);
    let src = "select struct(mgr: m.name, emp: e.name) \
               from m in Managers, e in CompanyEmployees \
               where m.dept = e.dept";
    let analysis = explain_analyze(src, &mut db).unwrap();
    let p = &analysis.profile;
    let rendered = p.render();

    // Satellite: `self` is printed on EVERY operator line — a 0 means
    // below clock resolution, not absent — so the text and JSON schemas
    // agree on the column set.
    for line in rendered.lines().filter(|l| l.contains("est≈")) {
        assert!(line.contains(", self "), "missing self time: {line}");
    }
    // The worst-misestimate summary sits under the operator tree.
    assert!(rendered.contains("q-error: median"), "{rendered}");

    // Per-row attribution: the scans drove source evaluation, so steps
    // accumulated; q-error is finite and ≥ 1 on every operator.
    assert!(p.operators.iter().any(|o| o.eval_steps > 0), "{rendered}");
    for o in &p.operators {
        assert!(o.q_error() >= 1.0 && o.q_error().is_finite(), "{}: {}", o.label, o.q_error());
        assert!(!o.kind.is_empty());
    }
    // Scans over known extents estimate exactly: q-error 1.
    for scan in p.operators.iter().filter(|o| o.kind == "scan") {
        assert_eq!(scan.q_error(), 1.0, "{rendered}");
    }
    assert!(p.max_q_error().unwrap() >= p.median_q_error().unwrap());

    // The JSON schema carries kind, q_error, and the attribution fields
    // per operator plus the headline q_error block.
    let json = p.to_json();
    let text = json.render();
    for key in ["\"kind\"", "\"q_error\"", "\"eval_steps\"", "\"heap_allocs\"", "\"worst_op\""] {
        assert!(text.contains(key), "missing {key} in {text}");
    }
    let ops = json.get("operators").and_then(|o| o.as_arr()).unwrap();
    assert!(!ops.is_empty());
    for o in ops {
        assert!(o.get("q_error").and_then(monoid_calculus::json::Json::as_f64).unwrap() >= 1.0);
        assert!(o.get("kind").and_then(|k| k.as_str()).is_some());
    }
}

#[test]
fn folded_stacks_parse_as_flamegraph_input() {
    let mut db = company::generate(6, 15, 10, 42);
    let src = "select struct(mgr: m.name, emp: e.name) \
               from m in Managers, e in CompanyEmployees \
               where m.dept = e.dept";
    let analysis = explain_analyze(src, &mut db).unwrap();
    let folded = analysis.profile.to_folded();

    // One line per operator; every line is `frame;frame;… value` with a
    // numeric value, no empty frames, and the reduction as the root.
    assert_eq!(folded.lines().count(), analysis.profile.operators.len());
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').expect("space-separated value");
        assert!(value.parse::<u64>().is_ok(), "numeric sample value: {line}");
        let frames: Vec<&str> = stack.split(';').collect();
        assert!(frames.len() >= 2, "root + operator: {line}");
        assert!(frames.iter().all(|f| !f.trim().is_empty()), "no empty frames: {line}");
        assert!(frames[0].starts_with("Reduce[bag]"), "reduction roots the stack: {line}");
    }
    // The join's two scans are siblings: both stacks end one frame deep
    // under the join, not nested inside each other.
    let scan_stacks: Vec<&str> = folded
        .lines()
        .filter(|l| l.rsplit_once(' ').unwrap().0.split(';').next_back().unwrap().starts_with("Scan"))
        .collect();
    assert_eq!(scan_stacks.len(), 2, "{folded}");
    let depth = |l: &str| l.split(';').count();
    assert_eq!(depth(scan_stacks[0]), depth(scan_stacks[1]), "{folded}");

    // Frame sanitization: labels with `;` or newlines cannot corrupt the
    // format, and empty labels render as `?`.
    let hostile = monoid_db::algebra::fold_stacks(
        "root;evil",
        vec![("a;b\nc".to_string(), 0, 7u64), (String::new(), 1, 9u64)].into_iter(),
    );
    let lines: Vec<&str> = hostile.lines().collect();
    assert_eq!(lines[0], "root,evil;a,b c 7");
    assert_eq!(lines[1], "root,evil;a,b c;? 9");
}

#[test]
fn prepared_statements_export_folded_profiles() {
    use monoid_calculus::value::Value;
    use monoid_db::{prepare_on, Params};

    let mut db = company::generate(6, 15, 10, 42);
    let stmt = prepare_on(
        &db,
        "select e.name from e in CompanyEmployees where e.salary >= $floor",
    )
    .unwrap();
    let params = Params::new().bind("floor", Value::Int(40_000));
    let folded = stmt.profile_folded(&mut db, &params).unwrap();
    assert!(!folded.is_empty());
    for line in folded.lines() {
        let (stack, value) = line.rsplit_once(' ').unwrap();
        assert!(value.parse::<u64>().is_ok(), "{line}");
        assert!(stack.split(';').all(|f| !f.trim().is_empty()), "{line}");
    }
    // Unbound parameters fail loudly instead of profiling garbage.
    assert!(stmt.profile_folded(&mut db, &Params::new()).is_err());
}

#[test]
fn audit_disabled_is_invisible_and_enabled_feeds_the_registry() {
    use monoid_calculus::metrics;
    use monoid_db::algebra::{audit_enabled, set_audit_enabled};

    let mut db = company::generate(4, 10, 6, 42);
    let src = "select e.name from e in CompanyEmployees where e.salary >= 40000";

    // Off (the default): a profiled run moves NO q-error series — the
    // whole audit path is invisible in a registry snapshot diff.
    let prev = set_audit_enabled(false);
    assert!(!audit_enabled());
    let before = metrics::global().snapshot();
    explain_analyze(src, &mut db).unwrap();
    let diff = metrics::global().snapshot().diff(&before);
    assert!(
        diff.series.iter().all(|s| s.key.name != "plan_q_error_milli"),
        "audit-off run fed the audit histograms: {:?}",
        diff.series.iter().map(|s| &s.key.name).collect::<Vec<_>>()
    );

    // On: the same run feeds per-kind milli-q histograms.
    set_audit_enabled(true);
    let before = metrics::global().snapshot();
    let analysis = explain_analyze(src, &mut db).unwrap();
    let diff = metrics::global().snapshot().diff(&before);
    set_audit_enabled(prev);
    let audited: Vec<_> =
        diff.series.iter().filter(|s| s.key.name == "plan_q_error_milli").collect();
    assert!(!audited.is_empty(), "audit-on run fed no histograms");
    let mut samples = 0;
    for s in &audited {
        let monoid_calculus::metrics::MetricValue::Histogram(h) = &s.value else {
            panic!("plan_q_error_milli is a histogram family");
        };
        samples += h.count;
        // Milli-q: a perfect estimate observes 1000, so every sample is
        // at least that.
        assert!(h.sum >= h.count * 1000, "q-error below 1.0 recorded");
    }
    assert_eq!(
        samples,
        analysis.profile.operators.len() as u64,
        "one observation per operator"
    );
}
