//! End-to-end `EXPLAIN ANALYZE` coverage: full-lifecycle profiles for OQL
//! queries over the company store, including the acceptance shape (a join
//! with per-operator actual rows, per-phase timings, and estimated vs
//! actual cardinalities side by side) and short-circuit accounting for
//! `some`/`all` reductions.

use monoid_calculus::trace::Phase;
use monoid_db::explain_analyze;
use monoid_store::company;

#[test]
fn company_join_profile_has_phases_operators_and_estimates() {
    let mut db = company::generate(6, 15, 10, 42);
    let src = "select struct(mgr: m.name, emp: e.name) \
               from m in Managers, e in CompanyEmployees \
               where m.dept = e.dept";
    let analysis = explain_analyze(src, &mut db).unwrap();
    let p = &analysis.profile;
    let rendered = p.render();

    // Every lifecycle phase is timed: parse, translate, normalize,
    // optimize, plan, execute.
    for phase in [
        Phase::Parse,
        Phase::Translate,
        Phase::Normalize,
        Phase::Optimize,
        Phase::Plan,
        Phase::Execute,
    ] {
        assert!(
            p.trace.phase_nanos(phase).is_some(),
            "missing phase {phase}:\n{rendered}"
        );
    }
    assert!(p.trace.total_nanos() > 0);
    assert!(p.trace.normalize.is_some(), "normalize stats attached");

    // The dept equality across independent extents becomes a hash join
    // whose profile reports actual rows, build size, and an estimate.
    let join = p
        .operators
        .iter()
        .find(|o| o.label.contains("Join"))
        .unwrap_or_else(|| panic!("no join operator:\n{rendered}"));
    assert!(join.actual_rows > 0, "{rendered}");
    assert!(join.build_rows > 0, "{rendered}");
    assert!(join.estimated_rows > 0.0, "{rendered}");

    // Scans report the true extent sizes, and estimates sit next to
    // actuals on every operator line.
    let scans: Vec<_> = p
        .operators
        .iter()
        .filter(|o| o.label.starts_with("Scan"))
        .collect();
    assert_eq!(scans.len(), 2, "{rendered}");
    let mut scan_rows: Vec<u64> = scans.iter().map(|o| o.actual_rows).collect();
    scan_rows.sort_unstable();
    assert_eq!(
        scan_rows,
        vec![
            db.extent_len(company::names::MANAGERS) as u64,
            db.extent_len(company::names::EMPLOYEES) as u64,
        ]
    );
    for scan in &scans {
        assert_eq!(
            scan.estimated_rows, scan.actual_rows as f64,
            "extent sizes are known exactly:\n{rendered}"
        );
    }
    assert!(rendered.contains("est≈"), "{rendered}");
    assert!(rendered.contains("actual"), "{rendered}");

    // Rows reaching the reduction match the join output.
    assert_eq!(p.rows_to_reduce, join.actual_rows);
    assert!(!p.short_circuited);

    // The JSON profile carries the same data.
    let json = p.to_json().render();
    for key in [
        "\"phases\"",
        "\"operators\"",
        "\"estimated_rows\"",
        "\"actual_rows\"",
        "\"rows_to_reduce\"",
        "\"normalize\"",
    ] {
        assert!(json.contains(key), "missing {key} in {json}");
    }
    assert!(json.contains("select struct"), "source text embedded: {json}");
}

#[test]
fn some_over_large_extent_short_circuits_and_reports_it() {
    // 8 managers × 25 reports = 200 employees; every salary clears the
    // generator's 40k floor, so `exists` must stop at the first row.
    let mut db = company::generate(8, 25, 0, 7);
    let extent = db.extent_len(company::names::EMPLOYEES) as u64;
    assert!(extent >= 200);

    let src = "exists e in CompanyEmployees: e.salary >= 40000";
    let analysis = explain_analyze(src, &mut db).unwrap();
    assert_eq!(analysis.value, monoid_calculus::value::Value::Bool(true));
    let p = &analysis.profile;
    assert!(p.short_circuited, "{}", p.render());
    assert!(
        p.rows_to_reduce < extent,
        "pushed {} rows, extent holds {extent}",
        p.rows_to_reduce
    );
    // Stronger: the scan itself stopped early, not just the reduce.
    for o in &p.operators {
        assert!(
            o.actual_rows < extent,
            "operator `{}` saw {} rows of {extent}",
            o.label,
            o.actual_rows
        );
    }
}

#[test]
fn all_quantifier_without_counterexample_scans_everything() {
    // The dual: `for all` over salaries that never dip below the floor
    // cannot short-circuit — it must push every row.
    let mut db = company::generate(4, 10, 0, 7);
    let extent = db.extent_len(company::names::EMPLOYEES) as u64;
    let src = "for all e in CompanyEmployees: e.salary >= 40000";
    let analysis = explain_analyze(src, &mut db).unwrap();
    assert_eq!(analysis.value, monoid_calculus::value::Value::Bool(true));
    let p = &analysis.profile;
    assert!(!p.short_circuited, "{}", p.render());
    assert_eq!(p.rows_to_reduce, extent);
}
