//! End-to-end smoke of the real `oqld` binary: spawn it as a child
//! process, parse the `listening on <addr>` line, drive a concurrent
//! client workload over the wire, and kill it.
//!
//! Gated on `MONOID_SERVER_SMOKE=1` — CI runs it as a dedicated step;
//! locally the test passes trivially (and says so) unless the variable
//! is set, so plain `cargo test` stays hermetic and fast.

use monoid_db::calculus::value::Value;
use monoid_db::server::Client;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};

fn smoke_enabled() -> bool {
    std::env::var("MONOID_SERVER_SMOKE").map(|v| v == "1").unwrap_or(false)
}

/// Kill the child even when an assertion panics mid-test.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn spawn_oqld(extra_args: &[&str]) -> (Reaper, std::net::SocketAddr) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_oqld"));
    cmd.args(["--addr", "127.0.0.1:0"]).args(extra_args);
    cmd.stdout(Stdio::piped()).stderr(Stdio::inherit());
    let mut child = cmd.spawn().expect("oqld spawns");
    let stdout = child.stdout.take().expect("stdout is piped");
    let mut lines = std::io::BufReader::new(stdout).lines();
    let line = lines
        .next()
        .expect("oqld prints its address before serving")
        .expect("oqld stdout is readable");
    let addr = line
        .strip_prefix("listening on ")
        .unwrap_or_else(|| panic!("unexpected announcement: {line:?}"))
        .parse()
        .expect("announced address parses");
    (Reaper(child), addr)
}

#[test]
fn spawned_oqld_serves_a_concurrent_workload() {
    if !smoke_enabled() {
        eprintln!("MONOID_SERVER_SMOKE != 1 — skipping the oqld process smoke test");
        return;
    }
    let (_reaper, addr) = spawn_oqld(&["--scale", "tiny", "--seed", "7"]);

    // Sanity from one connection first.
    let mut probe = Client::connect(addr).expect("connect to spawned oqld");
    probe.ping().expect("ping");
    let count = probe.query("count(Cities)", &[]).expect("count executes");
    assert_eq!(count.value, Value::Int(3));

    // Then a concurrent workload: every client runs ad-hoc queries and a
    // prepared statement, and every result must be exact — the child has
    // no writer, so the epoch never moves.
    let workers: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("worker connects");
                let (id, _) = client
                    .prepare("exists h in Hotels: h.name = $name")
                    .expect("worker prepares");
                for round in 0..25 {
                    let count = client.query("count(Cities)", &[]).expect("count executes");
                    assert_eq!(count.value, Value::Int(3), "worker {i} round {round}");
                    assert_eq!(count.epoch, client.hello_epoch, "epoch moved with no writer");
                    let exists = client
                        .execute(id, &[("name".to_string(), Value::str("hotel_0_0"))])
                        .expect("prepared executes");
                    assert_eq!(exists.value, Value::Bool(true));
                    let names = client
                        .query("select c.name from c in Cities", &[])
                        .expect("select executes");
                    assert_eq!(names.rows, 3);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("worker completes");
    }

    // Statement errors are per-statement, not per-process: the child
    // answers them and keeps serving.
    let err = probe.query("select syntax error", &[]).expect_err("bad statement errors");
    assert!(!err.to_string().is_empty());
    probe.ping().expect("child still alive after a bad statement");
}

#[test]
fn spawned_oqld_rejects_bad_flags() {
    if !smoke_enabled() {
        eprintln!("MONOID_SERVER_SMOKE != 1 — skipping the oqld flag test");
        return;
    }
    let out = Command::new(env!("CARGO_BIN_EXE_oqld"))
        .args(["--scale", "nonsense"])
        .output()
        .expect("oqld runs");
    assert!(!out.status.success(), "bad --scale must exit nonzero");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--scale"), "{stderr}");
}
