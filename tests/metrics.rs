//! Acceptance tests for the process-wide metrics registry: a known
//! workload produces exact registry deltas, the metered executor agrees
//! with the per-query `ExecProbe`, the unprofiled `NoProbe` path never
//! touches the registry, and the Prometheus rendering of a real workload
//! is valid exposition text.
//!
//! Everything here lives in ONE test function on purpose: integration
//! test files run as their own process, but test functions within a file
//! share that process — and therefore the global registry. Sequencing
//! the assertions keeps the exact-count comparisons race-free.

use monoid_calculus::metrics::{self, MetricValue};
use monoid_calculus::normalize::normalize_traced;
use monoid_store::company;

const JOIN_SRC: &str = "select struct(mgr: m.name, emp: e.name) \
                        from m in Managers, e in CompanyEmployees \
                        where m.dept = e.dept";

/// Operator kind for an `explain` label, mirroring the label space of
/// `exec_rows_pushed_total{operator=…}`.
fn kind_of(label: &str) -> &'static str {
    if label.starts_with("Scan") {
        "scan"
    } else if label.starts_with("IndexLookup") {
        "index-lookup"
    } else if label.starts_with("Unnest") {
        "unnest"
    } else if label.starts_with("Filter") {
        "filter"
    } else if label.starts_with("Bind") {
        "bind"
    } else if label.contains("Join") {
        "join"
    } else {
        panic!("unknown operator label: {label}")
    }
}

#[test]
fn registry_accounts_for_a_known_workload() {
    let mut db = company::generate(6, 15, 10, 42);
    let expr = monoid_oql::compile(db.schema(), JOIN_SRC).unwrap();
    let (canonical, _, nstats) = normalize_traced(&expr);
    let plan = monoid_algebra::plan_comprehension(&canonical).unwrap();

    // --- 1. The unprofiled path is invisible to the registry. ----------
    // `execute` instantiates `NoProbe`, whose hooks compile to nothing;
    // no `exec_*` series may move (store counters legitimately move —
    // the executor reads extents and object state through the store).
    let before = metrics::global().snapshot();
    let plain = monoid_algebra::execute(&plan, &mut db).unwrap();
    let diff = metrics::global().snapshot().diff(&before);
    for series in &diff.series {
        if series.key.name.starts_with("exec_") {
            assert_eq!(
                series.value,
                MetricValue::Counter(0),
                "NoProbe moved {}{:?}",
                series.key.name,
                series.key.labels
            );
        }
    }

    // --- 2. The metered executor agrees with ExecProbe, exactly. -------
    // Same plan, same store: per-kind sums of the single-query profile
    // must equal the registry delta of one metered run.
    let analysis = monoid_algebra::execute_profiled(&plan, &mut db).unwrap();
    assert_eq!(analysis.value, plain);
    let before = metrics::global().snapshot();
    let metered = monoid_algebra::execute_metered(&plan, &mut db).unwrap();
    assert_eq!(metered, plain);
    let diff = metrics::global().snapshot().diff(&before);
    for kind in ["scan", "index-lookup", "unnest", "filter", "bind", "join"] {
        let profiled: u64 = analysis
            .profile
            .operators
            .iter()
            .filter(|o| kind_of(&o.label) == kind)
            .map(|o| o.actual_rows)
            .sum();
        assert_eq!(
            diff.counter_with("exec_rows_pushed_total", &[("operator", kind)]),
            profiled,
            "row count mismatch for operator kind {kind}"
        );
        let built: u64 = analysis
            .profile
            .operators
            .iter()
            .filter(|o| kind_of(&o.label) == kind)
            .map(|o| o.build_rows)
            .sum();
        assert_eq!(
            diff.counter_with("exec_build_rows_total", &[("operator", kind)]),
            built,
            "build size mismatch for operator kind {kind}"
        );
    }
    assert_eq!(diff.counter("exec_queries_total"), 1);
    assert_eq!(diff.counter("exec_query_errors_total"), 0);
    // The dept equi-join really is a join with a non-empty build side.
    assert!(diff.counter_with("exec_rows_pushed_total", &[("operator", "join")]) > 0);
    assert!(diff.counter_with("exec_build_rows_total", &[("operator", "join")]) > 0);

    // --- 3. Normalization feeds per-rule counters. ---------------------
    let before = metrics::global().snapshot();
    let (_, _, nstats2) = normalize_traced(&expr);
    let diff = metrics::global().snapshot().diff(&before);
    assert_eq!(diff.counter("normalize_runs_total"), 1);
    assert_eq!(diff.counter("normalize_steps_total"), nstats2.steps as u64);
    for (rule, fired) in nstats2.rule_counts() {
        assert_eq!(
            diff.counter_with("normalize_rule_fired_total", &[("rule", rule.name())]),
            fired,
            "rule counter mismatch for {}",
            rule.name()
        );
    }
    assert_eq!(nstats2.steps, nstats.steps);

    // --- 4. The umbrella path times phases and counts queries. ---------
    let before = metrics::global().snapshot();
    let analysis = monoid_db::explain_analyze(JOIN_SRC, &mut db).unwrap();
    assert_eq!(analysis.value, plain);
    let diff = metrics::global().snapshot().diff(&before);
    assert_eq!(diff.counter("oql_queries_total"), 1);
    assert_eq!(diff.counter("oql_query_errors_total"), 0);
    for phase in ["parse", "translate", "normalize", "optimize", "plan", "execute"] {
        let h = diff
            .histogram_with("query_phase_nanos", &[("phase", phase)])
            .unwrap_or_else(|| panic!("no histogram for phase {phase}"));
        assert_eq!(h.count, 1, "phase {phase} observed once");
    }
    let e2e = diff.histogram_with("oql_query_nanos", &[]).unwrap();
    assert_eq!(e2e.count, 1);
    assert!(e2e.sum > 0);
    // The store under it counted the extents bound into query scope
    // (the executor reads objects through the moved heap, so per-object
    // state reads are only counted on the direct `Database::state` path).
    assert!(diff.counter("store_extent_scans_total") > 0);

    // And the store's own query entry point counts queries and times them.
    let before = metrics::global().snapshot();
    let via_store = db.query(&canonical).unwrap();
    assert_eq!(via_store, plain);
    let diff = metrics::global().snapshot().diff(&before);
    assert_eq!(diff.counter("store_queries_total"), 1);
    assert_eq!(diff.counter("store_query_errors_total"), 0);
    assert_eq!(diff.histogram_with("store_query_nanos", &[]).unwrap().count, 1);

    // --- 4b. The serving layer: a known cache workload produces exact
    //         plan_cache_* deltas. --------------------------------------
    // 1 statement, 4 session queries, 1 mutation in the middle, then a
    // private two-entry budget squeezed by a third statement:
    //   prepare #1      → 1 miss              (+ 1 prepare_nanos sample)
    //   query again     → 1 hit
    //   mutate + query  → 1 invalidation, 1 miss (+ 1 sample)
    //   query again     → 1 hit
    {
        use monoid_db::{Params, PlanCache, Session};
        let session = Session::with_cache(std::sync::Arc::new(PlanCache::new()));
        let src = "select m.name from m in Managers where m.dept = $dept";
        let params = Params::new().bind("dept", monoid_calculus::value::Value::str("dept_0"));
        let before = metrics::global().snapshot();
        session.query(&mut db, src, &params).unwrap();
        session.query(&mut db, src, &params).unwrap();
        db.set_root("Scratch", monoid_calculus::value::Value::Int(1));
        session.query(&mut db, src, &params).unwrap();
        session.query(&mut db, src, &params).unwrap();
        let diff = metrics::global().snapshot().diff(&before);
        assert_eq!(diff.counter("plan_cache_misses_total"), 2);
        assert_eq!(diff.counter("plan_cache_hits_total"), 2);
        assert_eq!(diff.counter("plan_cache_invalidations_total"), 1);
        assert_eq!(diff.counter("plan_cache_evictions_total"), 0);
        let prep = diff.histogram_with("prepare_nanos", &[]).unwrap();
        assert_eq!(prep.count, 2, "one prepare per miss");
        assert!(prep.sum > 0);
        // Warm serving fires zero front-of-pipeline phases.
        let before = metrics::global().snapshot();
        session.query(&mut db, src, &params).unwrap();
        let diff = metrics::global().snapshot().diff(&before);
        assert_eq!(diff.counter("plan_cache_hits_total"), 1);
        for phase in ["parse", "translate", "normalize", "optimize", "plan"] {
            let fired = diff
                .histogram_with("query_phase_nanos", &[("phase", phase)])
                .map(|h| h.count)
                .unwrap_or(0);
            assert_eq!(fired, 0, "warm serve fired `{phase}`");
        }
    }

    // --- 4c. Gathered statistics are reused across prepares at the same
    //         mutation epoch, and re-gathered after any mutation. -------
    {
        use monoid_calculus::value::Value;
        let src = "select m.name from m in Managers";
        // Move to a fresh epoch so the first prepare below is a cold gather
        // regardless of what 4b left in the stats cache.
        db.set_root("StatsEpoch", Value::Int(0));
        let before = metrics::global().snapshot();
        monoid_db::prepare_on(&db, src).unwrap(); // cold: gathers
        monoid_db::prepare_on(&db, src).unwrap(); // same epoch: reuses
        monoid_db::prepare_on(&db, src).unwrap();
        let diff = metrics::global().snapshot().diff(&before);
        assert_eq!(diff.counter("stats_gather_reuse_total"), 2);
        // Any mutation bumps the epoch: the next prepare re-gathers.
        db.set_root("StatsEpoch", Value::Int(1));
        let before = metrics::global().snapshot();
        monoid_db::prepare_on(&db, src).unwrap();
        let diff = metrics::global().snapshot().diff(&before);
        assert_eq!(diff.counter("stats_gather_reuse_total"), 0);
        // Clones are independent stores with fresh instance ids, so a
        // clone at an equal epoch number can never hit this cache entry.
        let db2 = db.clone();
        assert_ne!(db.instance_id(), db2.instance_id());
        let before = metrics::global().snapshot();
        monoid_db::prepare_on(&db2, src).unwrap();
        let diff = metrics::global().snapshot().diff(&before);
        assert_eq!(diff.counter("stats_gather_reuse_total"), 0);
    }

    // --- 5. A failing query lands in the error counters, not the hot
    //        ones. ------------------------------------------------------
    let before = metrics::global().snapshot();
    assert!(monoid_db::explain_analyze("select ! from", &mut db).is_err());
    let diff = metrics::global().snapshot().diff(&before);
    assert_eq!(diff.counter("oql_queries_total"), 1);
    assert_eq!(diff.counter("oql_query_errors_total"), 1);

    // --- 6. The whole registry renders as valid Prometheus text and
    //        JSON after all of the above. -------------------------------
    let snap = metrics::global().snapshot();
    let text = snap.to_prometheus();
    metrics::validate_prometheus_text(&text)
        .unwrap_or_else(|e| panic!("invalid exposition: {e}\n{text}"));
    for series in [
        "exec_rows_pushed_total",
        "normalize_rule_fired_total",
        "query_phase_nanos_bucket",
        "store_state_reads_total",
        "oql_queries_total",
        "plan_cache_hits_total",
        "plan_cache_misses_total",
        "plan_cache_invalidations_total",
        "prepare_nanos_bucket",
    ] {
        assert!(text.contains(series), "missing {series} in:\n{text}");
    }
    let json = snap.to_json().render();
    assert!(json.contains("\"exec_rows_pushed_total\"") || json.contains("exec_rows_pushed_total"));
}
