//! The wire protocol, locked down from both sides:
//!
//! * **golden encodings** — exact byte sequences for representative
//!   frames, so any accidental change to the layout (opcodes, field
//!   order, endianness, the length prefix) fails loudly instead of
//!   silently breaking old clients;
//! * **round trips against a live server** — a real [`Server`] over the
//!   travel store, driven by the [`Client`], including statement errors
//!   that must leave the connection usable;
//! * **malformed frames** — truncated, oversized, and garbage frames
//!   sent over a raw socket: the server answers with one `ERROR` frame
//!   (when the framing allows) and closes, never panics, never hangs,
//!   and keeps serving fresh connections afterwards.

use monoid_db::calculus::value::Value;
use monoid_db::server::{Client, Server};
use monoid_db::wire::{self, Request, Response, ResultShape};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

fn spawn_server() -> monoid_db::server::ServerHandle {
    let db = monoid_db::store::travel::generate(monoid_db::store::TravelScale::tiny(), 7);
    Server::bind("127.0.0.1:0", db).expect("bind loopback").spawn()
}

// ---------------------------------------------------------------------
// Golden encodings
// ---------------------------------------------------------------------

fn framed(body: &[u8]) -> Vec<u8> {
    let mut out = Vec::new();
    wire::write_frame(&mut out, body).unwrap();
    out
}

/// The exact bytes of representative frames. Every assertion here is a
/// compatibility promise: changing any of them requires a protocol
/// version bump, not a silent re-encode.
#[test]
fn golden_frame_encodings() {
    // PING: 1-byte body, little-endian length prefix.
    assert_eq!(framed(&Request::Ping.encode().unwrap()), [1, 0, 0, 0, 0x05]);
    assert_eq!(framed(&Response::Pong.encode().unwrap()), [1, 0, 0, 0, 0x86]);

    // HELLO: opcode, advisory protocol version, u32le-length client name.
    let hello = Request::Hello { client: "cli".to_string() }.encode().unwrap();
    assert_eq!(hello, [0x01, 1, 3, 0, 0, 0, b'c', b'l', b'i']);

    // PREPARE: opcode + u32le-length source.
    let prepare = Request::Prepare { src: "count(Cities)".to_string() }.encode().unwrap();
    let mut want = vec![0x03, 13, 0, 0, 0];
    want.extend_from_slice(b"count(Cities)");
    assert_eq!(prepare, want);

    // EXECUTE: opcode + u64le statement id + u32le param count.
    let execute = Request::Execute { id: 7, params: vec![] }.encode().unwrap();
    assert_eq!(execute, [0x04, 7, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]);

    // DONE: opcode + shape byte + u64le rows + u64le epoch.
    let done =
        Response::Done { shape: ResultShape::Set, rows: 3, epoch: 9 }.encode().unwrap();
    assert_eq!(
        done,
        [0x83, 2, 3, 0, 0, 0, 0, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0]
    );

    // ERROR: opcode + u32le-length message.
    let error = Response::Error { message: "no".to_string() }.encode().unwrap();
    assert_eq!(error, [0x85, 2, 0, 0, 0, b'n', b'o']);

    // R_HELLO: opcode + protocol byte + server string + instance + epoch.
    let rhello = Response::Hello {
        server: "s".to_string(),
        protocol: wire::PROTOCOL_VERSION,
        instance: 2,
        epoch: 1,
    }
    .encode()
    .unwrap();
    assert_eq!(
        rhello,
        [0x81, 1, 1, 0, 0, 0, b's', 2, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0]
    );
}

/// A query frame with a parameter round-trips bit-exactly through the
/// store codec, and re-encoding the decoded frame reproduces the bytes.
#[test]
fn query_frames_are_stable_under_reencode() {
    let req = Request::Query {
        src: "exists h in Hotels: h.name = $name".to_string(),
        params: vec![("name".to_string(), Value::str("hotel_0_0"))],
    };
    let bytes = req.encode().unwrap();
    let decoded = Request::decode(&bytes).unwrap();
    assert_eq!(decoded, req);
    assert_eq!(decoded.encode().unwrap(), bytes, "encoding is canonical");
}

// ---------------------------------------------------------------------
// Round trips against a live server
// ---------------------------------------------------------------------

#[test]
fn live_server_round_trips_queries_and_prepared_statements() {
    let handle = spawn_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    assert!(client.instance != 0, "hello announces the instance id");
    client.ping().expect("ping round trip");

    // Ad-hoc query.
    let count = client.query("count(Cities)", &[]).expect("count executes");
    assert_eq!(count.value, Value::Int(3), "tiny scale has 3 cities");
    assert_eq!(count.epoch, client.hello_epoch, "no writer: epoch is pinned");

    // A collection result streams as rows and reassembles.
    let names = client.query("select c.name from c in Cities", &[]).expect("select executes");
    assert_eq!(names.rows, 3);
    assert_eq!(names.value.len().unwrap(), 3);

    // Prepared statement with a parameter, executed twice.
    let (id, params) =
        client.prepare("exists h in Hotels: h.name = $name").expect("prepare succeeds");
    // Parameter names are reported in canonical `$name` form.
    assert_eq!(params, vec!["$name".to_string()]);
    let hit = client
        .execute(id, &[("name".to_string(), Value::str("hotel_0_0"))])
        .expect("execute succeeds");
    assert_eq!(hit.value, Value::Bool(true));
    let miss = client
        .execute(id, &[("name".to_string(), Value::str("no-such-hotel"))])
        .expect("execute succeeds");
    assert_eq!(miss.value, Value::Bool(false));

    // A statement error comes back as ERROR and the session stays open.
    let err = client.query("select from where", &[]).expect_err("syntax error surfaces");
    assert!(!err.to_string().is_empty());
    client.ping().expect("connection survives a statement error");
    let again = client.query("count(Cities)", &[]).expect("still serving");
    assert_eq!(again.value, Value::Int(3));

    // Unknown prepared id: error, connection stays open.
    let err = client.execute(9999, &[]).expect_err("unknown id is refused");
    assert!(err.to_string().contains("9999"), "{err}");
    client.ping().expect("connection survives an unknown id");

    handle.shutdown();
}

// ---------------------------------------------------------------------
// Malformed frames
// ---------------------------------------------------------------------

/// Send raw bytes, then read whatever the server answers until it
/// closes. Returns the raw response bytes. A read timeout guards
/// against the one failure mode this battery exists to prevent: a hang.
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Vec<u8> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    stream.write_all(bytes).expect("write");
    // Half-close so a server waiting for more body bytes sees EOF
    // instead of stalling the test.
    stream.shutdown(std::net::Shutdown::Write).ok();
    let mut out = Vec::new();
    stream.read_to_end(&mut out).expect("server closes cleanly, not via timeout/reset");
    out
}

/// Decode the single response frame the server sent before closing.
fn sole_response(bytes: &[u8]) -> Option<Response> {
    let mut cursor = std::io::Cursor::new(bytes);
    let resp = wire::read_response(&mut cursor).expect("server bytes decode")?;
    assert_eq!(cursor.position() as usize, bytes.len(), "exactly one frame before close");
    Some(resp)
}

#[test]
fn malformed_frames_get_one_error_then_a_clean_close() {
    let handle = spawn_server();
    let addr = handle.addr();

    // Unknown opcode inside a well-formed frame.
    let garbage_op = send_raw(addr, &framed(&[0x7f, 1, 2, 3]));
    match sole_response(&garbage_op) {
        Some(Response::Error { message }) => {
            assert!(message.contains("opcode"), "{message}");
        }
        other => panic!("want ERROR for a bad opcode, got {other:?}"),
    }

    // Well-formed frame, truncated QUERY payload (length says 100, body
    // ends early).
    let mut body = vec![0x02];
    body.extend_from_slice(&100u32.to_le_bytes());
    body.extend_from_slice(b"short");
    let truncated_payload = send_raw(addr, &framed(&body));
    assert!(
        matches!(sole_response(&truncated_payload), Some(Response::Error { .. })),
        "truncated payload gets an ERROR"
    );

    // Trailing bytes after a valid PING body.
    let trailing = send_raw(addr, &framed(&[0x05, 0xde, 0xad]));
    assert!(
        matches!(sole_response(&trailing), Some(Response::Error { .. })),
        "trailing bytes get an ERROR"
    );

    // Frame truncated mid-body: prefix promises 16 bytes, the stream
    // ends after 3. No response frame is owed (the request never
    // arrived) — the server just closes.
    let mut cut = 16u32.to_le_bytes().to_vec();
    cut.extend_from_slice(&[1, 2, 3]);
    let mid_frame = send_raw(addr, &cut);
    assert!(sole_response(&mid_frame).is_none() || matches!(sole_response(&mid_frame), Some(Response::Error { .. })));

    // Oversized length prefix: refused before any allocation.
    let huge = ((wire::MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
    let oversized = send_raw(addr, &huge);
    match sole_response(&oversized) {
        Some(Response::Error { message }) => {
            assert!(message.contains("frame"), "{message}");
        }
        None => {}
        other => panic!("want ERROR or close for an oversized frame, got {other:?}"),
    }

    // Pure garbage that parses as a small length prefix.
    let _ = send_raw(addr, &[0xff, 0x00, 0x00, 0x00]);

    // After all of that abuse, the server still serves real clients.
    let mut client = Client::connect(addr).expect("server survived the abuse");
    let count = client.query("count(Cities)", &[]).expect("still serving");
    assert_eq!(count.value, Value::Int(3));

    handle.shutdown();
}

/// Response decoding never panics on arbitrary bodies — the client-side
/// mirror of the server-side battery above.
#[test]
fn response_decode_rejects_garbage_without_panicking() {
    for body in [
        &[][..],
        &[0x00],
        &[0xff, 0xff],
        &[0x82, 0xff, 0xff, 0xff, 0xff],
        &[0x83, 9, 0, 0, 0, 0, 0, 0, 0, 0],
        &[0x81, 1, 200, 0, 0, 0],
    ] {
        assert!(Response::decode(body).is_err(), "garbage body {body:?} must error");
    }
}
