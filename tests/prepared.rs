//! The prepared-statement differential suite: for every parameterized
//! query, `prepare` + `Prepared::execute` must be byte-identical to the
//! ad-hoc pipeline run on the literal-substituted source — same `Value`,
//! same OIDs for allocating heads — sequentially and on the parallel
//! engine at `MONOID_PARALLEL_THREADS` ∈ {1, 3}. Plus the serving-layer
//! property tests: re-binding never changes the plan, cache hits are
//! indistinguishable from misses, and a database mutation between
//! executions always invalidates the epoch-stamped cache entry.
//!
//! The warm-path proof lives here too: a warm `Prepared::execute` (and a
//! warm `Session::query`) must fire *zero* parse/translate/normalize/
//! optimize/plan phases, asserted from the `query_phase_nanos{phase=…}`
//! histogram deltas in the process-wide registry.

use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::metrics::global;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::value::Value;
use monoid_db::oql::compile;
use monoid_db::store::travel::{self, TravelScale};
use monoid_db::store::Database;
use monoid_db::{prepare, prepare_expr, prepare_on, Params, PlanCache, Session};
use std::sync::Arc;

fn db(seed: u64) -> Database {
    travel::generate(TravelScale::tiny(), seed)
}

/// The differential corpus: `(parameterized source, bindings, equivalent
/// literal source)`. Covers the paper's §3.1 flat and nested Portland
/// queries, the tutorial battery shapes, quantifiers, aggregates over
/// subqueries in predicates — and zero-parameter statements.
fn corpus() -> Vec<(&'static str, Params, String)> {
    vec![
        (
            "select h.name from c in Cities, h in c.hotels where c.name = $city",
            Params::new().bind("city", Value::str("Portland")),
            "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'".into(),
        ),
        (
            // The paper's §3.1 query, flat form, fully parameterized.
            "select h.name from c in Cities, h in c.hotels, r in h.rooms \
             where c.name = $city and r.bed# = $beds",
            Params::new()
                .bind("city", Value::str("Portland"))
                .bind("beds", Value::Int(3)),
            "select h.name from c in Cities, h in c.hotels, r in h.rooms \
             where c.name = 'Portland' and r.bed# = 3"
                .into(),
        ),
        (
            // The §3.1 nested form — the placeholder sits inside a
            // subquery in `from`, so it must survive unnesting.
            "select h.name \
             from h in (select h2 from c in Cities, h2 in c.hotels where c.name = $city), \
                  r in h.rooms \
             where r.bed# = $beds",
            Params::new()
                .bind("city", Value::str("Portland"))
                .bind("beds", Value::Int(3)),
            "select h.name \
             from h in (select h2 from c in Cities, h2 in c.hotels where c.name = 'Portland'), \
                  r in h.rooms \
             where r.bed# = 3"
                .into(),
        ),
        (
            "select cl.name from cl in Clients where cl.age > $age and cl.budget < $budget",
            Params::new()
                .bind("age", Value::Int(40))
                .bind("budget", Value::Float(300.0)),
            "select cl.name from cl in Clients where cl.age > 40 and cl.budget < 300.0".into(),
        ),
        (
            "select e.name from h in Hotels, e in h.employees where e.salary > $min",
            Params::new().bind("min", Value::Int(50000)),
            "select e.name from h in Hotels, e in h.employees where e.salary > 50000".into(),
        ),
        (
            // Quantifier: the placeholder inside an `exists` body becomes
            // a generator + predicate after normalization (rule N6).
            "select h.name from h in Hotels where exists r in h.rooms: r.bed# = $beds",
            Params::new().bind("beds", Value::Int(2)),
            "select h.name from h in Hotels where exists r in h.rooms: r.bed# = 2".into(),
        ),
        (
            // One positional, one named, both in the same predicate.
            "select r.price from h in Hotels, r in h.rooms \
             where r.bed# >= $1 and r.price < $limit",
            Params::new()
                .bind("1", Value::Int(2))
                .bind("limit", Value::Int(150)),
            "select r.price from h in Hotels, r in h.rooms \
             where r.bed# >= 2 and r.price < 150"
                .into(),
        ),
        (
            // Zero-parameter statements prepare and execute too.
            "select distinct r.bed# from h in Hotels, r in h.rooms",
            Params::new(),
            "select distinct r.bed# from h in Hotels, r in h.rooms".into(),
        ),
        (
            "select c.name from c in Cities",
            Params::new(),
            "select c.name from c in Cities".into(),
        ),
    ]
}

/// The ad-hoc reference result: compile the literal source and run it
/// through the same normalize → optimize → plan → execute pipeline the
/// serving layer captures (via `explain_analyze`).
fn adhoc(db: &mut Database, literal: &str) -> Value {
    monoid_db::explain_analyze(literal, db)
        .unwrap_or_else(|e| panic!("ad-hoc `{literal}`: {e}"))
        .value
}

#[test]
fn prepared_execution_is_byte_identical_to_adhoc() {
    for (src, params, literal) in corpus() {
        // Fresh databases from the same seed: identical heaps, so even
        // OIDs must line up.
        let mut db_adhoc = db(11);
        let mut db_prep = db(11);
        let want = adhoc(&mut db_adhoc, &literal);
        let prepared = prepare_on(&db_prep, src).unwrap_or_else(|e| panic!("prepare `{src}`: {e}"));
        let got = prepared
            .execute(&mut db_prep, &params)
            .unwrap_or_else(|e| panic!("execute `{src}`: {e}"));
        assert_eq!(got, want, "prepared differs from ad-hoc for `{src}`");

        // Direct evaluation agrees as well (semantics, not just plans).
        let q = compile(db_adhoc.schema(), &literal).unwrap();
        assert_eq!(db_adhoc.query(&q).unwrap(), want, "direct eval differs for `{literal}`");
    }
}

#[test]
fn prepared_parallel_agrees_at_one_and_three_threads() {
    for threads in ["1", "3"] {
        std::env::set_var("MONOID_PARALLEL_THREADS", threads);
        for (src, params, literal) in corpus() {
            let mut db_adhoc = db(23);
            let mut db_prep = db(23);
            let want = adhoc(&mut db_adhoc, &literal);
            let prepared = prepare_on(&db_prep, src).unwrap();
            let got = prepared
                .execute_parallel_auto(&mut db_prep, &params)
                .unwrap_or_else(|e| panic!("parallel({threads}) `{src}`: {e}"));
            assert_eq!(got, want, "parallel({threads}) differs for `{src}`");
        }
    }
    std::env::remove_var("MONOID_PARALLEL_THREADS");
}

/// Allocating heads: a prepared `bag{ new(⟨…⟩) | … }` must allocate the
/// *same OIDs* as the ad-hoc run on an identically-seeded database —
/// prepared execution reuses the pipeline's heap machinery verbatim.
#[test]
fn allocating_heads_agree_oid_for_oid() {
    let parameterized = Expr::comp(
        Monoid::Bag,
        Expr::new_obj(Expr::record(vec![("label", Expr::var("c").proj("name"))])),
        vec![
            Expr::gen("c", Expr::var("Cities")),
            Expr::pred(Expr::var("c").proj("name").eq(Expr::param("$city"))),
        ],
    );
    let literal = Expr::comp(
        Monoid::Bag,
        Expr::new_obj(Expr::record(vec![("label", Expr::var("c").proj("name"))])),
        vec![
            Expr::gen("c", Expr::var("Cities")),
            Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
        ],
    );

    let mut db_adhoc = db(31);
    let mut db_prep = db(31);
    let stats = monoid_db::algebra::Stats::gather(&db_adhoc);

    let want = {
        let p = prepare_expr(&literal, &stats).unwrap();
        p.execute(&mut db_adhoc, &Params::new()).unwrap()
    };
    let got = {
        let p = prepare_expr(&parameterized, &stats).unwrap();
        assert_eq!(p.params().len(), 1);
        p.execute(&mut db_prep, &Params::new().bind("city", Value::str("Portland"))).unwrap()
    };

    assert_eq!(got, want, "allocated OIDs must line up");
    let elems = got.elements().unwrap();
    assert!(!elems.is_empty(), "head actually allocated");
    assert!(elems.iter().all(|v| matches!(v, Value::Obj(_))));
    // Allocation advanced both heaps identically.
    assert_eq!(db_adhoc.mutation_epoch(), db_prep.mutation_epoch());
    assert_eq!(db_adhoc.object_count(), db_prep.object_count());
}

// ---------------------------------------------------------------------
// Property tests (serving-layer invariants)
// ---------------------------------------------------------------------

/// Re-binding a prepared statement never changes its plan: the stored
/// `Query`'s explain text is the same object before and after any number
/// of executions with different parameter values.
#[test]
fn rebinding_never_changes_the_plan() {
    let mut d = db(41);
    let prepared =
        prepare_on(&d, "select r.price from h in Hotels, r in h.rooms where r.bed# >= $beds")
            .unwrap();
    let shape_before = monoid_db::algebra::explain(prepared.query().unwrap());
    for beds in [0i64, 1, 2, 3, 7, -5, 1000] {
        prepared.execute(&mut d, &Params::new().bind("beds", Value::Int(beds))).unwrap();
        let shape_after = monoid_db::algebra::explain(prepared.query().unwrap());
        assert_eq!(shape_before, shape_after, "plan changed after binding beds={beds}");
    }
}

/// A cache hit must be observationally identical to a miss: same value,
/// and the hit-path `Prepared` is literally the entry the miss inserted.
#[test]
fn cache_hit_results_equal_miss_results() {
    let cache = PlanCache::new();
    let mut d = db(43);
    let src = "select h.name from c in Cities, h in c.hotels where c.name = $city";
    let params = Params::new().bind("city", Value::str("Portland"));

    let miss = cache.get_or_prepare(&d, src).unwrap();
    let v_miss = miss.execute(&mut d, &params).unwrap();
    let hit = cache.get_or_prepare(&d, src).unwrap();
    assert!(Arc::ptr_eq(&miss, &hit), "second lookup must be a hit");
    let v_hit = hit.execute(&mut d, &params).unwrap();
    assert_eq!(v_miss, v_hit);

    // And both equal a cache-free prepare + execute.
    let standalone = prepare_on(&d, src).unwrap();
    assert_eq!(standalone.execute(&mut d, &params).unwrap(), v_miss);
}

/// Any database mutation between executions invalidates the epoch-stamped
/// entry: the cache re-prepares rather than serving the stale plan, for
/// every kind of mutation that advances the epoch (root updates, inserts,
/// allocating queries).
#[test]
fn mutation_always_invalidates_cached_plans() {
    let cache = PlanCache::new();
    let mut d = db(47);
    let src = "select c.name from c in Cities";

    // Root mutation.
    let a = cache.get_or_prepare(&d, src).unwrap();
    d.set_root("Scratch", Value::Int(0));
    let b = cache.get_or_prepare(&d, src).unwrap();
    assert!(!Arc::ptr_eq(&a, &b), "root mutation must invalidate");

    // Insert into an extent.
    d.insert(
        monoid_db::calculus::symbol::Symbol::new("City"),
        Value::record_from(vec![
            ("name", Value::str("Nowhere")),
            ("hotels", Value::list(vec![])),
            ("hotel#", Value::Int(0)),
        ]),
    )
    .unwrap();
    let c = cache.get_or_prepare(&d, src).unwrap();
    assert!(!Arc::ptr_eq(&b, &c), "insert must invalidate");

    // An allocating query advances the heap version, self-invalidating.
    let alloc = Expr::comp(
        Monoid::Bag,
        Expr::new_obj(Expr::record(vec![("tag", Expr::int(1))])),
        vec![Expr::gen("c", Expr::var("Cities"))],
    );
    d.query(&alloc).unwrap();
    let e = cache.get_or_prepare(&d, src).unwrap();
    assert!(!Arc::ptr_eq(&c, &e), "allocation must invalidate");

    // A pure query leaves the epoch alone, so the entry stays warm.
    let before = d.mutation_epoch();
    let f = cache.get_or_prepare(&d, src).unwrap();
    f.execute(&mut d, &Params::new()).unwrap();
    assert_eq!(d.mutation_epoch(), before, "pure query is epoch-neutral");
    let g = cache.get_or_prepare(&d, src).unwrap();
    assert!(Arc::ptr_eq(&f, &g), "pure execution must not invalidate");
}

// ---------------------------------------------------------------------
// Warm-path proof
// ---------------------------------------------------------------------

/// The tentpole acceptance check: once prepared, execution fires *zero*
/// front-of-pipeline phases. `QueryTrace` feeds every phase timing into
/// the `query_phase_nanos{phase=…}` histograms of the process registry,
/// so a zero count delta across the warm window proves no parse,
/// translate, normalize, optimize, or plan happened.
#[test]
fn warm_execution_skips_parse_normalize_optimize() {
    let mut d = db(53);
    let session = Session::with_cache(Arc::new(PlanCache::new()));
    let src = "select h.name from c in Cities, h in c.hotels where c.name = $city";
    let params = Params::new().bind("city", Value::str("Portland"));

    // Cold: prepare (through the cache) and execute once.
    let cold = session.query(&mut d, src, &params).unwrap();

    // Warm window: phase counters must not move for the front half.
    let before = global().snapshot();
    for _ in 0..5 {
        let warm = session.query(&mut d, src, &params).unwrap();
        assert_eq!(warm, cold);
    }
    let delta = global().snapshot().diff(&before);
    for phase in ["parse", "translate", "normalize", "optimize", "plan"] {
        let fired = delta
            .histogram_with("query_phase_nanos", &[("phase", phase)])
            .map(|h| h.count)
            .unwrap_or(0);
        assert_eq!(fired, 0, "warm path fired {fired} `{phase}` phases");
    }

    // The same holds for a bare Prepared handle, without the cache.
    let prepared = prepare(d.schema(), src).unwrap();
    let before = global().snapshot();
    prepared.execute(&mut d, &params).unwrap();
    let delta = global().snapshot().diff(&before);
    for phase in ["parse", "translate", "normalize", "optimize", "plan"] {
        let fired = delta
            .histogram_with("query_phase_nanos", &[("phase", phase)])
            .map(|h| h.count)
            .unwrap_or(0);
        assert_eq!(fired, 0, "Prepared::execute fired {fired} `{phase}` phases");
    }
}

/// The whole corpus served through a warmed cache agrees with ad-hoc.
/// By default this runs against a private cache; under
/// `MONOID_PREPARED_WARM=1` (CI's second release test run) it serves
/// from the pre-warmed *process-wide* cache instead, so every corpus
/// statement is exercised through `Session::new()` + `global_plan_cache`
/// with cross-test cache state in play.
#[test]
fn warmed_cache_serves_the_corpus() {
    let warm_global = std::env::var("MONOID_PREPARED_WARM").is_ok_and(|v| v != "0");
    let session = if warm_global {
        Session::new()
    } else {
        Session::with_cache(Arc::new(PlanCache::new()))
    };

    // First pass warms every statement; the differential check runs on
    // the second, all-hits pass.
    let mut d = db(61);
    for (src, params, _) in corpus() {
        session.query(&mut d, src, &params).unwrap_or_else(|e| panic!("warm `{src}`: {e}"));
    }
    let cache_len_after_warming = session.cache().len();
    for (src, params, literal) in corpus() {
        let mut db_adhoc = db(61);
        let want = adhoc(&mut db_adhoc, &literal);
        let got = session
            .query(&mut d, src, &params)
            .unwrap_or_else(|e| panic!("warmed serve `{src}`: {e}"));
        assert_eq!(got, want, "warmed cache serve differs from ad-hoc for `{src}`");
    }
    // The corpus is pure, so the second pass added no entries — every
    // serve was a hit on the warmed set.
    assert_eq!(session.cache().len(), cache_len_after_warming);
}

/// Binding errors are total: every unbound placeholder is reported (not
/// just discovered mid-scan), and extraneous bindings are rejected.
#[test]
fn binding_validation_is_eager() {
    let mut d = db(59);
    let prepared = prepare_on(
        &d,
        "select h.name from c in Cities, h in c.hotels, r in h.rooms \
         where c.name = $city and r.bed# = $beds",
    )
    .unwrap();
    assert_eq!(prepared.params().len(), 2);

    // Missing one of two.
    let err = prepared
        .execute(&mut d, &Params::new().bind("city", Value::str("Portland")))
        .unwrap_err();
    assert!(err.to_string().contains("$beds"), "{err}");

    // Unknown extra binding.
    let err = prepared
        .execute(
            &mut d,
            &Params::new()
                .bind("city", Value::str("Portland"))
                .bind("beds", Value::Int(3))
                .bind("typo", Value::Int(0)),
        )
        .unwrap_err();
    assert!(err.to_string().contains("$typo"), "{err}");
}
