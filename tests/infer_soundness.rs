//! Soundness of the constraint & cardinality inference
//! (`calculus::analysis::infer`) against real executions:
//!
//! * the inferred cardinality interval always contains the row count the
//!   execution probe actually observed flowing into the reduction;
//! * every key certificate survives an exhaustive duplicate check over
//!   the store it was derived from;
//! * the static engine certificate agrees with the fused compiler and
//!   the parallel engine's own verdicts.
//!
//! Queries and stores are both random: ≥ 256 cases over seeded travel
//! databases and a grammar of canonical comprehensions (dependent and
//! independent generators, equality/range/negated predicates, plain and
//! short-circuiting monoids).

use monoid_db::algebra::{
    execute_profiled, fused_eligible, plan_comprehension, static_fallback, Stats,
};
use monoid_db::calculus::analysis::{infer, Catalog, SpanMap};
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::symbol::Symbol;
use monoid_db::calculus::value::Value;
use monoid_db::store::{travel, Database, TravelScale};
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------------------
// A random canonical comprehension over the travel schema.
// ---------------------------------------------------------------------------

/// Which second generator follows `c in Cities`, if any.
#[derive(Debug, Clone, Copy)]
enum Second {
    None,
    /// `h in c.hotels` — a dependent path.
    Dependent,
    /// `h in Hotels` — an independent extent (a join or cross product).
    Extent,
}

#[derive(Debug, Clone)]
struct Shape {
    second: Second,
    /// `r in h.rooms` (only meaningful when a second generator binds `h`).
    rooms: bool,
    /// `c.name = <s>` — sometimes a present city, sometimes not.
    city_name: Option<String>,
    /// Negate the city predicate (`not (c.name = s)`).
    negate_city: bool,
    /// A range conjunction over `r.bed#`: `(op, k)` with op 0 `=`,
    /// 1 `>=`, 2 `<`.
    bed: Option<(u8, i64)>,
    /// 0 bag, 1 set, 2 sum, 3 some (short-circuiting).
    monoid: u8,
}

fn shape() -> impl Strategy<Value = Shape> {
    let second = prop_oneof![
        Just(Second::None),
        Just(Second::Dependent),
        Just(Second::Extent),
    ];
    // The vendored proptest shim has no `prop::option`; a paired bool
    // plays the Some/None coin instead.
    let city = (
        prop::bool::ANY,
        prop::sample::select(vec![
            "Portland".to_string(),
            "Seattle".to_string(),
            "Boston".to_string(),
            "Nowhere".to_string(),
        ]),
    )
        .prop_map(|(some, name)| some.then_some(name));
    let bed = (prop::bool::ANY, 0u8..3, -1i64..7)
        .prop_map(|(some, op, k)| some.then_some((op, k)));
    (second, prop::bool::ANY, city, prop::bool::ANY, bed, 0u8..4)
        .prop_map(|(second, rooms, city_name, negate_city, bed, monoid)| Shape {
            second,
            rooms,
            city_name,
            negate_city,
            bed,
            monoid,
        })
}

fn build(shape: &Shape) -> Expr {
    let mut quals = vec![Expr::gen("c", Expr::var("Cities"))];
    if let Some(name) = &shape.city_name {
        let eq = Expr::var("c").proj("name").eq(Expr::str(name));
        quals.push(Expr::pred(if shape.negate_city { eq.not() } else { eq }));
    }
    let have_h = !matches!(shape.second, Second::None);
    match shape.second {
        Second::None => {}
        Second::Dependent => quals.push(Expr::gen("h", Expr::var("c").proj("hotels"))),
        Second::Extent => quals.push(Expr::gen("h", Expr::var("Hotels"))),
    }
    let have_r = have_h && shape.rooms;
    if have_r {
        quals.push(Expr::gen("r", Expr::var("h").proj("rooms")));
        if let Some((op, k)) = shape.bed {
            let lhs = Expr::var("r").proj("bed#");
            let p = match op {
                0 => lhs.eq(Expr::int(k)),
                1 => lhs.ge(Expr::int(k)),
                _ => lhs.lt(Expr::int(k)),
            };
            quals.push(Expr::pred(p));
        }
    }
    let deepest = if have_r {
        Expr::var("r").proj("bed#")
    } else if have_h {
        Expr::var("h").proj("name")
    } else {
        Expr::var("c").proj("name")
    };
    let (monoid, head) = match shape.monoid {
        0 => (Monoid::Bag, deepest),
        1 => (Monoid::Set, deepest),
        2 => (Monoid::Sum, Expr::int(1)),
        _ => (
            Monoid::Some,
            if have_r {
                Expr::var("r").proj("bed#").gt(Expr::int(2))
            } else {
                Expr::var("c").proj("hotel#").gt(Expr::int(0))
            },
        ),
    };
    Expr::comp(monoid, head, quals)
}

// ---------------------------------------------------------------------------
// Key-certificate validation: exhaustive duplicate check over the store.
// ---------------------------------------------------------------------------

/// Every element of the named collection as the generator would see it:
/// extents by root name, dependent paths by field name across the whole
/// heap (the same aggregation the gathered catalog uses).
fn collection_elements(db: &Database, key: Symbol) -> Vec<Value> {
    let mut out = Vec::new();
    for (name, value) in db.roots() {
        if name == key {
            if let Ok(es) = value.elements() {
                out.extend(es);
            }
        }
    }
    for (_, state) in db.heap().iter() {
        if let Value::Record(fields) = state {
            for (fname, fv) in fields.iter() {
                if *fname == key {
                    if let Ok(es) = fv.elements() {
                        out.extend(es);
                    }
                }
            }
        }
    }
    out
}

/// Dereference one level: generators over extents of objects see OIDs,
/// but attribute facts are gathered over the referenced records.
fn deref(db: &Database, v: &Value) -> Value {
    match v {
        Value::Obj(oid) => db.heap().get(*oid).expect("live oid").clone(),
        other => other.clone(),
    }
}

fn check_key_certs(db: &Database, e: &Expr, catalog: &Catalog) -> Result<(), TestCaseError> {
    let facts = infer(e, catalog, &SpanMap::default());
    for cert in &facts.keys {
        let elems = collection_elements(db, cert.collection);
        match cert.attr {
            // A distinct-elements certificate: the raw generator values
            // (OIDs included — object identity is the value) never repeat.
            None => {
                let mut seen = BTreeSet::new();
                for el in &elems {
                    prop_assert!(
                        seen.insert(el.clone()),
                        "duplicate element in `{}` despite cert: {}",
                        cert.collection,
                        cert.reason
                    );
                }
            }
            // A unique-attribute certificate: the attribute's values,
            // over the dereferenced records, never repeat.
            Some(attr) => {
                let mut seen = BTreeSet::new();
                for el in &elems {
                    let Value::Record(fields) = deref(db, el) else { continue };
                    let Some((_, v)) = fields.iter().find(|(n, _)| *n == attr) else {
                        continue;
                    };
                    prop_assert!(
                        seen.insert(v.clone()),
                        "duplicate `{}.{}` despite cert: {}",
                        cert.collection,
                        attr,
                        cert.reason
                    );
                }
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The property.
// ---------------------------------------------------------------------------

proptest! {
    // ≥ 256 random store/query cases per run (the acceptance floor).
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn inferred_interval_contains_observed_rows(s in shape(), seed in 0u64..8) {
        let mut db = travel::generate(TravelScale::tiny(), seed);
        let e = build(&s);
        let stats = Stats::gather(&db);
        let catalog = stats.catalog();
        let facts = infer(&e, catalog, &SpanMap::default());
        let query = plan_comprehension(&e).unwrap();

        // The engine certificate is the fused/parallel decision, statically.
        prop_assert_eq!(
            facts.engine.fused.is_eligible(),
            fused_eligible(&query),
            "fused certificate disagrees with the compiler on {:?}", s
        );
        prop_assert_eq!(
            facts.engine.parallel.is_eligible(),
            static_fallback(&query).is_none(),
            "parallel certificate disagrees with the engine on {:?}", s
        );

        // The probe's observed row count lies inside the inferred interval.
        let analysis = execute_profiled(&query, &mut db).unwrap();
        let actual = analysis.profile.rows_to_reduce as f64;
        prop_assert!(
            actual <= facts.rows.hi + 1e-9,
            "observed {actual} rows above inferred hi {} for {:?}", facts.rows, s
        );
        if !analysis.profile.short_circuited {
            prop_assert!(
                facts.rows.lo <= actual + 1e-9,
                "observed {actual} rows below inferred lo {} for {:?}", facts.rows, s
            );
        }

        // Every key certificate survives an exhaustive duplicate check.
        check_key_certs(&db, &e, catalog)?;
    }
}
