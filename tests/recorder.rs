//! Acceptance tests for the query flight recorder and the bench
//! regression gate (ISSUE: observability):
//!
//! 1. the ring retains exactly the last N records under overflow;
//! 2. the disabled recorder is invisible — no `recorder_*` registry
//!    series moves and nothing is committed;
//! 3. the slow-query capture fires iff the threshold is exceeded;
//! 4. the `--compare` gate fails a synthetically regressed baseline and
//!    passes a self-compare (`tests` in `crates/bench` prove the same at
//!    the process/exit-code level).
//!
//! The recorder, like the metrics registry, is process-global; the
//! tests that touch it serialize on one mutex and restore the enabled
//! flag and slow threshold they found.

use monoid_bench::compare::compare_reports;
use monoid_calculus::metrics;
use monoid_calculus::recorder::{self, CacheDisposition, FlightRecorder, QueryRecord};
use monoid_calculus::trace::Phase;
use monoid_calculus::value::Value;
use monoid_db::{explain_analyze, Params, PlanCache, Session};
use monoid_store::{travel, Database, TravelScale};
use std::sync::Mutex;

/// Serializes tests that mutate the global recorder's configuration.
static LOCK: Mutex<()> = Mutex::new(());

fn lock() -> std::sync::MutexGuard<'static, ()> {
    LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn db() -> Database {
    travel::generate(TravelScale::tiny(), 7)
}

fn private_session() -> Session {
    Session::with_cache(std::sync::Arc::new(PlanCache::new()))
}

const SRC: &str = "select h.name from c in Cities, h in c.hotels where c.name = $city";

fn params() -> Params {
    Params::new().bind("city", Value::str("Portland"))
}

// --- 1. Ring overflow. ------------------------------------------------

#[test]
fn ring_retains_exactly_the_last_n_records() {
    let ring = FlightRecorder::with_capacity(4);
    for i in 0..10 {
        ring.push(QueryRecord::new(&format!("query {i}")));
    }
    let snap = ring.snapshot();
    assert_eq!(snap.len(), 4, "capacity bounds retention");
    assert_eq!(
        snap.iter().map(|r| r.seq).collect::<Vec<_>>(),
        vec![6, 7, 8, 9],
        "exactly the last N, oldest first"
    );
    assert_eq!(snap[0].source, "query 6");
    assert_eq!(ring.recorded_total(), 10, "the cursor counts every commit");
    assert_eq!(ring.len(), 4);
}

// --- 2. The disabled path is invisible. -------------------------------

#[test]
fn disabled_recorder_moves_nothing() {
    let _guard = lock();
    let rec = recorder::global();
    let was_enabled = rec.enabled();
    let was_threshold = rec.slow_threshold();
    rec.set_enabled(false);
    rec.set_slow_threshold(0);

    let session = private_session();
    let mut db = db();
    let total_before = rec.recorded_total();
    let before = metrics::global().snapshot();
    session.query(&mut db, SRC, &params()).unwrap();
    session.query(&mut db, SRC, &params()).unwrap();
    explain_analyze("exists h in Hotels: h.name = \"hotel_0_0\"", &mut db).unwrap();
    let diff = metrics::global().snapshot().diff(&before);

    assert_eq!(rec.recorded_total(), total_before, "nothing committed while disabled");
    for series in ["recorder_records_total", "recorder_errors_total", "recorder_slow_captures_total"]
    {
        assert_eq!(diff.counter(series), 0, "disabled recorder moved {series}");
    }
    assert!(!recorder::active(), "no scope left open");

    // Re-enabling brings the pipeline back: the same workload commits
    // records and bumps the counter.
    rec.set_enabled(true);
    let before = metrics::global().snapshot();
    session.query(&mut db, SRC, &params()).unwrap();
    let diff = metrics::global().snapshot().diff(&before);
    assert_eq!(rec.recorded_total(), total_before + 1);
    assert_eq!(diff.counter("recorder_records_total"), 1);

    rec.set_enabled(was_enabled);
    rec.set_slow_threshold(was_threshold);
}

// --- 3. Slow capture fires iff the threshold is exceeded. -------------

#[test]
fn slow_capture_fires_iff_threshold_exceeded() {
    let _guard = lock();
    let rec = recorder::global();
    let was_enabled = rec.enabled();
    let was_threshold = rec.slow_threshold();
    rec.set_enabled(true);

    let session = private_session();
    let mut db = db();

    // An unreachable threshold: the record commits un-slow, no capture.
    rec.set_slow_threshold(u64::MAX);
    let slow_before = rec.slow_log().len();
    session.query(&mut db, SRC, &params()).unwrap();
    assert_eq!(rec.slow_log().len(), slow_before, "under-threshold query captured");
    let last = rec.snapshot().into_iter().next_back().unwrap();
    assert!(!last.slow);

    // A 1 ns threshold: every query is slow, the capture carries the
    // optimized plan (and, for this pure read, a replayed profile).
    rec.set_slow_threshold(1);
    let slow_before = rec.slow_log().len();
    session.query(&mut db, SRC, &params()).unwrap();
    let log = rec.slow_log();
    assert_eq!(log.len(), slow_before + 1, "over-threshold query not captured");
    let capture = log.last().unwrap();
    let last = rec.snapshot().into_iter().next_back().unwrap();
    assert!(last.slow);
    assert_eq!(capture.seq, last.seq, "capture references the committed record");
    assert_eq!(capture.fingerprint, last.fingerprint);
    assert!(capture.threshold_nanos == 1 && capture.total_nanos >= 1);
    let plan = capture.plan.as_deref().expect("slow capture carries the plan");
    assert!(plan.contains("Scan") || plan.contains("Reduce"), "not a plan: {plan}");
    assert!(capture.profile.is_some(), "pure read is replay-safe, profile attached");

    rec.set_enabled(was_enabled);
    rec.set_slow_threshold(was_threshold);
}

// --- 4. The compare gate. ---------------------------------------------

#[test]
fn compare_gate_passes_self_and_fails_regressed_baseline() {
    let report = monoid_bench::regress::run_with(true, false).to_json();

    // Self-compare: identical numbers, nothing can regress.
    let verdict = compare_reports(&report, &report, 50.0, 0.0).unwrap();
    assert!(verdict.passed(), "self-compare regressed: {}", verdict.render());
    assert!(verdict.compared > 0, "gate compared nothing");
    assert!(!verdict.mode_mismatch);

    // Synthetically regressed baseline: every gated metric of the
    // baseline drops to 0 ns, so the fresh numbers all exceed tolerance.
    let mut regressed = report.clone();
    zero_latencies(&mut regressed);
    let verdict = compare_reports(&report, &regressed, 50.0, 0.0).unwrap();
    assert!(!verdict.passed(), "regressed baseline passed: {}", verdict.render());
    assert_eq!(
        verdict.regressions.len(),
        verdict.compared,
        "every compared metric regressed against a zeroed baseline"
    );
    assert!(verdict.render().contains("FAIL"));
}

/// Set every gated latency field of a regress report to zero, in place.
fn zero_latencies(report: &mut monoid_calculus::json::Json) {
    use monoid_calculus::json::Json;
    let Json::Obj(sections) = report else { panic!("report is not an object") };
    for (section, gated) in [
        ("queries", vec!["median_nanos", "p95_nanos"]),
        ("prepared", vec!["warm_median_nanos"]),
        ("parallel", vec!["fused_median_nanos"]),
        ("serving", vec!["warm_nanos_per_query"]),
    ] {
        let Some(Json::Arr(cases)) =
            sections.iter_mut().find(|(k, _)| k == section).map(|(_, v)| v)
        else {
            panic!("report has no `{section}` array");
        };
        for case in cases {
            let Json::Obj(fields) = case else { continue };
            for (k, v) in fields.iter_mut() {
                if gated.contains(&k.as_str()) {
                    *v = Json::Int(0);
                }
            }
        }
    }
}

// --- Field threading through the serving layer. -----------------------

#[test]
fn session_queries_thread_every_field() {
    let _guard = lock();
    let rec = recorder::global();
    let was_enabled = rec.enabled();
    let was_threshold = rec.slow_threshold();
    rec.set_enabled(true);
    rec.set_slow_threshold(0);

    let session = private_session();
    let mut db = db();

    // Cold: a miss that carries the prepare trace's phases.
    session.query(&mut db, SRC, &params()).unwrap();
    let miss = rec.snapshot().into_iter().next_back().unwrap();
    assert_eq!(miss.session, Some(session.id()));
    assert_eq!(miss.cache, CacheDisposition::Miss);
    assert_eq!(miss.source, SRC);
    assert_eq!(miss.fingerprint, recorder::fingerprint(SRC));
    assert!(miss.ok());
    assert!(!miss.slow);
    assert!(miss.phase_nanos(Phase::Parse) > 0, "cold prepare parsed");
    assert!(miss.phase_nanos(Phase::Execute) > 0, "execution timed");
    assert!(miss.total_nanos >= miss.phase_nanos(Phase::Execute));
    assert!(miss.rows >= 1);
    assert!(!miss.effects.is_empty(), "effect summary threaded");

    // Warm: a hit fires no front-of-pipeline phases.
    session.query(&mut db, SRC, &params()).unwrap();
    let hit = rec.snapshot().into_iter().next_back().unwrap();
    assert_eq!(hit.cache, CacheDisposition::Hit);
    assert_eq!(hit.phase_nanos(Phase::Parse), 0, "warm serve re-parsed");
    assert!(hit.phase_nanos(Phase::Execute) > 0);
    assert_eq!(hit.fingerprint, miss.fingerprint, "same statement, same key");
    assert!(hit.seq > miss.seq);

    // Failures commit too, with the error and outcome recorded.
    let before_errors = rec.recorded_total();
    assert!(session.query(&mut db, "select ! from", &params()).is_err());
    assert_eq!(rec.recorded_total(), before_errors + 1);
    let failed = rec.snapshot().into_iter().next_back().unwrap();
    assert!(!failed.ok());
    assert!(failed.error.is_some());

    // The parallel engine's fallback reason lands on the record.
    let expr = monoid_oql::compile(db.schema(), "sum(select r.price from h in Hotels, r in h.rooms)")
        .unwrap();
    let (canonical, _, _) = monoid_calculus::normalize::normalize_traced(&expr);
    let plan = monoid_algebra::plan_comprehension(&canonical).unwrap();
    monoid_algebra::execute_parallel_metered(&plan, &mut db, 1).unwrap();
    let fell_back = rec.snapshot().into_iter().next_back().unwrap();
    assert_eq!(fell_back.cache, CacheDisposition::Uncached);
    assert_eq!(fell_back.parallel_fallback.as_deref(), Some("single-thread"));

    // The journal round-trips every record through JSON text.
    let journal = rec.to_json().render();
    let records = monoid_bench::top::load_journal(&journal).unwrap();
    assert_eq!(records.len(), rec.len());
    assert!(records.iter().any(|r| r.fingerprint == miss.fingerprint));
    assert!(records.iter().any(|r| !r.ok()));

    rec.set_enabled(was_enabled);
    rec.set_slow_threshold(was_threshold);
}

// --- 5. Concurrent pushers. -------------------------------------------

#[test]
fn concurrent_pushers_keep_the_ring_consistent() {
    // N threads × M pushes against one ring: retention stays exactly at
    // capacity, sequence numbers are globally unique and the snapshot is
    // ordered by them, and no record is torn (each record's fields stay
    // internally consistent with the source its thread wrote).
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50;
    const CAPACITY: usize = 64;

    let ring = std::sync::Arc::new(FlightRecorder::with_capacity(CAPACITY));
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for q in 0..PER_THREAD {
                    let mut r = QueryRecord::new(&format!("t{t}-q{q}"));
                    // rows encodes (t, q) redundantly with the source so
                    // a torn write is detectable.
                    r.rows = t * 1000 + q;
                    r.total_nanos = r.rows + 1;
                    ring.push(r);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    assert_eq!(ring.recorded_total(), THREADS * PER_THREAD);
    assert_eq!(ring.len(), CAPACITY, "retention is exactly the capacity");
    let snap = ring.snapshot();
    assert_eq!(snap.len(), CAPACITY);
    // Sequence numbers: strictly increasing (snapshot order), unique,
    // and all within the issued range.
    for pair in snap.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "snapshot ordered by seq");
    }
    assert!(snap.iter().all(|r| r.seq < THREADS * PER_THREAD));
    // No torn records: every record's source agrees with its payload.
    for r in &snap {
        let (t, q) = r
            .source
            .strip_prefix('t')
            .and_then(|s| s.split_once("-q"))
            .and_then(|(t, q)| Some((t.parse::<u64>().ok()?, q.parse::<u64>().ok()?)))
            .unwrap_or_else(|| panic!("unexpected source {:?}", r.source));
        assert_eq!(r.rows, t * 1000 + q, "torn record: {:?}", r.source);
        assert_eq!(r.total_nanos, r.rows + 1, "torn record: {:?}", r.source);
    }
}
