//! The plan cache's freshness stamp is the full `(instance_id,
//! mutation_epoch)` pair, not the epoch alone. Epoch numbers are only
//! comparable within one database instance: two freshly-generated
//! databases march through the *same* epoch values, so an epoch-only
//! stamp would serve one instance's plan — and the optimizer statistics
//! baked into it — to the other. These tests pin the pair semantics for
//! the live-database path, the snapshot path, and the one-slot stats
//! gather reuse behind `prepare_on`.

use monoid_db::calculus::value::Value;
use monoid_db::store::{travel, Database, TravelScale};
use monoid_db::{Params, PlanCache, Session};
use std::sync::Arc;

fn db(seed: u64) -> Database {
    travel::generate(TravelScale::tiny(), seed)
}

const SRC: &str = "select h.name from c in Cities, h in c.hotels where c.name = $city";

fn params() -> Params {
    Params::new().bind("city", Value::str("Portland"))
}

/// Two instances at identical epochs must not share entries: the lookup
/// on the second instance is a miss, not a cross-instance hit.
#[test]
fn identical_epochs_on_different_instances_do_not_collide() {
    let a = db(7);
    let b = db(7); // same seed, same schema, same epoch trajectory
    assert_eq!(a.mutation_epoch(), b.mutation_epoch(), "the trap this test pins");
    assert_ne!(a.instance_id(), b.instance_id());

    let cache = PlanCache::new();
    let (for_a, hit) = cache.get_or_prepare_traced(&a, SRC).unwrap();
    assert!(!hit, "first lookup is cold");
    let (for_b, hit) = cache.get_or_prepare_traced(&b, SRC).unwrap();
    assert!(!hit, "same epoch but a different instance must miss");
    assert!(!Arc::ptr_eq(&for_a, &for_b), "each instance prepared its own statement");

    // Within one instance the entry is served normally.
    let (again, hit) = cache.get_or_prepare_traced(&b, SRC).unwrap();
    assert!(hit);
    assert!(Arc::ptr_eq(&for_b, &again));
}

/// The snapshot path uses the same pair: a snapshot of instance A never
/// hits instance B's entry, and a snapshot at the entry's own stamp
/// does.
#[test]
fn snapshot_lookups_respect_the_instance_half() {
    let a = db(9);
    let b = db(9);
    let cache = PlanCache::new();

    let (for_a, _) = cache.get_or_prepare_snapshot_traced(&a.snapshot(), SRC).unwrap();
    let (hit_a, disposition) = cache.get_or_prepare_snapshot_traced(&a.snapshot(), SRC).unwrap();
    assert!(disposition, "same instance, same epoch: hit");
    assert!(Arc::ptr_eq(&for_a, &hit_a));

    let (for_b, disposition) =
        cache.get_or_prepare_snapshot_traced(&b.snapshot(), SRC).unwrap();
    assert!(!disposition, "other instance at the same epoch: miss");
    assert!(!Arc::ptr_eq(&for_a, &for_b));

    // A writer on the live database and a snapshot pinned at the old
    // epoch key different entries too.
    let mut a = a;
    let pinned = a.snapshot();
    a.set_root("Scratch", Value::Int(1));
    let (fresh, disposition) = cache.get_or_prepare_traced(&a, SRC).unwrap();
    assert!(!disposition, "the epoch moved: re-prepare");
    let (old, disposition) = cache.get_or_prepare_snapshot_traced(&pinned, SRC).unwrap();
    // The pinned epoch's entry was replaced by the fresh one in the LRU
    // slot, so this is a miss that re-prepares at the pinned stamp — the
    // important property is it never serves the *newer* epoch's entry.
    assert!(!disposition);
    assert!(!Arc::ptr_eq(&fresh, &old));

    // Both statements still execute correctly against their own stamp.
    let session = Session::with_cache(Arc::new(PlanCache::new()));
    let live = session.query(&mut a, SRC, &params()).unwrap();
    let snap_v = session.query_snapshot(&pinned, SRC, &params()).unwrap();
    assert_eq!(live, snap_v, "scratch root does not affect the query result");
}

/// End-to-end through `Session`: statements served to two instances in
/// alternation never cross-contaminate results.
#[test]
fn alternating_instances_get_their_own_answers() {
    let mut small = db(11);
    let mut grown = db(11);
    // Grow one instance so the two answers differ.
    grown
        .insert(
            monoid_db::calculus::symbol::Symbol::new("City"),
            Value::record_from(vec![
                ("name", Value::str("Extra")),
                ("hotels", Value::list(vec![])),
                ("hotel#", Value::Int(0)),
            ]),
        )
        .unwrap();

    let session = Session::with_cache(Arc::new(PlanCache::new()));
    let count_small = session.query(&mut small, "count(Cities)", &Params::new()).unwrap();
    let count_grown = session.query(&mut grown, "count(Cities)", &Params::new()).unwrap();
    assert_eq!(count_small, Value::Int(3));
    assert_eq!(count_grown, Value::Int(4));
    // Alternate a few times: every answer stays with its instance.
    for _ in 0..3 {
        assert_eq!(
            session.query(&mut small, "count(Cities)", &Params::new()).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            session.query(&mut grown, "count(Cities)", &Params::new()).unwrap(),
            Value::Int(4)
        );
    }
}
