//! Failure injection: every user-facing error path produces a specific,
//! actionable error — no panics, no silent wrong answers. (The paper's
//! effectiveness argument leans on *compile-time* rejection of
//! inconsistent programs; these tests pin down what rejection looks like.)

use monoid_db::calculus::error::{EvalError, TypeError};
use monoid_db::calculus::eval::eval_closed;
use monoid_db::calculus::expr::{Expr, UnOp};
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::typecheck::infer;
use monoid_db::oql;
use monoid_db::store::travel::{self, TravelScale};

// ---------- type errors ----------

#[test]
fn unbound_variable() {
    let err = infer(&Expr::var("nowhere")).unwrap_err();
    assert!(matches!(err, TypeError::UnboundVariable(_)));
    assert!(err.to_string().contains("nowhere"));
}

#[test]
fn illegal_homomorphism_names_both_monoids() {
    let e = Expr::comp(
        Monoid::Bag,
        Expr::var("x"),
        vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1)]))],
    );
    let err = infer(&e).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("set") && msg.contains("bag"), "{msg}");
    assert!(msg.contains("§2.3"), "cites the paper: {msg}");
}

#[test]
fn generator_over_scalar() {
    let e = Expr::comp(
        Monoid::Sum,
        Expr::var("x"),
        vec![Expr::gen("x", Expr::int(5))],
    );
    assert!(matches!(infer(&e), Err(TypeError::NotACollection { .. })));
}

#[test]
fn missing_field_names_the_field() {
    let e = Expr::record(vec![("a", Expr::int(1))]).proj("b");
    let err = infer(&e).unwrap_err();
    assert!(matches!(err, TypeError::NoSuchField { .. }));
    assert!(err.to_string().contains('b'));
}

#[test]
fn occurs_check_rejects_infinite_types() {
    // λx. x x forces τ = τ → r.
    let e = Expr::lambda("x", Expr::var("x").apply(Expr::var("x")));
    assert!(matches!(infer(&e), Err(TypeError::InfiniteType)));
}

#[test]
fn branch_mismatch() {
    let e = Expr::if_(Expr::bool(true), Expr::int(1), Expr::str("s"));
    assert!(matches!(infer(&e), Err(TypeError::Mismatch { .. })));
}

#[test]
fn non_boolean_predicate() {
    let e = Expr::comp(
        Monoid::Set,
        Expr::var("x"),
        vec![Expr::gen("x", Expr::list_of(vec![Expr::int(1)])), Expr::pred(Expr::int(7))],
    );
    assert!(infer(&e).is_err());
}

// ---------- evaluation errors ----------

#[test]
fn division_and_modulo_by_zero() {
    assert!(matches!(
        eval_closed(&Expr::int(1).div(Expr::int(0))),
        Err(EvalError::Arithmetic(_))
    ));
    assert!(matches!(
        eval_closed(&Expr::binop(
            monoid_db::calculus::expr::BinOp::Mod,
            Expr::int(1),
            Expr::int(0)
        )),
        Err(EvalError::Arithmetic(_))
    ));
}

#[test]
fn integer_overflow_is_detected() {
    let e = Expr::int(i64::MAX).add(Expr::int(1));
    assert!(matches!(eval_closed(&e), Err(EvalError::Arithmetic(_))));
    let e = Expr::int(i64::MIN).mul(Expr::int(-1));
    assert!(matches!(eval_closed(&e), Err(EvalError::Arithmetic(_))));
}

#[test]
fn vector_index_out_of_bounds() {
    let e = Expr::VecLit(vec![Expr::int(1)]).vec_index(Expr::int(5));
    assert!(matches!(
        eval_closed(&e),
        Err(EvalError::IndexOutOfBounds { index: 5, len: 1 })
    ));
    let e = Expr::VecLit(vec![Expr::int(1)]).vec_index(Expr::int(-1));
    assert!(matches!(eval_closed(&e), Err(EvalError::IndexOutOfBounds { .. })));
}

#[test]
fn element_cardinality_is_reported() {
    let e = Expr::UnOp(UnOp::Element, Box::new(Expr::set_of(vec![])));
    assert!(matches!(eval_closed(&e), Err(EvalError::ElementCardinality(0))));
}

#[test]
fn deref_of_non_object() {
    let e = Expr::int(3).deref();
    assert!(matches!(eval_closed(&e), Err(EvalError::TypeMismatch { op: "deref", .. })));
}

#[test]
fn assign_to_non_object() {
    let e = Expr::int(3).assign(Expr::int(4));
    assert!(matches!(eval_closed(&e), Err(EvalError::TypeMismatch { op: "assign", .. })));
}

#[test]
fn apply_non_function() {
    let e = Expr::int(3).apply(Expr::int(4));
    assert!(matches!(eval_closed(&e), Err(EvalError::TypeMismatch { op: "apply", .. })));
}

// ---------- OQL errors ----------

#[test]
fn parse_errors_have_positions() {
    let err = oql::parse_query("select\nfrom x").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("parse error at 2:1"), "{msg}");
}

#[test]
fn lex_errors_have_positions() {
    let err = oql::parse_query("select ` from x").unwrap_err();
    assert!(err.to_string().contains("lex error"), "{err}");
}

#[test]
fn unknown_extent_is_a_type_error() {
    let db = travel::generate(TravelScale::tiny(), 1);
    let err = oql::compile(db.schema(), "select x.name from x in Nowhere").unwrap_err();
    assert!(err.to_string().contains("Nowhere"), "{err}");
}

#[test]
fn non_collection_from_clause() {
    let db = travel::generate(TravelScale::tiny(), 1);
    let err = oql::compile(db.schema(), "select x from x in 3").unwrap_err();
    assert!(err.to_string().contains("not a collection"), "{err}");
}

#[test]
fn bad_field_in_query() {
    let db = travel::generate(TravelScale::tiny(), 1);
    let err = oql::compile(db.schema(), "select c.nam from c in Cities").unwrap_err();
    assert!(err.to_string().contains("nam"), "{err}");
}

#[test]
fn mixed_direction_nonnumeric_desc_is_explained() {
    let db = travel::generate(TravelScale::tiny(), 1);
    let err = oql::compile(
        db.schema(),
        "select struct(a: c.name, b: c.hotel#) from c in Cities \
         order by c.name desc, c.hotel# asc",
    )
    .unwrap_err();
    assert!(err.to_string().contains("desc"), "{err}");
}

#[test]
fn deep_nesting_is_a_clean_error() {
    let src = format!("{}1{}", "(".repeat(64), ")".repeat(64));
    let err = oql::parse_query(&src).unwrap_err();
    assert!(err.to_string().contains("nesting"), "{err}");
}

// ---------- algebra errors ----------

#[test]
fn planning_impure_queries_is_refused() {
    use monoid_db::algebra;
    let e = Expr::comp(
        Monoid::Sum,
        Expr::var("x").deref(),
        vec![Expr::gen("x", Expr::new_obj(Expr::int(1)))],
    );
    assert!(matches!(
        algebra::plan_comprehension(&e),
        Err(algebra::PlanError::Impure)
    ));
}

#[test]
fn runtime_errors_propagate_through_pipelines() {
    use monoid_db::algebra;
    let mut db = travel::generate(TravelScale::tiny(), 1);
    // Division by zero inside the head.
    let e = Expr::comp(
        Monoid::Sum,
        Expr::int(1).div(Expr::var("c").proj("hotel#").sub(Expr::var("c").proj("hotel#"))),
        vec![Expr::gen("c", Expr::var("Cities"))],
    );
    let plan = algebra::plan_comprehension(&e).unwrap();
    assert!(matches!(
        algebra::execute(&plan, &mut db),
        Err(EvalError::Arithmetic(_))
    ));
}
