//! Property-based tests over the calculus core:
//!
//! * **Meaning preservation** — `eval(normalize(e)) == eval(e)` for
//!   randomly generated *well-typed* terms (the paper proves each Table-3
//!   rule correct; this is the mechanized counterpart).
//! * Normalization idempotence and canonicity.
//! * Monoid laws on random values (associativity, identity, and the
//!   declared C/I properties — Table 1's fine print).
//! * Substitution/free-variable algebra.
//! * `like` against a reference matcher.
//! * The total order on values.

use monoid_db::calculus::error::EvalError;
use monoid_db::calculus::eval::{like_match, Evaluator};
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::normalize::{is_canonical, normalize};
use monoid_db::calculus::pretty::pretty;
use monoid_db::calculus::subst::{free_vars, subst};
use monoid_db::calculus::symbol::Symbol;
use monoid_db::calculus::typecheck::infer;
use monoid_db::calculus::value::{self, Value};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// A generator of well-typed, pure, closed collection expressions over ints.
// ---------------------------------------------------------------------------

/// The collection kind of a generated expression (its type constructor).
#[derive(Debug, Clone, Copy, PartialEq)]
enum Kind {
    List,
    Bag,
    Set,
}

impl Kind {
    fn monoid(self) -> Monoid {
        match self {
            Kind::List => Monoid::List,
            Kind::Bag => Monoid::Bag,
            Kind::Set => Monoid::Set,
        }
    }

    /// Kinds legal as generator sources for an output monoid with these
    /// props (the C/I restriction, statically respected by construction).
    fn legal_sources(out: &Monoid) -> &'static [Kind] {
        let p = out.props();
        match (p.commutative, p.idempotent) {
            (true, true) => &[Kind::List, Kind::Bag, Kind::Set],
            (true, false) => &[Kind::List, Kind::Bag],
            _ => &[Kind::List],
        }
    }
}

fn int_literal() -> impl Strategy<Value = Expr> {
    (-5i64..6).prop_map(Expr::int)
}

/// A literal collection of the given kind.
fn leaf(kind: Kind) -> BoxedStrategy<Expr> {
    prop::collection::vec(int_literal(), 0..4)
        .prop_map(move |items| Expr::CollLit(kind.monoid(), items))
        .boxed()
}

/// Scalar head expression over a bound variable.
fn head_over(var: Symbol) -> BoxedStrategy<Expr> {
    prop_oneof![
        Just(Expr::Var(var)),
        (-3i64..4).prop_map(move |k| Expr::Var(var).add(Expr::int(k))),
        (1i64..4).prop_map(move |k| Expr::Var(var).mul(Expr::int(k))),
        (-3i64..4).prop_map(Expr::int),
        // A record projection — exercises rule N2 under normalization.
        (-3i64..4).prop_map(move |k| {
            Expr::record(vec![("a", Expr::Var(var)), ("b", Expr::int(k))]).proj("a")
        }),
        // A tuple projection.
        (-3i64..4).prop_map(move |k| {
            Expr::Tuple(vec![Expr::int(k), Expr::Var(var)]).tproj(1)
        }),
        // A conditional head.
        ((-3i64..4), (-3i64..4)).prop_map(move |(k, j)| {
            Expr::if_(Expr::Var(var).gt(Expr::int(k)), Expr::Var(var), Expr::int(j))
        }),
        // A beta redex — exercises rule N1.
        (-3i64..4).prop_map(move |k| {
            Expr::lambda("lam_p", Expr::var("lam_p").add(Expr::int(k)))
                .apply(Expr::Var(var))
        }),
        // A let — exercises rule N12.
        (1i64..4).prop_map(move |k| {
            Expr::let_("let_v", Expr::Var(var).mul(Expr::int(k)), {
                Expr::var("let_v").add(Expr::var("let_v"))
            })
        }),
    ]
    .boxed()
}

/// Predicate over a bound variable — possibly an exists-subquery to
/// exercise rule N6.
fn pred_over(var: Symbol, depth: u32) -> BoxedStrategy<Expr> {
    let simple = prop_oneof![
        (-3i64..4).prop_map(move |k| Expr::Var(var).le(Expr::int(k))),
        (-3i64..4).prop_map(move |k| Expr::Var(var).gt(Expr::int(k))),
        (-3i64..4).prop_map(move |k| Expr::Var(var).eq(Expr::int(k))),
        Just(Expr::bool(true)),
        ((-3i64..4), (-3i64..4)).prop_map(move |(a, b)| {
            Expr::Var(var).ge(Expr::int(a)).and(Expr::Var(var).le(Expr::int(b)))
        }),
    ];
    if depth == 0 {
        return simple.boxed();
    }
    let witness = Symbol::fresh("w");
    let exists = leaf(Kind::Bag).prop_map(move |src| {
        Expr::comp(
            Monoid::Some,
            Expr::Var(witness).eq(Expr::Var(var)),
            vec![Expr::gen(witness, src)],
        )
    });
    prop_oneof![3 => simple, 1 => exists].boxed()
}

/// A well-typed collection expression of the given kind.
fn coll(kind: Kind, depth: u32) -> BoxedStrategy<Expr> {
    if depth == 0 {
        return leaf(kind);
    }
    let m = kind.monoid();
    let sources = Kind::legal_sources(&m);

    // A comprehension with 1–2 generators and 0–1 predicates.
    let src_kind = prop::sample::select(sources.to_vec());
    let comp = (src_kind, prop::bool::ANY, prop::bool::ANY).prop_flat_map(
        move |(sk, two_gens, with_pred)| {
            let v1 = Symbol::fresh("v");
            let v2 = Symbol::fresh("v");
            let head_var = if two_gens { v2 } else { v1 };
            let g1 = coll(sk, depth - 1);
            let g2 = if two_gens {
                coll(sk, depth - 1).prop_map(Some).boxed()
            } else {
                Just(None).boxed()
            };
            let p = if with_pred {
                pred_over(head_var, depth - 1).prop_map(Some).boxed()
            } else {
                Just(None).boxed()
            };
            let m = m.clone();
            (g1, g2, p, head_over(head_var)).prop_map(move |(s1, s2, pred, head)| {
                let mut quals = vec![Expr::gen(v1, s1)];
                if let Some(s2) = s2 {
                    quals.push(Expr::gen(v2, s2));
                }
                if let Some(pred) = pred {
                    quals.push(Expr::pred(pred));
                }
                Expr::comp(m.clone(), head, quals)
            })
        },
    );

    // A merge of two sub-collections.
    let m2 = kind.monoid();
    let merge = (coll(kind, depth - 1), coll(kind, depth - 1))
        .prop_map(move |(a, b)| Expr::merge(m2.clone(), a, b));

    prop_oneof![2 => comp, 1 => merge, 1 => leaf(kind)].boxed()
}

/// A top-level term: a collection of any kind, or a primitive reduction
/// (sum / max / some) over a legal source.
fn term() -> BoxedStrategy<Expr> {
    let coll_term = prop::sample::select(vec![Kind::List, Kind::Bag, Kind::Set])
        .prop_flat_map(|k| coll(k, 2));
    let prim = prop::sample::select(vec![Monoid::Sum, Monoid::Max, Monoid::Some, Monoid::All])
        .prop_flat_map(|m| {
            let sk = prop::sample::select(Kind::legal_sources(&m).to_vec());
            sk.prop_flat_map(move |k| {
                let m = m.clone();
                let v = Symbol::fresh("t");
                let head = match m {
                    Monoid::Some | Monoid::All => {
                        Expr::Var(v).gt(Expr::int(0))
                    }
                    _ => Expr::Var(v),
                };
                coll(k, 2).prop_map(move |src| {
                    Expr::comp(m.clone(), head.clone(), vec![Expr::gen(v, src)])
                })
            })
        });
    prop_oneof![3 => coll_term, 1 => prim].boxed()
}

fn eval_budgeted(e: &Expr) -> Result<Value, EvalError> {
    Evaluator::with_budget(2_000_000).eval_expr(e)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The central theorem: normalization preserves meaning on well-typed
    /// terms, its output is canonical, and it is idempotent.
    #[test]
    fn normalize_preserves_meaning(e in term()) {
        prop_assert!(infer(&e).is_ok(), "generated term must be well-typed: {}", pretty(&e));
        let direct = match eval_budgeted(&e) {
            Ok(v) => v,
            Err(EvalError::BudgetExhausted) => return Ok(()), // pathological size
            Err(other) => return Err(TestCaseError::fail(format!(
                "well-typed term failed to evaluate: {other} in {}", pretty(&e)
            ))),
        };
        let n = normalize(&e);
        let normalized = eval_budgeted(&n).map_err(|err| TestCaseError::fail(format!(
            "normalized term failed: {err} in {}", pretty(&n)
        )))?;
        prop_assert_eq!(
            &direct, &normalized,
            "meaning changed:\n  before: {}\n  after:  {}", pretty(&e), pretty(&n)
        );
        prop_assert!(is_canonical(&n), "not canonical: {}", pretty(&n));
        let n2 = normalize(&n);
        prop_assert_eq!(&n, &n2, "normalize not idempotent");
    }

    /// The calculus parser inverts the pretty-printer on the comprehension
    /// fragment: `parse(pretty(e)) = e`.
    #[test]
    fn parse_inverts_pretty(e in term()) {
        use monoid_db::calculus::parse::parse_expr;
        let printed = pretty(&e);
        let reparsed = parse_expr(&printed).map_err(|err| TestCaseError::fail(format!(
            "could not reparse `{printed}`: {err}"
        )))?;
        prop_assert_eq!(&e, &reparsed, "round trip changed `{}`", printed);
    }

    /// Well-typed terms evaluate without type errors (soundness of the
    /// static check w.r.t. the dynamic one).
    #[test]
    fn well_typed_terms_evaluate(e in term()) {
        prop_assert!(infer(&e).is_ok());
        match eval_budgeted(&e) {
            Ok(_) | Err(EvalError::BudgetExhausted) => {}
            Err(other) => prop_assert!(false, "eval failed: {other} in {}", pretty(&e)),
        }
    }
}

// ---------------------------------------------------------------------------
// Monoid laws on random values.
// ---------------------------------------------------------------------------

fn scalar_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-9i64..10).prop_map(Value::Int),
        any::<bool>().prop_map(Value::Bool),
        "[a-c]{0,3}".prop_map(|s| Value::str(&s)),
    ]
}

/// A value of the monoid's carrier built from units and merges.
fn carrier_value(m: Monoid) -> BoxedStrategy<Value> {
    match m {
        Monoid::Sum | Monoid::Prod => (-9i64..10).prop_map(Value::Int).boxed(),
        Monoid::Max | Monoid::Min => {
            prop_oneof![(-9i64..10).prop_map(Value::Int), Just(Value::Null)].boxed()
        }
        Monoid::Some | Monoid::All => any::<bool>().prop_map(Value::Bool).boxed(),
        Monoid::Str => "[a-c]{0,4}".prop_map(|s| Value::str(&s)).boxed(),
        _ => prop::collection::vec(scalar_value(), 0..5)
            .prop_map(move |items| {
                // Build via the monoid's own unit/merge so values are valid
                // carrier elements.
                let mut acc = value::zero(&m).expect("zero");
                for item in items {
                    let u = value::unit(&m, item).expect("unit");
                    acc = value::merge(&m, &acc, &u).expect("merge");
                }
                acc
            })
            .boxed(),
    }
}

fn basic_monoid() -> impl Strategy<Value = Monoid> {
    prop::sample::select(Monoid::all_basic().to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Table 1's laws: associativity, identity, and the declared C/I
    /// properties — on random carrier values.
    #[test]
    fn monoid_laws(m in basic_monoid(), seed in any::<u64>()) {
        // Derive three carrier values deterministically from the seed.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed;
        let strat = carrier_value(m.clone());
        let a = strat.new_tree(&mut runner).unwrap().current();
        let b = strat.new_tree(&mut runner).unwrap().current();
        let c = strat.new_tree(&mut runner).unwrap().current();

        let z = value::zero(&m).unwrap();
        // identity
        prop_assert_eq!(value::merge(&m, &z, &a).unwrap(), a.clone());
        prop_assert_eq!(value::merge(&m, &a, &z).unwrap(), a.clone());
        // associativity
        let ab = value::merge(&m, &a, &b).unwrap();
        let bc = value::merge(&m, &b, &c).unwrap();
        prop_assert_eq!(
            value::merge(&m, &ab, &c).unwrap(),
            value::merge(&m, &a, &bc).unwrap()
        );
        // declared properties
        if m.props().commutative {
            prop_assert_eq!(value::merge(&m, &a, &b).unwrap(), value::merge(&m, &b, &a).unwrap());
        }
        if m.props().idempotent {
            prop_assert_eq!(value::merge(&m, &a, &a).unwrap(), a.clone());
        }
    }

    /// The total order on values really is total and consistent.
    #[test]
    fn value_order_is_total(mut vals in prop::collection::vec(scalar_value(), 2..6)) {
        vals.sort();
        for w in vals.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        // Equality is consistent with ordering.
        for a in &vals {
            for b in &vals {
                let eq = a == b;
                let cmp_eq = a.cmp(b) == std::cmp::Ordering::Equal;
                prop_assert_eq!(eq, cmp_eq);
            }
        }
    }

    /// set_from is order-insensitive and idempotent.
    #[test]
    fn set_from_is_canonical(items in prop::collection::vec(scalar_value(), 0..8)) {
        let a = Value::set_from(items.clone());
        let mut rev = items.clone();
        rev.reverse();
        let b = Value::set_from(rev);
        prop_assert_eq!(&a, &b);
        let again = Value::set_from(a.elements().unwrap());
        prop_assert_eq!(a, again);
    }
}

// ---------------------------------------------------------------------------
// Substitution algebra.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Substituting into a closed term is the identity; substituting a
    /// closed value removes the variable from the free set.
    #[test]
    fn subst_properties(e in term(), k in -5i64..6) {
        let x = Symbol::new("zz_unused");
        // Terms from `term()` are closed: substitution is identity.
        prop_assert_eq!(subst(&e, x, &Expr::int(k)), e.clone());
        prop_assert!(free_vars(&e).is_empty(), "{}", pretty(&e));
    }

    /// An open term built by wrapping: e + x, then substituting x, is
    /// closed and evaluates to the expected shifted result.
    #[test]
    fn subst_closes_open_terms(k in -5i64..6) {
        let x = Symbol::new("free_x");
        let open = Expr::Var(x).add(Expr::int(1));
        prop_assert!(free_vars(&open).contains(&x));
        let closed = subst(&open, x, &Expr::int(k));
        prop_assert!(free_vars(&closed).is_empty());
        let v = eval_budgeted(&closed).unwrap();
        prop_assert_eq!(v, Value::Int(k + 1));
    }
}

// ---------------------------------------------------------------------------
// like_match against a reference implementation.
// ---------------------------------------------------------------------------

/// Exponential-free reference matcher by dynamic programming, over the
/// full pattern language: `%`, `_`, and `\`-escapes. Returns `None` on a
/// dangling trailing escape (the evaluator reports an error there).
fn like_reference(s: &str, pat: &str) -> Option<bool> {
    // Tokenize: Some(c) = literal char, None = %, plus a separate _ marker.
    enum T {
        Lit(char),
        One,
        Many,
    }
    let mut toks = Vec::new();
    let mut chars = pat.chars();
    while let Some(c) = chars.next() {
        toks.push(match c {
            '\\' => T::Lit(chars.next()?),
            '%' => T::Many,
            '_' => T::One,
            other => T::Lit(other),
        });
    }
    let s: Vec<char> = s.chars().collect();
    let mut dp = vec![vec![false; toks.len() + 1]; s.len() + 1];
    dp[0][0] = true;
    for j in 1..=toks.len() {
        dp[0][j] = matches!(toks[j - 1], T::Many) && dp[0][j - 1];
    }
    for i in 1..=s.len() {
        for j in 1..=toks.len() {
            dp[i][j] = match toks[j - 1] {
                T::Many => dp[i - 1][j] || dp[i][j - 1],
                T::One => dp[i - 1][j - 1],
                T::Lit(c) => c == s[i - 1] && dp[i - 1][j - 1],
            };
        }
    }
    Some(dp[s.len()][toks.len()])
}

// ---------------------------------------------------------------------------
// Ordered parallel reduction agrees with sequential execution — for every
// monoid (ordered ones included: the merge happens in partition order) and
// across thread counts, including allocating heads.
// ---------------------------------------------------------------------------

/// One comprehension per monoid over the travel store. Every source is an
/// extent (a list), so all output monoids are legal; `Prod` gets a
/// constant head to stay clear of overflow.
fn parallel_cases() -> Vec<(&'static str, Expr)> {
    let rooms = |monoid: Monoid, head: Expr| {
        Expr::comp(
            monoid,
            head,
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        )
    };
    let price = || Expr::var("r").proj("price");
    vec![
        ("list", rooms(Monoid::List, price())),
        ("bag", rooms(Monoid::Bag, price())),
        ("set", rooms(Monoid::Set, price())),
        ("oset", rooms(Monoid::OSet, price())),
        ("sorted", rooms(Monoid::Sorted, price())),
        ("sorted-bag", rooms(Monoid::SortedBag, price())),
        ("sum", rooms(Monoid::Sum, price())),
        ("prod", rooms(Monoid::Prod, Expr::int(1))),
        ("max", rooms(Monoid::Max, price())),
        ("min", rooms(Monoid::Min, price())),
        ("some", rooms(Monoid::Some, price().gt(Expr::int(1_000_000)))),
        ("all", rooms(Monoid::All, price().gt(Expr::int(-1)))),
        (
            "str",
            Expr::comp(
                Monoid::Str,
                Expr::var("h").proj("name"),
                vec![Expr::gen("h", Expr::var("Hotels"))],
            ),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `execute_parallel(q, db, t) == execute(q, db)` — byte-identical,
    /// whatever the monoid and thread count.
    #[test]
    fn parallel_execution_agrees_with_sequential(seed in 0u64..4, ti in 0usize..4) {
        use monoid_db::algebra;
        use monoid_db::store::{travel, TravelScale};
        let threads = [1usize, 2, 3, 8][ti];
        let mut db = travel::generate(TravelScale::tiny(), seed);
        for (label, q) in parallel_cases() {
            let plan = algebra::plan_comprehension(&q).unwrap();
            let seq = algebra::execute(&plan, &mut db).unwrap();
            let par = algebra::execute_parallel(&plan, &mut db, threads).unwrap();
            prop_assert_eq!(
                seq, par,
                "monoid = {}, threads = {}, seed = {}", label, threads, seed
            );
        }
    }

    /// Heads that allocate: the reconciled heap must assign the same OIDs
    /// sequential execution does, and every returned identity must
    /// dereference to the same state on both sides.
    #[test]
    fn parallel_allocating_heads_reconcile(seed in 0u64..4, ti in 0usize..4) {
        use monoid_db::algebra;
        use monoid_db::store::{travel, TravelScale};
        let threads = [1usize, 2, 3, 8][ti];
        // The planner rejects impure comprehensions, so plan a pure body
        // and swap in the allocating head (plan exprs stay pure).
        let pure = Expr::comp(
            Monoid::List,
            Expr::var("h").proj("name"),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let mut plan = algebra::plan_comprehension(&pure).unwrap();
        plan.head = Expr::new_obj(Expr::record(vec![
            ("name", Expr::var("h").proj("name")),
            ("stars", Expr::int(3)),
        ]));
        let base = travel::generate(TravelScale::tiny(), seed);
        let mut seq_db = base.clone();
        let mut par_db = base.clone();
        let seq = algebra::execute(&plan, &mut seq_db).unwrap();
        let par = algebra::execute_parallel(&plan, &mut par_db, threads).unwrap();
        prop_assert_eq!(&seq, &par, "threads = {}, seed = {}", threads, seed);
        prop_assert_eq!(seq_db.object_count(), par_db.object_count());
        for member in par.elements().unwrap() {
            let Value::Obj(oid) = member else { panic!("head allocates") };
            prop_assert_eq!(
                seq_db.state(oid).unwrap(),
                par_db.state(oid).unwrap(),
                "state of {:?}", oid
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(1024))]

    #[test]
    fn like_matches_reference(s in "[ab]{0,8}", pat in r"[ab%_\\]{0,6}") {
        match like_reference(&s, &pat) {
            Some(expected) => prop_assert_eq!(
                like_match(&s, &pat).unwrap(),
                expected,
                "s = {:?}, pattern = {:?}", s, pat
            ),
            None => prop_assert!(
                like_match(&s, &pat).is_err(),
                "dangling escape must error: pattern = {:?}", pat
            ),
        }
    }
}

// ---------------------------------------------------------------------------
// The static effect classifier is sound against the runtime: effect-free
// queries leave the heap untouched, and the parallel-safety verdict
// coincides with the engine's fallback decision across the monoid corpus.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// A query the analyzer classifies allocation- and mutation-free must
    /// leave the heap's mutation counter exactly where it was.
    #[test]
    fn effect_free_queries_leave_heap_version_unchanged(seed in 0u64..4) {
        use monoid_db::algebra;
        use monoid_db::calculus::analysis::effects_of;
        use monoid_db::store::{travel, TravelScale};
        let mut db = travel::generate(TravelScale::tiny(), seed);
        for (label, q) in parallel_cases() {
            let query = algebra::plan_comprehension(&q).unwrap();
            let eff = effects_of(&query.head).join(query.plan_effects);
            prop_assert!(
                !eff.allocates && !eff.mutates,
                "corpus query should classify effect-free: {}", label
            );
            let before = db.heap().version();
            algebra::execute(&query, &mut db).unwrap();
            prop_assert_eq!(
                before, db.heap().version(),
                "heap version moved under an effect-free query: {}", label
            );
        }
    }

    /// Static parallel safety ⇔ `fallback: None`: every corpus query is
    /// classified safe and the engine spawns workers; giving the same
    /// query a mutating head flips both sides at once.
    #[test]
    fn parallel_safety_verdict_matches_fallback(seed in 0u64..4, ti in 0usize..3) {
        use monoid_db::algebra;
        use monoid_db::algebra::Fallback;
        use monoid_db::calculus::analysis::effects_of;
        use monoid_db::store::{travel, TravelScale};
        let threads = [2usize, 3, 8][ti];
        let mut db = travel::generate(TravelScale::tiny(), seed);
        for (label, q) in parallel_cases() {
            let query = algebra::plan_comprehension(&q).unwrap();
            let eff = effects_of(&query.head).join(query.plan_effects);
            prop_assert!(eff.parallel_safe(), "corpus query is parallel-safe: {}", label);
            let (_, report) =
                algebra::execute_parallel_traced(&query, &mut db, threads).unwrap();
            prop_assert_eq!(
                report.fallback, None,
                "statically-safe query fell back: {}", label
            );
        }
        // The converse: a mutating head is classified unsafe and the
        // engine refuses to fan out, in the same breath.
        let pure = Expr::comp(
            Monoid::All,
            Expr::bool(true),
            vec![Expr::gen("e", Expr::var("Employees"))],
        );
        let mut query = algebra::plan_comprehension(&pure).unwrap();
        query.head = Expr::var("e").assign(Expr::record(vec![
            ("name", Expr::var("e").proj("name")),
            ("salary", Expr::int(1)),
        ]));
        let eff = effects_of(&query.head).join(query.plan_effects);
        prop_assert!(!eff.parallel_safe(), "mutating head classifies unsafe");
        let (_, report) =
            algebra::execute_parallel_traced(&query, &mut db, threads).unwrap();
        prop_assert_eq!(report.fallback, Some(Fallback::Mutation));
    }
}

// ---------------------------------------------------------------------------
// The serving layer: prepared statements and the epoch-stamped plan cache
// (differential corpus lives in tests/prepared.rs; these are the random-
// input counterparts).
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Binding `$beds`/`$limit` to arbitrary ints is byte-identical to the
    /// ad-hoc pipeline on the literal-substituted source, and re-binding
    /// never changes the prepared plan's shape.
    #[test]
    fn prepared_binding_agrees_with_literals(
        seed in 0u64..3,
        beds in -2i64..6,
        limit in 0i64..400,
    ) {
        use monoid_db::store::{travel, TravelScale};
        use monoid_db::{prepare_on, Params};
        let mut db = travel::generate(TravelScale::tiny(), seed);
        let prepared = prepare_on(
            &db,
            "select r.price from h in Hotels, r in h.rooms \
             where r.bed# >= $beds and r.price < $limit",
        ).unwrap();
        let shape = monoid_db::algebra::explain(prepared.query().unwrap());
        let literal = format!(
            "select r.price from h in Hotels, r in h.rooms \
             where r.bed# >= {beds} and r.price < {limit}"
        );
        let want = monoid_db::explain_analyze(&literal, &mut db).unwrap().value;
        let got = prepared
            .execute(
                &mut db,
                &Params::new()
                    .bind("beds", Value::Int(beds))
                    .bind("limit", Value::Int(limit)),
            )
            .unwrap();
        prop_assert_eq!(got, want, "beds = {}, limit = {}", beds, limit);
        prop_assert_eq!(
            shape,
            monoid_db::algebra::explain(prepared.query().unwrap()),
            "plan shape moved under re-binding"
        );
    }

    /// The cache invariant under random interleavings of lookups, root
    /// mutations, and inserts: a lookup at the epoch the entry was stamped
    /// with is a hit (same `Arc`); a lookup after *any* mutation is a
    /// re-prepare, never the stale plan.
    #[test]
    fn cache_never_serves_across_mutations(ops in prop::collection::vec(0u8..3, 1..12)) {
        use monoid_db::store::{travel, TravelScale};
        use monoid_db::PlanCache;
        use std::sync::Arc;
        let cache = PlanCache::new();
        let mut db = travel::generate(TravelScale::tiny(), 1);
        let src = "select c.name from c in Cities";
        let mut last: Option<(u64, Arc<monoid_db::Prepared>)> = None;
        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    let epoch = db.mutation_epoch();
                    let p = cache.get_or_prepare(&db, src).unwrap();
                    if let Some((stamped, held)) = &last {
                        if *stamped == epoch {
                            prop_assert!(
                                Arc::ptr_eq(held, &p),
                                "lookup at the stamped epoch must hit (op {})", i
                            );
                        } else {
                            prop_assert!(
                                !Arc::ptr_eq(held, &p),
                                "stale entry served across a mutation (op {})", i
                            );
                        }
                    }
                    last = Some((epoch, p));
                }
                1 => db.set_root("Scratch", Value::Int(i as i64)),
                _ => {
                    db.insert(
                        Symbol::new("City"),
                        Value::record_from(vec![
                            ("name", Value::str("Nowhere")),
                            ("hotels", Value::list(vec![])),
                            ("hotel#", Value::Int(0)),
                        ]),
                    )
                    .unwrap();
                }
            }
        }
    }
}
