//! Cross-crate integration: OQL → calculus → type check → normalize →
//! plan → pipelined/parallel execution must agree with direct evaluation
//! on a battery of queries at multiple scales, and databases survive
//! snapshot round-trips.

use monoid_db::algebra;
use monoid_db::calculus::normalize::normalize;
use monoid_db::calculus::value::Value;
use monoid_db::oql::compile;
use monoid_db::store::codec;
use monoid_db::store::travel::{self, TravelScale};
use monoid_db::store::Database;

const BATTERY: &[&str] = &[
    "select c.name from c in Cities",
    "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'",
    "select h.name from c in Cities, h in c.hotels, r in h.rooms \
     where c.name = 'Portland' and r.bed# = 3",
    "select distinct r.bed# from h in Hotels, r in h.rooms",
    "count(Hotels)",
    "sum(select e.salary from e in Employees)",
    "max(select r.price from h in Hotels, r in h.rooms)",
    "select e.name from h in Hotels, e in h.employees where e.salary > 50000",
    "select cl.name from cl in Clients where cl.age > 40 and cl.budget < 300.0",
    "select h.name from h in Hotels where exists r in h.rooms: r.bed# = 2",
];

fn check_agreement(db: &mut Database, src: &str) {
    let q = compile(db.schema(), src).unwrap_or_else(|e| panic!("compile `{src}`: {e}"));
    db.check(&q).unwrap_or_else(|e| panic!("typecheck `{src}`: {e}"));
    let direct = db.query(&q).unwrap();
    let n = normalize(&q);
    let flat = db.query(&n).unwrap();
    assert_eq!(direct, flat, "normalize changed `{src}`");
    match algebra::plan_comprehension(&n) {
        Ok(plan) => {
            let piped = algebra::execute(&plan, db).unwrap();
            assert_eq!(direct, piped, "pipeline changed `{src}`");
            // Parallel execution must agree too — ordered merge makes
            // even order-sensitive monoids parallelizable.
            let par = algebra::execute_parallel(&plan, db, 4).unwrap();
            assert_eq!(direct, par, "parallel changed `{src}`");
        }
        Err(algebra::PlanError::NotAComprehension | algebra::PlanError::Unsupported(_)) => {
            // Aggregate-of-subquery shapes normalize to non-comprehension
            // roots (e.g. arithmetic over two comprehensions); they are
            // covered by direct evaluation above.
        }
        Err(other) => panic!("planning `{src}`: {other}"),
    }
}

#[test]
fn battery_agrees_at_tiny_scale() {
    let mut db = travel::generate(TravelScale::tiny(), 1);
    for src in BATTERY {
        check_agreement(&mut db, src);
    }
}

#[test]
fn battery_agrees_at_small_scale() {
    let mut db = travel::generate(TravelScale::small(), 2);
    for src in BATTERY {
        check_agreement(&mut db, src);
    }
}

#[test]
fn battery_agrees_after_snapshot_roundtrip() {
    let db = travel::generate(TravelScale::tiny(), 3);
    let bytes = codec::encode_database(&db).unwrap();
    let mut restored = codec::decode_database(&bytes).unwrap();
    let mut original = db;
    for src in BATTERY {
        let q = compile(original.schema(), src).unwrap();
        assert_eq!(
            original.query(&q).unwrap(),
            restored.query(&q).unwrap(),
            "snapshot changed `{src}`"
        );
    }
}

/// Results are deterministic across databases generated from the same
/// seed, and (for this seed-independent query) stable in *shape* across
/// seeds.
#[test]
fn determinism_across_runs() {
    let q_src = "select distinct r.bed# from h in Hotels, r in h.rooms";
    let mut a = travel::generate(TravelScale::tiny(), 9);
    let mut b = travel::generate(TravelScale::tiny(), 9);
    let q = compile(a.schema(), q_src).unwrap();
    assert_eq!(a.query(&q).unwrap(), b.query(&q).unwrap());
}

/// The three execution strategies agree on the correlated-exists workload
/// that benchmark B1 uses, at a non-trivial scale.
#[test]
fn b1_workload_agreement() {
    let mut db = travel::generate(TravelScale::with_hotels(400), 7);
    let q = monoid_bench_query();
    let direct = db.query(&q).unwrap();
    let n = normalize(&q);
    let plan = algebra::plan_comprehension(&n).unwrap();
    assert!(plan.plan.uses_hash_join());
    let piped = algebra::execute(&plan, &mut db).unwrap();
    assert_eq!(direct, piped);
    assert!(matches!(direct, Value::Set(_)));
}

// Inline copy of the B1 query builder (the bench crate is not a
// dependency of the umbrella tests).
fn monoid_bench_query() -> monoid_db::calculus::expr::Expr {
    use monoid_db::calculus::expr::Expr;
    use monoid_db::calculus::monoid::Monoid;
    Expr::comp(
        Monoid::Set,
        Expr::var("cl").proj("name"),
        vec![
            Expr::gen("cl", Expr::var("Clients")),
            Expr::gen("p", Expr::var("cl").proj("preferred")),
            Expr::pred(Expr::comp(
                Monoid::Some,
                Expr::var("c").proj("name").eq(Expr::var("p")),
                vec![Expr::gen("c", Expr::var("Cities"))],
            )),
        ],
    )
}

/// `EXPLAIN` of every plannable battery query mentions a Scan and the
/// reduce monoid, and planning is deterministic.
#[test]
fn explain_is_stable() {
    let db = travel::generate(TravelScale::tiny(), 4);
    for src in BATTERY {
        let q = compile(db.schema(), src).unwrap();
        let n = normalize(&q);
        if let Ok(plan) = algebra::plan_comprehension(&n) {
            let e1 = algebra::explain(&plan);
            let e2 = algebra::explain(&algebra::plan_comprehension(&n).unwrap());
            assert_eq!(e1, e2);
            assert!(e1.contains("Scan"), "{e1}");
            assert!(e1.starts_with("Reduce["), "{e1}");
        }
    }
}
