//! Property tests for normalization in the presence of §4.2 heap effects.
//!
//! The Table-3 rules are stated for the pure calculus; our normalizer
//! gates the duplicating/deleting/reordering rules on purity (DESIGN.md,
//! `normalize` module docs). These tests generate random *impure*
//! comprehensions — `new`, `!`, `:=` in generators, bindings, predicates,
//! and heads — and check that normalization preserves both the computed
//! value and the final heap (same number of allocations, same states).

use monoid_db::calculus::eval::Evaluator;
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::normalize::{normalize, normalize_traced};
use monoid_db::calculus::pretty::pretty;
use monoid_db::calculus::value::Value;
use proptest::prelude::*;

/// Evaluate and capture (result, allocation count, final heap states).
fn observe(e: &Expr) -> Result<(Value, usize, Vec<Value>), String> {
    let mut ev = Evaluator::with_budget(1_000_000);
    let v = ev.eval_expr(e).map_err(|err| err.to_string())?;
    let states: Vec<Value> = ev.heap.iter().map(|(_, s)| s.clone()).collect();
    Ok((v, ev.heap.len(), states))
}

/// An impure comprehension: a counter object threaded through a loop, with
/// random extras that tempt each gated rule.
fn impure_comp() -> impl Strategy<Value = Expr> {
    let monoid = prop::sample::select(vec![Monoid::List, Monoid::Sum, Monoid::Bag, Monoid::Set]);
    (
        monoid,
        0i64..5,                                  // initial counter
        prop::collection::vec(-3i64..4, 0..5),    // loop list
        prop::bool::ANY,                          // alias bind y ≡ x?
        prop::bool::ANY,                          // extra pure pred?
        prop::bool::ANY,                          // singleton generator?
        0usize..3,                                // head choice
    )
        .prop_map(|(m, init, items, alias, pure_pred, singleton, head_kind)| {
            let mut quals = vec![Expr::gen("x", Expr::new_obj(Expr::int(init)))];
            if alias {
                // Tempts N7 (bind-inline): `y ≡ x` is pure (a variable), so
                // inlining is fine; `y ≡ !x` is impure and must be kept.
                quals.push(Expr::bind("y", Expr::var("x").deref()));
            }
            if singleton {
                // Tempts N4 (singleton-generator) around an effect.
                quals.push(Expr::gen("s", Expr::list_of(vec![Expr::int(9)])));
            }
            quals.push(Expr::gen(
                "e",
                Expr::CollLit(Monoid::List, items.iter().map(|&i| Expr::int(i)).collect()),
            ));
            if pure_pred {
                quals.push(Expr::pred(Expr::var("e").ge(Expr::int(-5)).and(Expr::bool(true))));
            }
            // The effect: x := !x + e.
            quals.push(Expr::pred(
                Expr::var("x").assign(Expr::var("x").deref().add(Expr::var("e"))),
            ));
            let head = match head_kind {
                0 => Expr::var("x").deref(),
                1 => Expr::var("e").add(Expr::var("x").deref()),
                _ => Expr::var("x").deref().mul(Expr::int(2)),
            };
            Expr::comp(m, head, quals)
        })
}

/// Nested: an impure comprehension as a generator source of an outer pure
/// one — flattening (N5) must refuse or stay correct.
fn nested_impure() -> impl Strategy<Value = Expr> {
    impure_comp().prop_filter_map("inner must be a collection", |inner| {
        let Expr::Comp { monoid, .. } = &inner else { return None };
        if !monoid.is_collection() {
            return None;
        }
        let out = match monoid {
            Monoid::List => Monoid::Bag,
            _ => Monoid::Set,
        };
        Some(Expr::comp(
            out,
            Expr::var("z"),
            vec![Expr::gen("z", inner)],
        ))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn impure_comprehensions_normalize_soundly(e in impure_comp()) {
        let before = observe(&e).map_err(TestCaseError::fail)?;
        let n = normalize(&e);
        let after = observe(&n).map_err(|err| TestCaseError::fail(format!(
            "normalized form fails: {err}\n  before: {}\n  after:  {}",
            pretty(&e), pretty(&n)
        )))?;
        prop_assert_eq!(
            &before, &after,
            "observable behaviour changed:\n  before: {}\n  after:  {}",
            pretty(&e), pretty(&n)
        );
    }

    #[test]
    fn nested_impure_normalize_soundly(e in nested_impure()) {
        let before = observe(&e).map_err(TestCaseError::fail)?;
        let n = normalize(&e);
        let after = observe(&n).map_err(|err| TestCaseError::fail(format!(
            "normalized form fails: {err}\n  before: {}\n  after:  {}",
            pretty(&e), pretty(&n)
        )))?;
        prop_assert_eq!(&before, &after,
            "observable behaviour changed:\n  before: {}\n  after:  {}",
            pretty(&e), pretty(&n));
    }

    /// Normalization of impure terms still terminates and is idempotent.
    #[test]
    fn impure_normalization_idempotent(e in nested_impure()) {
        let (n, _, stats) = normalize_traced(&e);
        prop_assert!(stats.steps < 1000, "suspiciously many steps");
        prop_assert_eq!(normalize(&n), n);
    }
}
