//! E2 — every worked example in the paper's §2, asserted end-to-end
//! through the umbrella crate (see EXPERIMENTS.md).

use monoid_db::calculus::eval::eval_closed;
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::typecheck::infer;
use monoid_db::calculus::value::Value;

fn ints(v: &[i64]) -> Vec<Value> {
    v.iter().map(|&i| Value::Int(i)).collect()
}

/// `{1} ∪ {2} ∪ {3}` constructs `{1,2,3}`; `[1]++[2]++[3]` constructs
/// `[1,2,3]` (§2.1's opening examples).
#[test]
fn construction_by_merging_units() {
    let set = Expr::merge(
        Monoid::Set,
        Expr::merge(
            Monoid::Set,
            Expr::unit(Monoid::Set, Expr::int(1)),
            Expr::unit(Monoid::Set, Expr::int(2)),
        ),
        Expr::unit(Monoid::Set, Expr::int(3)),
    );
    assert_eq!(eval_closed(&set).unwrap(), Value::set_from(ints(&[1, 2, 3])));

    let list = Expr::merge(
        Monoid::List,
        Expr::merge(
            Monoid::List,
            Expr::unit(Monoid::List, Expr::int(1)),
            Expr::unit(Monoid::List, Expr::int(2)),
        ),
        Expr::unit(Monoid::List, Expr::int(3)),
    );
    assert_eq!(eval_closed(&list).unwrap(), Value::list(ints(&[1, 2, 3])));
}

/// `x ∪ x = x` distinguishes sets from bags and lists (§2.1).
#[test]
fn idempotence_distinguishes_sets() {
    let x_set = Value::set_from(ints(&[1, 2]));
    let x_bag = Value::bag_from(ints(&[1, 2]));
    let x_list = Value::list(ints(&[1, 2]));
    use monoid_db::calculus::value::merge;
    assert_eq!(merge(&Monoid::Set, &x_set, &x_set).unwrap(), x_set);
    assert_ne!(merge(&Monoid::Bag, &x_bag, &x_bag).unwrap(), x_bag);
    assert_ne!(merge(&Monoid::List, &x_list, &x_list).unwrap(), x_list);
}

/// `set{ (a,b) | a ← [1,2,3], b ← {{4,5}} }` — a list joined with a bag,
/// returning a set (§2.4).
#[test]
fn mixed_collection_join() {
    let e = Expr::comp(
        Monoid::Set,
        Expr::Tuple(vec![Expr::var("a"), Expr::var("b")]),
        vec![
            Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)])),
            Expr::gen("b", Expr::bag_of(vec![Expr::int(4), Expr::int(5)])),
        ],
    );
    let want = Value::set_from(vec![
        Value::tuple(ints(&[1, 4])),
        Value::tuple(ints(&[1, 5])),
        Value::tuple(ints(&[2, 4])),
        Value::tuple(ints(&[2, 5])),
        Value::tuple(ints(&[3, 4])),
        Value::tuple(ints(&[3, 5])),
    ]);
    assert_eq!(eval_closed(&e).unwrap(), want);
}

/// `sum{ a | a ← [1,2,3], a ≤ 2 } = 3` (§2.4).
#[test]
fn sum_with_predicate() {
    let e = Expr::comp(
        Monoid::Sum,
        Expr::var("a"),
        vec![
            Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)])),
            Expr::pred(Expr::var("a").le(Expr::int(2))),
        ],
    );
    assert_eq!(eval_closed(&e).unwrap(), Value::Int(3));
}

/// `set{ (x,y) | x ← [1,2], y ← {{3,4,3}} } = {(1,3),(1,4),(2,3),(2,4)}`.
#[test]
fn set_output_absorbs_bag_duplicates() {
    let e = Expr::comp(
        Monoid::Set,
        Expr::Tuple(vec![Expr::var("x"), Expr::var("y")]),
        vec![
            Expr::gen("x", Expr::list_of(vec![Expr::int(1), Expr::int(2)])),
            Expr::gen("y", Expr::bag_of(vec![Expr::int(3), Expr::int(4), Expr::int(3)])),
        ],
    );
    let want = Value::set_from(vec![
        Value::tuple(ints(&[1, 3])),
        Value::tuple(ints(&[1, 4])),
        Value::tuple(ints(&[2, 3])),
        Value::tuple(ints(&[2, 4])),
    ]);
    assert_eq!(eval_closed(&e).unwrap(), want);
}

/// `[2,5,3,1] ∪̇ [3,2,6] = [2,5,3,1,6]` — the oset merge (§2.2).
#[test]
fn oset_merge_example() {
    let e = Expr::merge(
        Monoid::OSet,
        Expr::list_of(vec![Expr::int(2), Expr::int(5), Expr::int(3), Expr::int(1)]),
        Expr::list_of(vec![Expr::int(3), Expr::int(2), Expr::int(6)]),
    );
    assert_eq!(eval_closed(&e).unwrap(), Value::list(ints(&[2, 5, 3, 1, 6])));
}

/// Bag cardinality `hom[bag→sum](λx.1)` is well-formed; set cardinality
/// `hom[set→sum](λx.1)` is not, because `+` is not idempotent — otherwise
/// `1 = hom[set→sum]({a})` for `{a} = {a} ∪ {a}` would force `1 = 2`
/// (§2.3's argument).
#[test]
fn cardinality_legality() {
    let bag_card = Expr::hom(
        Monoid::Sum,
        "x",
        Expr::int(1),
        Expr::bag_of(vec![Expr::int(5), Expr::int(5), Expr::int(7)]),
    );
    assert_eq!(eval_closed(&bag_card).unwrap(), Value::Int(3));
    assert!(infer(&bag_card).is_ok());

    let set_card = Expr::hom(
        Monoid::Sum,
        "x",
        Expr::int(1),
        Expr::set_of(vec![Expr::int(5), Expr::int(7)]),
    );
    assert!(infer(&set_card).is_err());
    assert!(eval_closed(&set_card).is_err());
}

/// Sets cannot convert to lists, but can convert to sorted lists (§2.3).
#[test]
fn set_conversions() {
    let to_list = Expr::comp(
        Monoid::List,
        Expr::var("x"),
        vec![Expr::gen("x", Expr::set_of(vec![Expr::int(2), Expr::int(1)]))],
    );
    assert!(infer(&to_list).is_err());

    let to_sorted = Expr::comp(
        Monoid::Sorted,
        Expr::var("x"),
        vec![Expr::gen("x", Expr::set_of(vec![Expr::int(2), Expr::int(1)]))],
    );
    assert_eq!(eval_closed(&to_sorted).unwrap(), Value::list(ints(&[1, 2])));
}

/// The §2.4 monoid-hom reduction: a comprehension equals its expansion
/// into nested homomorphisms.
#[test]
fn comprehension_equals_hom_expansion() {
    // set{ a*b | a ← [1,2], b ← {{3,4}} }
    let comp = Expr::comp(
        Monoid::Set,
        Expr::var("a").mul(Expr::var("b")),
        vec![
            Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2)])),
            Expr::gen("b", Expr::bag_of(vec![Expr::int(3), Expr::int(4)])),
        ],
    );
    // hom[→set](λa. hom[→set](λb. unit(a*b))({{3,4}}))([1,2])
    let hom = Expr::hom(
        Monoid::Set,
        "a",
        Expr::hom(
            Monoid::Set,
            "b",
            Expr::unit(Monoid::Set, Expr::var("a").mul(Expr::var("b"))),
            Expr::bag_of(vec![Expr::int(3), Expr::int(4)]),
        ),
        Expr::list_of(vec![Expr::int(1), Expr::int(2)]),
    );
    assert_eq!(eval_closed(&comp).unwrap(), eval_closed(&hom).unwrap());
}

/// Quantifier comprehensions: `some`/`all` are the ∃/∀ monoids.
#[test]
fn quantifier_monoids() {
    let some = Expr::comp(
        Monoid::Some,
        Expr::var("x").gt(Expr::int(2)),
        vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1), Expr::int(3)]))],
    );
    assert_eq!(eval_closed(&some).unwrap(), Value::Bool(true));
    let all = Expr::comp(
        Monoid::All,
        Expr::var("x").gt(Expr::int(2)),
        vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1), Expr::int(3)]))],
    );
    assert_eq!(eval_closed(&all).unwrap(), Value::Bool(false));
    // Vacuous truth over the empty set.
    let vacuous = Expr::comp(
        Monoid::All,
        Expr::bool(false),
        vec![Expr::gen("x", Expr::set_of(vec![]))],
    );
    assert_eq!(eval_closed(&vacuous).unwrap(), Value::Bool(true));
}

/// The string monoid is list(char) under concatenation (§2.2).
#[test]
fn string_monoid() {
    let e = Expr::comp(
        Monoid::Str,
        Expr::var("c"),
        vec![
            Expr::gen("c", Expr::str("monoid")),
            Expr::pred(Expr::var("c").ne(Expr::str("o"))),
        ],
    );
    assert_eq!(eval_closed(&e).unwrap(), Value::str("mnid"));
}

/// `max`/`min` over non-numeric but ordered values (strings) work, and
/// their zero (±∞) is absorbed.
#[test]
fn max_min_monoids() {
    let e = Expr::comp(
        Monoid::Max,
        Expr::var("s"),
        vec![Expr::gen("s", Expr::set_of(vec![Expr::str("b"), Expr::str("a")]))],
    );
    assert_eq!(eval_closed(&e).unwrap(), Value::str("b"));
    let empty = Expr::comp(
        Monoid::Min,
        Expr::var("s"),
        vec![Expr::gen("s", Expr::set_of(vec![]))],
    );
    assert_eq!(eval_closed(&empty).unwrap(), Value::Null);
}
