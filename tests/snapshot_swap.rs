//! Stress for the snapshot swap itself: writers commit new epochs
//! *while* reads are in flight, and three invariants must hold:
//!
//! * every in-flight read finishes on the epoch it pinned — the answer
//!   matches the closed-form oracle for that epoch, not the live state;
//! * `requests_in_flight` is visibly nonzero while statements run and
//!   returns to exactly zero once every thread has drained (the guard
//!   is panic-safe, so nothing leaks the gauge);
//! * the same holds over the wire: clients hammer a live server while
//!   an embedded writer commits through [`Server::database`], and every
//!   `DONE` frame's epoch is consistent with its row count.
//!
//! The oracle is closed-form on purpose: the *only* mutation either
//! battery performs is inserting one city per commit, so a snapshot at
//! epoch `e` must count exactly `base_count + (e - base_epoch)` cities
//! — any torn read, lost pin, or mid-swap heap share shows up as an
//! off-by-something.

use monoid_db::calculus::symbol::Symbol;
use monoid_db::calculus::value::Value;
use monoid_db::server::{Client, Server};
use monoid_db::store::{travel, TravelScale};
use monoid_db::{requests_in_flight, InFlightGuard, Params, Session};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, RwLock};

/// The in-flight gauge is process-wide and the harness runs tests in
/// parallel threads, so the tests asserting the gauge drains to zero
/// serialize against each other.
static GAUGE_LOCK: Mutex<()> = Mutex::new(());

fn city(name: &str) -> Value {
    Value::record_from(vec![
        ("name", Value::str(name)),
        ("hotels", Value::list(vec![])),
        ("hotel#", Value::Int(0)),
    ])
}

/// Epochs one `insert` advances the counter by (an insert is internally
/// several mutations — heap allocation plus extent update — all behind
/// the write lock, so only whole multiples are ever observable).
fn epochs_per_insert() -> u64 {
    let mut probe = travel::generate(TravelScale::tiny(), 99);
    let before = probe.mutation_epoch();
    probe.insert(Symbol::new("City"), city("probe")).unwrap();
    probe.mutation_epoch() - before
}

/// `count(Cities)` at epoch `e`, given the base point — the closed-form
/// oracle (one inserted city per `delta` committed epochs).
fn expect_count(base_count: i64, base_epoch: u64, delta: u64, epoch: u64) -> i64 {
    assert_eq!(
        (epoch - base_epoch) % delta,
        0,
        "observed a mid-insert epoch — the write lock leaked a partial commit"
    );
    base_count + ((epoch - base_epoch) / delta) as i64
}

/// Readers race the writer in-process; every observation must satisfy
/// the closed-form oracle, and the in-flight gauge must drain to zero.
#[test]
fn swap_during_in_flight_reads_pins_every_reader() {
    const READERS: usize = 6;
    const WRITES: usize = 50;
    const READS: usize = 80;

    let _serial = GAUGE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let delta = epochs_per_insert();
    let db = travel::generate(TravelScale::tiny(), 3);
    let base_epoch = db.mutation_epoch();
    let base_count = 3i64; // tiny scale generates three cities
    let database = Arc::new(RwLock::new(db));
    let stop = Arc::new(AtomicBool::new(false));
    // Readers and writer leave the gate together so reads really are in
    // flight while commits happen.
    let gate = Arc::new(Barrier::new(READERS + 1));

    let writer = {
        let database = Arc::clone(&database);
        let gate = Arc::clone(&gate);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            gate.wait();
            for i in 0..WRITES {
                let mut d = database.write().unwrap();
                d.insert(Symbol::new("City"), city(&format!("swap{i}"))).unwrap();
            }
            stop.store(true, Ordering::SeqCst);
        })
    };

    let readers: Vec<_> = (0..READERS)
        .map(|_| {
            let database = Arc::clone(&database);
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let session = Session::new();
                gate.wait();
                let mut checked = 0usize;
                for _ in 0..READS {
                    // Pin an epoch, then hold the statement open across
                    // whatever the writer does meanwhile.
                    let guard = InFlightGuard::enter();
                    assert!(
                        requests_in_flight() >= 1,
                        "the gauge counts this statement while it runs"
                    );
                    let snap = database.read().unwrap().snapshot();
                    let v = session
                        .query_snapshot(&snap, "count(Cities)", &Params::new())
                        .expect("snapshot read executes");
                    drop(guard);
                    assert_eq!(
                        v,
                        Value::Int(expect_count(base_count, base_epoch, delta, snap.epoch())),
                        "epoch {} answered from a different epoch's heap",
                        snap.epoch()
                    );
                    checked += 1;
                }
                checked
            })
        })
        .collect();

    let total: usize = readers.into_iter().map(|r| r.join().expect("reader completes")).sum();
    writer.join().expect("writer completes");
    assert_eq!(total, READERS * READS);
    assert!(stop.load(Ordering::SeqCst));
    assert_eq!(requests_in_flight(), 0, "every guard drained");

    // The live database ends exactly where the oracle says.
    let d = database.read().unwrap();
    assert_eq!(d.mutation_epoch(), base_epoch + WRITES as u64 * delta);
    let snap = d.snapshot();
    let session = Session::new();
    assert_eq!(
        session.query_snapshot(&snap, "count(Cities)", &Params::new()).unwrap(),
        Value::Int(base_count + WRITES as i64)
    );
}

/// The guard is panic-safe: a statement that dies mid-flight still
/// decrements the gauge.
#[test]
fn in_flight_guard_survives_panics() {
    let _serial = GAUGE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let before = requests_in_flight();
    let result = std::panic::catch_unwind(|| {
        let _guard = InFlightGuard::enter();
        panic!("statement died");
    });
    assert!(result.is_err());
    assert_eq!(requests_in_flight(), before, "the panicking guard still decremented");
}

/// The wire variant: clients hammer the server while an embedded writer
/// commits epochs through the shared handle. Every `DONE` epoch must
/// satisfy the closed-form oracle against its own result.
#[test]
fn wire_clients_stay_pinned_while_embedded_writer_commits() {
    const CLIENTS: usize = 4;
    const QUERIES: usize = 40;
    const WRITES: usize = 30;

    let _serial = GAUGE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let delta = epochs_per_insert();
    let db = travel::generate(TravelScale::tiny(), 5);
    let base_epoch = db.mutation_epoch();
    let base_count = 3i64;
    let server = Server::bind("127.0.0.1:0", db).expect("bind loopback");
    let addr = server.addr();
    let database = server.database();
    let handle = server.spawn();
    let gate = Arc::new(Barrier::new(CLIENTS + 1));

    let writer = {
        let gate = Arc::clone(&gate);
        std::thread::spawn(move || {
            gate.wait();
            for i in 0..WRITES {
                let mut d = database.write().unwrap();
                d.insert(Symbol::new("City"), city(&format!("wire{i}"))).unwrap();
            }
        })
    };

    let clients: Vec<_> = (0..CLIENTS)
        .map(|_| {
            let gate = Arc::clone(&gate);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                gate.wait();
                let mut last_epoch = 0u64;
                for _ in 0..QUERIES {
                    let out = client.query("count(Cities)", &[]).expect("read executes");
                    assert_eq!(
                        out.value,
                        Value::Int(expect_count(base_count, base_epoch, delta, out.epoch)),
                        "DONE epoch {} inconsistent with its rows",
                        out.epoch
                    );
                    // Per-statement snapshots move forward, never back.
                    assert!(out.epoch >= last_epoch, "epoch went backwards");
                    last_epoch = out.epoch;
                }
                last_epoch
            })
        })
        .collect();

    let finals: Vec<u64> =
        clients.into_iter().map(|c| c.join().expect("client completes")).collect();
    writer.join().expect("writer completes");
    assert_eq!(finals.len(), CLIENTS);

    // Once the last response is on the wire, nothing is in flight.
    // (Connection threads may outlive their last statement; the gauge is
    // per-statement, so it is already drained.)
    assert_eq!(requests_in_flight(), 0);

    // A fresh client sees the fully-committed state.
    let mut client = Client::connect(addr).expect("connect after the storm");
    let out = client.query("count(Cities)", &[]).expect("read executes");
    assert_eq!(out.epoch, base_epoch + WRITES as u64 * delta);
    assert_eq!(out.value, Value::Int(base_count + WRITES as i64));

    handle.shutdown();
}
