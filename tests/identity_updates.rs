//! E6 — §4.2 object identity & updates, and the §4.3 update sublanguage,
//! exercised against the travel database.

use monoid_db::calculus::eval::eval_closed;
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::value::Value;
use monoid_db::oql::compile;
use monoid_db::store::travel::{self, TravelScale};

fn ints(v: &[i64]) -> Vec<Value> {
    v.iter().map(|&i| Value::Int(i)).collect()
}

/// Paper: `some{ !x = !y | x ← new(1), y ← new(1) } → true` and its
/// identity counterpart `x = y → false`.
#[test]
fn distinct_objects_equal_states() {
    let states = Expr::comp(
        Monoid::Some,
        Expr::var("x").deref().eq(Expr::var("y").deref()),
        vec![
            Expr::gen("x", Expr::new_obj(Expr::int(1))),
            Expr::gen("y", Expr::new_obj(Expr::int(1))),
        ],
    );
    assert_eq!(eval_closed(&states).unwrap(), Value::Bool(true));
    let identities = Expr::comp(
        Monoid::Some,
        Expr::var("x").eq(Expr::var("y")),
        vec![
            Expr::gen("x", Expr::new_obj(Expr::int(1))),
            Expr::gen("y", Expr::new_obj(Expr::int(1))),
        ],
    );
    assert_eq!(eval_closed(&identities).unwrap(), Value::Bool(false));
}

/// Paper: `some{ x = y | x ← new(1), y ≡ x, y := 2 } → true` and
/// `sum{ !x | x ← new(1), y ≡ x, y := 2 } → 2`.
#[test]
fn aliasing_and_update_through_alias() {
    let alias = Expr::comp(
        Monoid::Some,
        Expr::var("x").eq(Expr::var("y")),
        vec![
            Expr::gen("x", Expr::new_obj(Expr::int(1))),
            Expr::bind("y", Expr::var("x")),
            Expr::pred(Expr::var("y").assign(Expr::int(2))),
        ],
    );
    assert_eq!(eval_closed(&alias).unwrap(), Value::Bool(true));
    let through = Expr::comp(
        Monoid::Sum,
        Expr::var("x").deref(),
        vec![
            Expr::gen("x", Expr::new_obj(Expr::int(1))),
            Expr::bind("y", Expr::var("x")),
            Expr::pred(Expr::var("y").assign(Expr::int(2))),
        ],
    );
    assert_eq!(eval_closed(&through).unwrap(), Value::Int(2));
}

/// Paper: `set{ e | x ← new([]), x := [1,2], e ← !x } → {1,2}`.
#[test]
fn assign_then_iterate() {
    let e = Expr::comp(
        Monoid::Set,
        Expr::var("e"),
        vec![
            Expr::gen("x", Expr::new_obj(Expr::list_of(vec![]))),
            Expr::pred(Expr::var("x").assign(Expr::list_of(vec![Expr::int(1), Expr::int(2)]))),
            Expr::gen("e", Expr::var("x").deref()),
        ],
    );
    assert_eq!(eval_closed(&e).unwrap(), Value::set_from(ints(&[1, 2])));
}

/// Paper: `list{ !x | x ← new(0), e ← [1,2,3,4], x := !x + e } → [1,3,6,10]`.
#[test]
fn running_sums() {
    let e = Expr::comp(
        Monoid::List,
        Expr::var("x").deref(),
        vec![
            Expr::gen("x", Expr::new_obj(Expr::int(0))),
            Expr::gen(
                "e",
                Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3), Expr::int(4)]),
            ),
            Expr::pred(Expr::var("x").assign(Expr::var("x").deref().add(Expr::var("e")))),
        ],
    );
    assert_eq!(eval_closed(&e).unwrap(), Value::list(ints(&[1, 3, 6, 10])));
}

/// Qualifiers see the heap effects of earlier qualifiers (left-to-right
/// state threading): an assignment placed *between* two reads is visible
/// to the second read only.
#[test]
fn left_to_right_effect_ordering() {
    // list{ (a, b) | x ← new(1), a ≡ !x, x := 2, b ≡ !x }  → [(1, 2)]
    let e = Expr::comp(
        Monoid::List,
        Expr::Tuple(vec![Expr::var("a"), Expr::var("b")]),
        vec![
            Expr::gen("x", Expr::new_obj(Expr::int(1))),
            Expr::bind("a", Expr::var("x").deref()),
            Expr::pred(Expr::var("x").assign(Expr::int(2))),
            Expr::bind("b", Expr::var("x").deref()),
        ],
    );
    assert_eq!(
        eval_closed(&e).unwrap(),
        Value::list(vec![Value::tuple(ints(&[1, 2]))])
    );
}

/// Normalization must not duplicate or lose heap effects: the impure
/// binding `y ≡ new(…)` is preserved, and evaluation still allocates
/// exactly once.
#[test]
fn normalization_preserves_effects() {
    use monoid_db::calculus::eval::Evaluator;
    use monoid_db::calculus::normalize::normalize;
    let e = Expr::comp(
        Monoid::Sum,
        Expr::var("x").deref().add(Expr::var("x").deref()),
        vec![Expr::gen("x", Expr::new_obj(Expr::int(21)))],
    );
    let n = normalize(&e);
    let mut ev1 = Evaluator::new();
    let v1 = ev1.eval_expr(&e).unwrap();
    let mut ev2 = Evaluator::new();
    let v2 = ev2.eval_expr(&n).unwrap();
    assert_eq!(v1, v2);
    assert_eq!(v1, Value::Int(42));
    assert_eq!(ev1.heap.len(), 1, "one allocation in the original");
    assert_eq!(ev2.heap.len(), 1, "and exactly one after normalization");
}

/// The §4.3 update program: insert a hotel into Portland, bump `hotel#`,
/// observe both through OQL afterwards.
#[test]
fn hotel_insertion_update_program() {
    let mut db = travel::generate(TravelScale::tiny(), 17);
    let update = Expr::comp(
        Monoid::All,
        Expr::var("c").assign(Expr::record(vec![
            ("name", Expr::var("c").proj("name")),
            (
                "hotels",
                Expr::merge(
                    Monoid::List,
                    Expr::var("c").proj("hotels"),
                    Expr::CollLit(Monoid::List, vec![Expr::var("h")]),
                ),
            ),
            ("hotel#", Expr::var("c").proj("hotel#").add(Expr::int(1))),
        ])),
        vec![
            Expr::gen("c", Expr::var("Cities")),
            Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
            Expr::gen(
                "h",
                Expr::new_obj(Expr::record(vec![
                    ("name", Expr::str("Hotel Fegaras")),
                    ("address", Expr::str("1 Maier Ave")),
                    ("facilities", Expr::set_of(vec![])),
                    ("employees", Expr::list_of(vec![])),
                    ("rooms", Expr::list_of(vec![])),
                ])),
            ),
        ],
    );
    assert_eq!(db.query(&update).unwrap(), Value::Bool(true));

    let names = compile(
        db.schema(),
        "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'",
    )
    .unwrap();
    let got = db.query(&names).unwrap();
    assert!(got.elements().unwrap().contains(&Value::str("Hotel Fegaras")));

    let hotel_count = compile(
        db.schema(),
        "element(select c.hotel# from c in Cities where c.name = 'Portland')",
    )
    .unwrap();
    assert_eq!(
        db.query(&hotel_count).unwrap(),
        Value::Int(TravelScale::tiny().hotels_per_city as i64 + 1)
    );

    // Other cities untouched.
    let other = compile(
        db.schema(),
        "element(select c.hotel# from c in Cities where c.name = 'Seattle')",
    )
    .unwrap();
    assert_eq!(
        db.query(&other).unwrap(),
        Value::Int(TravelScale::tiny().hotels_per_city as i64)
    );
}

/// Bulk update through the calculus: everyone gets a raise; the database
/// heap reflects it persistently.
#[test]
fn bulk_raise_persists() {
    let mut db = travel::generate(TravelScale::tiny(), 17);
    let total_q = compile(db.schema(), "sum(select e.salary from e in Employees)").unwrap();
    let Value::Int(before) = db.query(&total_q).unwrap() else { panic!() };
    let raise = Expr::comp(
        Monoid::All,
        Expr::var("e").assign(Expr::record(vec![
            ("name", Expr::var("e").proj("name")),
            ("salary", Expr::var("e").proj("salary").add(Expr::int(500))),
        ])),
        vec![Expr::gen("e", Expr::var("Employees"))],
    );
    db.query(&raise).unwrap();
    let Value::Int(after) = db.query(&total_q).unwrap() else { panic!() };
    let n = db.extent_len("Employees") as i64;
    assert_eq!(after, before + 500 * n);
}

/// Objects are first-class values: identity survives being stored in
/// collections, and dereference follows the *current* state.
#[test]
fn identity_in_collections() {
    // sum{ !o | o ← objs, … } where objs = [a, a, b] and a is updated
    // between construction and the sum.
    let e = Expr::comp(
        Monoid::Sum,
        Expr::var("o").deref(),
        vec![
            Expr::gen("a", Expr::new_obj(Expr::int(1))),
            Expr::gen("b", Expr::new_obj(Expr::int(10))),
            Expr::bind(
                "objs",
                Expr::CollLit(
                    Monoid::List,
                    vec![Expr::var("a"), Expr::var("a"), Expr::var("b")],
                ),
            ),
            Expr::pred(Expr::var("a").assign(Expr::int(100))),
            Expr::gen("o", Expr::var("objs")),
        ],
    );
    // a appears twice with updated state: 100 + 100 + 10.
    assert_eq!(eval_closed(&e).unwrap(), Value::Int(210));
}
