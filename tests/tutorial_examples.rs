//! Keep docs/TUTORIAL.md honest: every `:calc` snippet in the tutorial is
//! executed here with its printed result.

use monoid_db::calculus::eval::eval_closed;
use monoid_db::calculus::parse::parse_expr;
use monoid_db::calculus::value::Value;

fn ints(v: &[i64]) -> Vec<Value> {
    v.iter().map(|&i| Value::Int(i)).collect()
}

fn run(src: &str) -> Value {
    let e = parse_expr(src).unwrap_or_else(|err| panic!("parse `{src}`: {err}"));
    eval_closed(&e).unwrap_or_else(|err| panic!("eval `{src}`: {err}"))
}

#[test]
fn section_1_monoids() {
    assert_eq!(
        run("[2, 5, 3, 1] ++ [3, 2, 6]"),
        Value::list(ints(&[2, 5, 3, 1, 3, 2, 6]))
    );
    assert_eq!(
        run("{2, 5, 3, 1} ∪ {3, 2, 6}"),
        Value::set_from(ints(&[1, 2, 3, 5, 6]))
    );
}

#[test]
fn section_2_comprehensions() {
    let v = run("set{ (a, b) | a <- [1, 2, 3], b <- {{4, 5}} }");
    assert_eq!(v.len().unwrap(), 6);
    assert_eq!(run("sum{ a | a <- [1, 2, 3], a <= 2 }"), Value::Int(3));
    assert_eq!(run("some{ x > 2 | x <- {1, 3} }"), Value::Bool(true));
    assert_eq!(run("all{ x > 2 | x <- {1, 3} }"), Value::Bool(false));
}

#[test]
fn section_3_legality() {
    assert_eq!(run("sum{ 1 | x <- {{7, 7, 9}} }"), Value::Int(3));
    // set → sum is illegal…
    let bad = parse_expr("sum{ 1 | x <- {7, 9} }").unwrap();
    let err = eval_closed(&bad).unwrap_err().to_string();
    assert!(err.contains("illegal homomorphism"), "{err}");
    // …but set → sorted is fine.
    assert_eq!(
        run("sorted{ x | x <- {3, 1, 2} }"),
        Value::list(ints(&[1, 2, 3]))
    );
}

#[test]
fn section_7_vectors() {
    assert_eq!(
        run("sum[4]{ a [4 - i - 1] | a[i] <- [|1, 2, 3, 4|] }"),
        Value::vector(ints(&[4, 3, 2, 1]))
    );
    assert_eq!(
        run("sum[3]{ 1 [x % 3] | x <- [0, 1, 2, 3, 4, 5, 6] }"),
        Value::vector(ints(&[3, 2, 2]))
    );
}

#[test]
fn section_8_identity() {
    assert_eq!(
        run("list{ !x | x <- new(0), e <- [1, 2, 3, 4], x := !x + e }"),
        Value::list(ints(&[1, 3, 6, 10]))
    );
}
