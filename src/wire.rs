//! The wire protocol spoken by the `oqld` server and its clients.
//!
//! Dependency-free, length-prefixed binary framing over any byte stream
//! (TCP in practice, `Vec<u8>` in tests):
//!
//! ```text
//! frame     := len:u32le body
//! body      := opcode:u8 payload
//! ```
//!
//! `len` counts the body bytes only and is capped at [`MAX_FRAME`] — a
//! peer announcing a bigger frame is refused before any allocation, so a
//! garbage length prefix cannot balloon memory. Values travel in the
//! store's binary codec ([`monoid_store::codec`]); strings are
//! `u32le`-length-prefixed UTF-8, matching the codec's own convention.
//!
//! Collection results *stream*: the server sends any number of
//! [`Response::Rows`] batches followed by one [`Response::Done`] carrying
//! the collection's shape, the total row count, and the mutation epoch of
//! the snapshot the statement read (`0` for writer-path statements, whose
//! epoch is advancing). The client reassembles the exact result value
//! with [`ResultShape::assemble`] — byte-identical to what an in-process
//! execution returns (golden tests in `tests/wire_protocol.rs`).
//!
//! Decoding is strict: unknown opcodes, truncated payloads, and trailing
//! bytes are all errors, never panics — the malformed-frame battery in
//! `tests/wire_protocol.rs` feeds this module garbage and expects clean
//! [`WireError`]s back. See `docs/serving.md` for the full spec.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use monoid_calculus::value::Value;
use monoid_store::codec::{self, CodecError};
use std::fmt;
use std::io::{self, Read, Write};

/// Protocol version announced in the HELLO exchange. Bump on any frame
/// layout change.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard cap on a frame body's announced length (16 MiB). Chosen to fit
/// any realistic row batch while bounding what a hostile length prefix
/// can make the peer allocate.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// Rows per [`Response::Rows`] batch the server emits. Small enough to
/// keep first-row latency low, large enough to amortize framing.
pub const ROW_BATCH: usize = 256;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// A frame that could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The payload ended mid-field.
    Truncated,
    /// A frame announced more than [`MAX_FRAME`] bytes.
    TooLarge(usize),
    /// An opcode byte this protocol version does not define.
    BadOpcode(u8),
    /// A [`ResultShape`] byte outside the defined range.
    BadShape(u8),
    /// Bytes left over after the payload decoded completely.
    TrailingBytes(usize),
    /// Invalid UTF-8 in a string field.
    BadUtf8,
    /// A value failed to decode.
    Codec(CodecError),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte limit")
            }
            WireError::BadOpcode(op) => write!(f, "unknown opcode 0x{op:02x}"),
            WireError::BadShape(s) => write!(f, "unknown result shape 0x{s:02x}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing byte(s) after payload"),
            WireError::BadUtf8 => write!(f, "invalid utf-8 in frame string"),
            WireError::Codec(e) => write!(f, "bad value encoding: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<CodecError> for WireError {
    fn from(e: CodecError) -> WireError {
        WireError::Codec(e)
    }
}

impl From<WireError> for io::Error {
    fn from(e: WireError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

type Result<T> = std::result::Result<T, WireError>;

// ---------------------------------------------------------------------
// Opcodes
// ---------------------------------------------------------------------

mod op {
    // Requests (client → server).
    pub const HELLO: u8 = 0x01;
    pub const QUERY: u8 = 0x02;
    pub const PREPARE: u8 = 0x03;
    pub const EXECUTE: u8 = 0x04;
    pub const PING: u8 = 0x05;
    // Responses (server → client).
    pub const R_HELLO: u8 = 0x81;
    pub const R_ROWS: u8 = 0x82;
    pub const R_DONE: u8 = 0x83;
    pub const R_PREPARED: u8 = 0x84;
    pub const R_ERROR: u8 = 0x85;
    pub const R_PONG: u8 = 0x86;
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session; the server answers with [`Response::Hello`].
    Hello { client: String },
    /// Execute `src` with the given `$name` parameter bindings. The
    /// server routes by effect: read-only statements run against a
    /// snapshot, writers against the database behind the write lock.
    Query { src: String, params: Vec<(String, Value)> },
    /// Prepare `src` without executing; answered by
    /// [`Response::Prepared`] with a statement id for [`Request::Execute`].
    Prepare { src: String },
    /// Execute a previously prepared statement by id.
    Execute { id: u64, params: Vec<(String, Value)> },
    /// Liveness probe; answered by [`Response::Pong`].
    Ping,
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Session accepted.
    Hello { server: String, protocol: u8, instance: u64, epoch: u64 },
    /// One batch of result elements (collections stream; scalars arrive
    /// as a single-element batch).
    Rows { values: Vec<Value> },
    /// End of a result stream: the collection shape to reassemble, the
    /// total element count, and the mutation epoch the statement
    /// observed (the pinned snapshot's for reads, the post-commit epoch
    /// for writes).
    Done { shape: ResultShape, rows: u64, epoch: u64 },
    /// A statement was prepared; `params` are its `$`-prefixed
    /// placeholder names in first-appearance order.
    Prepared { id: u64, params: Vec<String> },
    /// The statement (or the frame carrying it) failed; the session
    /// stays open.
    Error { message: String },
    Pong,
}

/// The shape of a streamed result, carried in [`Response::Done`] so the
/// client can reassemble the exact [`Value`] the engine produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResultShape {
    /// Not a collection: the single streamed value *is* the result.
    Scalar,
    List,
    Set,
    Bag,
    Vector,
}

impl ResultShape {
    /// How `value` streams: its shape tag and the element sequence.
    pub fn deconstruct(value: &Value) -> (ResultShape, Vec<Value>) {
        match value {
            Value::List(items) => (ResultShape::List, items.as_ref().clone()),
            Value::Set(items) => (ResultShape::Set, items.as_ref().clone()),
            Value::Vector(items) => (ResultShape::Vector, items.as_ref().clone()),
            Value::Bag(_) => (
                ResultShape::Bag,
                value.elements().expect("bags enumerate"),
            ),
            other => (ResultShape::Scalar, vec![other.clone()]),
        }
    }

    /// Rebuild the result value from the streamed elements. Exact
    /// inverse of [`ResultShape::deconstruct`]: sets and bags re-sort
    /// into canonical order, so `assemble(deconstruct(v)) == v` for
    /// every encodable value (property-tested).
    pub fn assemble(self, elements: Vec<Value>) -> Result<Value> {
        Ok(match self {
            ResultShape::Scalar => {
                let mut elements = elements;
                match (elements.pop(), elements.is_empty()) {
                    (Some(v), true) => v,
                    _ => return Err(WireError::Truncated),
                }
            }
            ResultShape::List => Value::list(elements),
            ResultShape::Set => Value::set_from(elements),
            ResultShape::Bag => Value::bag_from(elements),
            ResultShape::Vector => Value::vector(elements),
        })
    }

    fn to_byte(self) -> u8 {
        match self {
            ResultShape::Scalar => 0,
            ResultShape::List => 1,
            ResultShape::Set => 2,
            ResultShape::Bag => 3,
            ResultShape::Vector => 4,
        }
    }

    fn from_byte(b: u8) -> Result<ResultShape> {
        Ok(match b {
            0 => ResultShape::Scalar,
            1 => ResultShape::List,
            2 => ResultShape::Set,
            3 => ResultShape::Bag,
            4 => ResultShape::Vector,
            other => return Err(WireError::BadShape(other)),
        })
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_params(buf: &mut BytesMut, params: &[(String, Value)]) -> Result<()> {
    buf.put_u32_le(params.len() as u32);
    for (name, value) in params {
        put_str(buf, name);
        codec::encode_value(value, buf)?;
    }
    Ok(())
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u8())
}

fn get_u32(buf: &mut Bytes) -> Result<u32> {
    if buf.remaining() < 4 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u32_le())
}

fn get_u64(buf: &mut Bytes) -> Result<u64> {
    if buf.remaining() < 8 {
        return Err(WireError::Truncated);
    }
    Ok(buf.get_u64_le())
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_u32(buf)? as usize;
    if buf.remaining() < len {
        return Err(WireError::Truncated);
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| WireError::BadUtf8)
}

fn get_params(buf: &mut Bytes) -> Result<Vec<(String, Value)>> {
    let count = get_u32(buf)? as usize;
    // Each param is at least a 4-byte name length + 1 tag byte: refuse
    // counts the remaining bytes cannot possibly satisfy before
    // reserving anything.
    if count > buf.remaining() / 5 + 1 {
        return Err(WireError::Truncated);
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name = get_str(buf)?;
        let value = codec::decode_value(buf)?;
        out.push((name, value));
    }
    Ok(out)
}

fn finish(buf: &Bytes) -> Result<()> {
    if buf.remaining() > 0 {
        return Err(WireError::TrailingBytes(buf.remaining()));
    }
    Ok(())
}

impl Request {
    /// Encode as a frame *body* (no length prefix — [`write_frame`] adds
    /// it).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut buf = BytesMut::new();
        match self {
            Request::Hello { client } => {
                buf.put_u8(op::HELLO);
                buf.put_u8(PROTOCOL_VERSION);
                put_str(&mut buf, client);
            }
            Request::Query { src, params } => {
                buf.put_u8(op::QUERY);
                put_str(&mut buf, src);
                put_params(&mut buf, params)?;
            }
            Request::Prepare { src } => {
                buf.put_u8(op::PREPARE);
                put_str(&mut buf, src);
            }
            Request::Execute { id, params } => {
                buf.put_u8(op::EXECUTE);
                buf.put_u64_le(*id);
                put_params(&mut buf, params)?;
            }
            Request::Ping => buf.put_u8(op::PING),
        }
        Ok(buf.to_vec())
    }

    /// Decode a frame body. Strict: every byte must be consumed.
    pub fn decode(body: &[u8]) -> Result<Request> {
        let mut buf = Bytes::copy_from_slice(body);
        let opcode = get_u8(&mut buf)?;
        let req = match opcode {
            op::HELLO => {
                // The version byte is advisory in v1 — a v2 server may
                // downgrade; a v1 server just records it.
                let _version = get_u8(&mut buf)?;
                Request::Hello { client: get_str(&mut buf)? }
            }
            op::QUERY => Request::Query {
                src: get_str(&mut buf)?,
                params: get_params(&mut buf)?,
            },
            op::PREPARE => Request::Prepare { src: get_str(&mut buf)? },
            op::EXECUTE => Request::Execute {
                id: get_u64(&mut buf)?,
                params: get_params(&mut buf)?,
            },
            op::PING => Request::Ping,
            other => return Err(WireError::BadOpcode(other)),
        };
        finish(&buf)?;
        Ok(req)
    }
}

impl Response {
    /// Encode as a frame *body* (no length prefix).
    pub fn encode(&self) -> Result<Vec<u8>> {
        let mut buf = BytesMut::new();
        match self {
            Response::Hello { server, protocol, instance, epoch } => {
                buf.put_u8(op::R_HELLO);
                buf.put_u8(*protocol);
                put_str(&mut buf, server);
                buf.put_u64_le(*instance);
                buf.put_u64_le(*epoch);
            }
            Response::Rows { values } => {
                buf.put_u8(op::R_ROWS);
                buf.put_u32_le(values.len() as u32);
                for v in values {
                    codec::encode_value(v, &mut buf)?;
                }
            }
            Response::Done { shape, rows, epoch } => {
                buf.put_u8(op::R_DONE);
                buf.put_u8(shape.to_byte());
                buf.put_u64_le(*rows);
                buf.put_u64_le(*epoch);
            }
            Response::Prepared { id, params } => {
                buf.put_u8(op::R_PREPARED);
                buf.put_u64_le(*id);
                buf.put_u32_le(params.len() as u32);
                for p in params {
                    put_str(&mut buf, p);
                }
            }
            Response::Error { message } => {
                buf.put_u8(op::R_ERROR);
                put_str(&mut buf, message);
            }
            Response::Pong => buf.put_u8(op::R_PONG),
        }
        Ok(buf.to_vec())
    }

    /// Decode a frame body. Strict: every byte must be consumed.
    pub fn decode(body: &[u8]) -> Result<Response> {
        let mut buf = Bytes::copy_from_slice(body);
        let opcode = get_u8(&mut buf)?;
        let resp = match opcode {
            op::R_HELLO => Response::Hello {
                protocol: get_u8(&mut buf)?,
                server: get_str(&mut buf)?,
                instance: get_u64(&mut buf)?,
                epoch: get_u64(&mut buf)?,
            },
            op::R_ROWS => {
                let count = get_u32(&mut buf)? as usize;
                if count > buf.remaining() + 1 {
                    return Err(WireError::Truncated);
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(codec::decode_value(&mut buf)?);
                }
                Response::Rows { values }
            }
            op::R_DONE => Response::Done {
                shape: ResultShape::from_byte(get_u8(&mut buf)?)?,
                rows: get_u64(&mut buf)?,
                epoch: get_u64(&mut buf)?,
            },
            op::R_PREPARED => {
                let id = get_u64(&mut buf)?;
                let count = get_u32(&mut buf)? as usize;
                if count > buf.remaining() / 4 + 1 {
                    return Err(WireError::Truncated);
                }
                let mut params = Vec::with_capacity(count);
                for _ in 0..count {
                    params.push(get_str(&mut buf)?);
                }
                Response::Prepared { id, params }
            }
            op::R_ERROR => Response::Error { message: get_str(&mut buf)? },
            op::R_PONG => Response::Pong,
            other => return Err(WireError::BadOpcode(other)),
        };
        finish(&buf)?;
        Ok(resp)
    }
}

// ---------------------------------------------------------------------
// Frame I/O
// ---------------------------------------------------------------------

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> io::Result<()> {
    if body.len() > MAX_FRAME {
        return Err(WireError::TooLarge(body.len()).into());
    }
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(body)
}

/// Read one length-prefixed frame body. `Ok(None)` on clean EOF at a
/// frame boundary; an EOF mid-frame is an [`io::ErrorKind::UnexpectedEof`]
/// error. A length prefix over [`MAX_FRAME`] is refused *before* any
/// allocation.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(WireError::TooLarge(len).into());
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// [`write_frame`] of an encoded [`Request`].
pub fn write_request(w: &mut impl Write, req: &Request) -> io::Result<()> {
    write_frame(w, &req.encode().map_err(io::Error::from)?)
}

/// [`write_frame`] of an encoded [`Response`].
pub fn write_response(w: &mut impl Write, resp: &Response) -> io::Result<()> {
    write_frame(w, &resp.encode().map_err(io::Error::from)?)
}

/// Read and decode one [`Request`]; `Ok(None)` on clean EOF.
pub fn read_request(r: &mut impl Read) -> io::Result<Option<Request>> {
    match read_frame(r)? {
        Some(body) => Ok(Some(Request::decode(&body)?)),
        None => Ok(None),
    }
}

/// Read and decode one [`Response`]; `Ok(None)` on clean EOF.
pub fn read_response(r: &mut impl Read) -> io::Result<Option<Response>> {
    match read_frame(r)? {
        Some(body) => Ok(Some(Response::decode(&body)?)),
        None => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let body = req.encode().unwrap();
        assert_eq!(Request::decode(&body).unwrap(), req);
    }

    fn round_trip_response(resp: Response) {
        let body = resp.encode().unwrap();
        assert_eq!(Response::decode(&body).unwrap(), resp);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello { client: "t".into() });
        round_trip_request(Request::Query {
            src: "count(Cities)".into(),
            params: vec![("$beds".into(), Value::Int(3))],
        });
        round_trip_request(Request::Prepare { src: "sum(e.salary)".into() });
        round_trip_request(Request::Execute {
            id: 7,
            params: vec![("$city".into(), Value::str("Portland"))],
        });
        round_trip_request(Request::Ping);
    }

    #[test]
    fn responses_round_trip() {
        round_trip_response(Response::Hello {
            server: "oqld".into(),
            protocol: PROTOCOL_VERSION,
            instance: 3,
            epoch: 41,
        });
        round_trip_response(Response::Rows {
            values: vec![Value::Int(1), Value::str("x"), Value::Null],
        });
        round_trip_response(Response::Done {
            shape: ResultShape::Bag,
            rows: 9,
            epoch: 41,
        });
        round_trip_response(Response::Prepared {
            id: 1,
            params: vec!["$city".into(), "$beds".into()],
        });
        round_trip_response(Response::Error { message: "boom".into() });
        round_trip_response(Response::Pong);
    }

    #[test]
    fn truncated_and_trailing_bodies_are_errors() {
        let body = Request::Query { src: "count(Cities)".into(), params: vec![] }
            .encode()
            .unwrap();
        for cut in 1..body.len() {
            assert!(
                Request::decode(&body[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
        let mut padded = body.clone();
        padded.push(0);
        assert_eq!(Request::decode(&padded), Err(WireError::TrailingBytes(1)));
        assert_eq!(Request::decode(&[0x7f]), Err(WireError::BadOpcode(0x7f)));
    }

    #[test]
    fn shapes_reassemble_collections() {
        let bag = Value::bag_from(vec![Value::Int(1), Value::Int(1), Value::Int(2)]);
        let (shape, elems) = ResultShape::deconstruct(&bag);
        assert_eq!(shape, ResultShape::Bag);
        assert_eq!(shape.assemble(elems).unwrap(), bag);

        let scalar = Value::Int(42);
        let (shape, elems) = ResultShape::deconstruct(&scalar);
        assert_eq!(shape, ResultShape::Scalar);
        assert_eq!(elems.len(), 1);
        assert_eq!(shape.assemble(elems).unwrap(), scalar);
    }

    #[test]
    fn oversized_frames_are_refused_without_allocating() {
        let mut out = Vec::new();
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        out.extend_from_slice(&huge);
        let err = read_frame(&mut out.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn eof_at_boundary_is_clean_mid_frame_is_not() {
        assert!(read_frame(&mut [].as_slice()).unwrap().is_none());
        // A length prefix promising 8 bytes, then EOF.
        let partial = 8u32.to_le_bytes();
        let err = read_frame(&mut partial.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}
