//! The `oqld` serving front end: a concurrent, snapshot-isolated wire
//! server over one [`Database`].
//!
//! Thread-per-connection over the length-prefixed protocol in
//! [`crate::wire`] — no async runtime, no dependencies, and the same
//! isolation story: every connection is a [`Session`]; every *statement*
//! binds its own [`Snapshot`] of the database, so any number of
//! connections read concurrently, each seeing one consistent epoch, while
//! write statements serialize behind the `RwLock`'s write half. The lock
//! is held only to *take* the O(1) snapshot (readers) or for the write
//! itself (writers) — never across result streaming, so a slow client
//! cannot stall the database.
//!
//! Statement routing is effect-driven: the prepared statement's
//! [`EffectSummary`](monoid_calculus::analysis::EffectSummary) decides
//! whether it runs on the snapshot read path
//! ([`Session::query_snapshot`]) or the writer path ([`Session::query`]
//! behind the write lock). A read-only statement therefore *cannot*
//! block on a writer's commit, and a writer cannot see a half-applied
//! read. The epoch each statement observed travels back to the client in
//! the `DONE` frame.
//!
//! Malformed frames (truncated, oversized, unknown opcodes, garbage
//! payloads) produce one `ERROR` response and a clean connection close —
//! the framing may be out of sync, so continuing would misparse
//! subsequent bytes. Statement-level failures (parse errors, unbound
//! parameters, write-on-snapshot) produce an `ERROR` response and keep
//! the session open. Battery in `tests/wire_protocol.rs` and
//! `tests/server_smoke.rs`.

use crate::serving::InFlightGuard;
use crate::wire::{self, Request, Response, ResultShape};
use crate::{AnalyzeError, Params, Session};
use monoid_calculus::recorder;
use monoid_calculus::value::Value;
use monoid_store::{Database, Snapshot};
use std::collections::HashMap;
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::thread;

/// The serving front end: a TCP listener plus the shared database it
/// serves. Construct with [`Server::bind`], then either [`Server::run`]
/// (blocking accept loop) or [`Server::spawn`] (background thread,
/// returns a [`ServerHandle`] for shutdown).
pub struct Server {
    listener: TcpListener,
    addr: SocketAddr,
    db: Arc<RwLock<Database>>,
    shutdown: Arc<AtomicBool>,
}

/// Control handle for a spawned server: the bound address and a
/// shutdown switch.
#[derive(Clone)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
}

impl ServerHandle {
    /// The address the server actually bound (port 0 resolves here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Ask the accept loop to stop. In-flight connections drain on
    /// their own (each exits at its next clean EOF); no new connections
    /// are accepted.
    pub fn shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
    }
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) over
    /// `db`.
    pub fn bind(addr: impl ToSocketAddrs, db: Database) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            addr,
            db: Arc::new(RwLock::new(db)),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared database — embedding tests use this to run writer
    /// statements in-process while wire clients read.
    pub fn database(&self) -> Arc<RwLock<Database>> {
        Arc::clone(&self.db)
    }

    /// A control handle (address + shutdown switch).
    pub fn handle(&self) -> ServerHandle {
        ServerHandle { addr: self.addr, shutdown: Arc::clone(&self.shutdown) }
    }

    /// Run the accept loop on this thread until [`ServerHandle::shutdown`]
    /// fires. Each connection gets its own thread and [`Session`].
    pub fn run(self) -> io::Result<()> {
        for conn in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            // A refused/reset handshake is the peer's problem, not
            // grounds to stop serving everyone else.
            let Ok(stream) = conn else { continue };
            let db = Arc::clone(&self.db);
            thread::spawn(move || {
                let _ = serve_connection(stream, &db);
            });
        }
        Ok(())
    }

    /// [`Server::run`] on a background thread; returns the control
    /// handle.
    pub fn spawn(self) -> ServerHandle {
        let handle = self.handle();
        thread::spawn(move || {
            let _ = self.run();
        });
        handle
    }
}

/// Statement ids handed out by `PREPARE`, per connection.
fn next_statement_id(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::Relaxed)
}

/// Drive one connection: a [`Session`] over the process-wide plan cache,
/// a per-connection prepared-statement table, and the request loop.
fn serve_connection(stream: TcpStream, db: &Arc<RwLock<Database>>) -> io::Result<()> {
    stream.set_nodelay(true).ok();
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let session = Session::new();
    let mut prepared: HashMap<u64, Arc<crate::Prepared>> = HashMap::new();
    let statement_ids = AtomicU64::new(1);

    loop {
        let request = match wire::read_request(&mut reader) {
            Ok(Some(req)) => req,
            // Clean EOF at a frame boundary: the client hung up.
            Ok(None) => return Ok(()),
            // Malformed frame: answer once, then close — the framing may
            // be out of sync, so continuing would misparse the stream.
            Err(e) => {
                let _ = wire::write_response(
                    &mut writer,
                    &Response::Error { message: format!("malformed frame: {e}") },
                );
                let _ = writer.flush();
                return Err(e);
            }
        };
        match request {
            Request::Hello { client: _ } => {
                let (instance, epoch) = {
                    let db = db.read().unwrap_or_else(std::sync::PoisonError::into_inner);
                    (db.instance_id(), db.mutation_epoch())
                };
                wire::write_response(
                    &mut writer,
                    &Response::Hello {
                        server: concat!("oqld/", env!("CARGO_PKG_VERSION")).to_string(),
                        protocol: wire::PROTOCOL_VERSION,
                        instance,
                        epoch,
                    },
                )?;
            }
            Request::Ping => wire::write_response(&mut writer, &Response::Pong)?,
            Request::Prepare { src } => {
                let snap = take_snapshot(db);
                match session.cache().get_or_prepare_snapshot_traced(&snap, &src) {
                    Ok((stmt, _)) => {
                        let id = next_statement_id(&statement_ids);
                        let params =
                            stmt.params().iter().map(|p| p.as_str().to_string()).collect();
                        prepared.insert(id, stmt);
                        wire::write_response(&mut writer, &Response::Prepared { id, params })?;
                    }
                    Err(e) => send_error(&mut writer, &e)?,
                }
            }
            Request::Query { src, params } => {
                let params = build_params(&params);
                let outcome = run_query(db, &session, &src, &params);
                send_outcome(&mut writer, outcome)?;
            }
            Request::Execute { id, params } => {
                let Some(stmt) = prepared.get(&id).cloned() else {
                    wire::write_response(
                        &mut writer,
                        &Response::Error { message: format!("no prepared statement #{id}") },
                    )?;
                    writer.flush()?;
                    continue;
                };
                let params = build_params(&params);
                let outcome = run_prepared(db, &session, &stmt, &params);
                send_outcome(&mut writer, outcome)?;
            }
        }
        writer.flush()?;
    }
}

/// Take an O(1) snapshot, holding the read lock only for the `Arc`
/// clones.
fn take_snapshot(db: &Arc<RwLock<Database>>) -> Snapshot {
    db.read().unwrap_or_else(std::sync::PoisonError::into_inner).snapshot()
}

fn build_params(pairs: &[(String, Value)]) -> Params {
    let mut params = Params::new();
    for (name, value) in pairs {
        params.set(name, value.clone());
    }
    params
}

/// Route an ad-hoc statement by effect: read-only statements execute
/// against a fresh per-statement snapshot (no lock held during
/// execution); writers take the write lock. Returns the value and the
/// epoch the statement observed.
fn run_query(
    db: &Arc<RwLock<Database>>,
    session: &Session,
    src: &str,
    params: &Params,
) -> Result<(Value, u64), AnalyzeError> {
    let snap = take_snapshot(db);
    let (stmt, _) = session.cache().get_or_prepare_snapshot_traced(&snap, src)?;
    if writes(&stmt) {
        let mut db = db.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        let value = session.query(&mut db, src, params)?;
        Ok((value, db.mutation_epoch()))
    } else {
        let value = session.query_snapshot(&snap, src, params)?;
        Ok((value, snap.epoch()))
    }
}

/// [`run_query`] for a pre-prepared statement (`EXECUTE`): same routing,
/// same per-statement snapshot binding.
fn run_prepared(
    db: &Arc<RwLock<Database>>,
    session: &Session,
    stmt: &Arc<crate::Prepared>,
    params: &Params,
) -> Result<(Value, u64), AnalyzeError> {
    let _in_flight = InFlightGuard::enter();
    if writes(stmt) {
        let mut db = db.write().unwrap_or_else(std::sync::PoisonError::into_inner);
        recorder::note_session(session.id());
        let value = stmt.execute(&mut db, params)?;
        Ok((value, db.mutation_epoch()))
    } else {
        let snap = take_snapshot(db);
        recorder::note_session(session.id());
        let value = stmt.execute_snapshot(&snap, params)?;
        Ok((value, snap.epoch()))
    }
}

fn writes(stmt: &crate::Prepared) -> bool {
    let effects = &stmt.effects().effects;
    effects.mutates || effects.allocates
}

/// Stream a result: `ROWS` batches of [`wire::ROW_BATCH`] elements, then
/// `DONE` with the shape, total count, and observed epoch — or one
/// `ERROR` frame.
fn send_outcome(
    writer: &mut impl Write,
    outcome: Result<(Value, u64), AnalyzeError>,
) -> io::Result<()> {
    match outcome {
        Ok((value, epoch)) => {
            let (shape, elements) = ResultShape::deconstruct(&value);
            let rows = elements.len() as u64;
            for batch in elements.chunks(wire::ROW_BATCH) {
                wire::write_response(writer, &Response::Rows { values: batch.to_vec() })?;
            }
            wire::write_response(writer, &Response::Done { shape, rows, epoch })
        }
        Err(e) => send_error(writer, &e),
    }
}

fn send_error(writer: &mut impl Write, e: &AnalyzeError) -> io::Result<()> {
    wire::write_response(writer, &Response::Error { message: e.to_string() })
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// A minimal blocking client for the wire protocol — what the
/// throughput benchmark and the smoke tests drive. One statement at a
/// time per connection (the protocol is strictly request/response).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// Instance/epoch announced in the HELLO exchange.
    pub instance: u64,
    pub hello_epoch: u64,
}

/// A completed statement: the reassembled value plus the epoch the
/// server pinned for it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryOutcome {
    pub value: Value,
    pub rows: u64,
    pub epoch: u64,
}

impl Client {
    /// Connect and complete the HELLO exchange.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
            instance: 0,
            hello_epoch: 0,
        };
        client.send(&Request::Hello { client: "monoid-db".to_string() })?;
        match client.recv()? {
            Response::Hello { instance, epoch, .. } => {
                client.instance = instance;
                client.hello_epoch = epoch;
                Ok(client)
            }
            other => Err(unexpected(&other)),
        }
    }

    fn send(&mut self, req: &Request) -> io::Result<()> {
        wire::write_request(&mut self.writer, req)?;
        self.writer.flush()
    }

    fn recv(&mut self) -> io::Result<Response> {
        wire::read_response(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Liveness round trip.
    pub fn ping(&mut self) -> io::Result<()> {
        self.send(&Request::Ping)?;
        match self.recv()? {
            Response::Pong => Ok(()),
            other => Err(unexpected(&other)),
        }
    }

    /// Execute `src` with `params`, reassembling the streamed result.
    /// Statement-level failures come back as `Err` with the server's
    /// message; the connection stays usable.
    pub fn query(
        &mut self,
        src: &str,
        params: &[(String, Value)],
    ) -> io::Result<QueryOutcome> {
        self.send(&Request::Query { src: src.to_string(), params: params.to_vec() })?;
        self.collect_result()
    }

    /// Prepare `src`; returns the statement id for [`Client::execute`].
    pub fn prepare(&mut self, src: &str) -> io::Result<(u64, Vec<String>)> {
        self.send(&Request::Prepare { src: src.to_string() })?;
        match self.recv()? {
            Response::Prepared { id, params } => Ok((id, params)),
            Response::Error { message } => {
                Err(io::Error::new(io::ErrorKind::InvalidInput, message))
            }
            other => Err(unexpected(&other)),
        }
    }

    /// Execute a prepared statement by id.
    pub fn execute(
        &mut self,
        id: u64,
        params: &[(String, Value)],
    ) -> io::Result<QueryOutcome> {
        self.send(&Request::Execute { id, params: params.to_vec() })?;
        self.collect_result()
    }

    fn collect_result(&mut self) -> io::Result<QueryOutcome> {
        let mut elements = Vec::new();
        loop {
            match self.recv()? {
                Response::Rows { values } => elements.extend(values),
                Response::Done { shape, rows, epoch } => {
                    let value = shape.assemble(elements).map_err(io::Error::from)?;
                    return Ok(QueryOutcome { value, rows, epoch });
                }
                Response::Error { message } => {
                    return Err(io::Error::new(io::ErrorKind::InvalidInput, message));
                }
                other => return Err(unexpected(&other)),
            }
        }
    }
}

fn unexpected(resp: &Response) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("unexpected response: {resp:?}"))
}
