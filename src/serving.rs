//! The query serving layer: prepared statements and the epoch-aware plan
//! cache.
//!
//! [`prepare`] runs the whole front-of-pipeline once — parse → translate →
//! normalize → optimize → plan — and captures everything execution needs:
//! the canonical calculus form, the optimized [`Query`] plan, the cached
//! effect summary, and the optimizer's cardinality estimates. The source
//! may mention late-bound parameters (`$name`, or positional `$1`), which
//! travel through every stage as `Expr::Param` leaves; at execution time
//! [`Prepared::execute`] only binds the supplied [`Params`] into the root
//! environment and runs the plan. Nothing is re-parsed, re-normalized, or
//! re-optimized on the warm path — the per-phase `query_phase_nanos`
//! counters prove it (see `tests/prepared.rs`).
//!
//! On top sits [`PlanCache`]: a process-wide, sharded, byte-budgeted LRU
//! keyed by source text + schema fingerprint. Every entry is stamped with
//! the [`Database::mutation_epoch`] observed at prepare time and is served
//! only while the database still reports that exact epoch — the same
//! equality check the algebra crate's index snapshots use (`Index::
//! is_fresh`), so a mutation between executions can never yield a stale
//! plan (or stale statistics). [`Session::query`] is the umbrella fast
//! path that puts the two together: hit the cache, bind, execute.
//!
//! Cache traffic is metered in the process-wide registry:
//! `plan_cache_hits_total`, `plan_cache_misses_total`,
//! `plan_cache_evictions_total`, `plan_cache_invalidations_total`, and the
//! `prepare_nanos` cold-prepare latency histogram.
//!
//! Every execution through this layer also lands one record in the
//! process-wide flight recorder ([`monoid_calculus::recorder`]): source
//! fingerprint, session id, cache disposition, phase timings, rows, and
//! outcome. Executions crossing the slow-query threshold
//! (`MONOID_SLOW_QUERY_NANOS`) additionally capture their optimized plan
//! — and, when re-running is effect-free, a full `explain_analyze`
//! profile. See `docs/observability.md`.

use crate::AnalyzeError;
use monoid_algebra::{plan_comprehension, reorder_generators, Query, Stats};
use monoid_calculus::analysis::EffectSummary;
use monoid_calculus::error::EvalError;
use monoid_calculus::expr::Expr;
use monoid_calculus::normalize::normalize_traced;
use monoid_calculus::recorder::{self, CacheDisposition, SlowQueryCapture};
use monoid_calculus::symbol::Symbol;
use monoid_calculus::trace::{Phase, QueryTrace};
use monoid_calculus::types::Schema;
use monoid_calculus::value::Value;
use monoid_store::{Database, Snapshot};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

// ---------------------------------------------------------------------
// Params
// ---------------------------------------------------------------------

/// Values for a prepared statement's `$name` placeholders. Names may be
/// given with or without the `$` prefix; they are stored canonically
/// (`$`-prefixed), which is also how the symbols appear in the plan.
#[derive(Debug, Clone, Default)]
pub struct Params {
    bindings: Vec<(Symbol, Value)>,
}

impl Params {
    pub fn new() -> Params {
        Params::default()
    }

    /// Builder-style bind: `Params::new().bind("city", v).bind("1", n)`.
    /// Re-binding a name replaces its previous value.
    pub fn bind(mut self, name: &str, value: Value) -> Params {
        self.set(name, value);
        self
    }

    /// In-place bind (same semantics as [`Params::bind`]).
    pub fn set(&mut self, name: &str, value: Value) {
        let sym = canonical_param(name);
        if let Some(slot) = self.bindings.iter_mut().find(|(s, _)| *s == sym) {
            slot.1 = value;
        } else {
            self.bindings.push((sym, value));
        }
    }

    /// The bound value for `name`, if any.
    pub fn get(&self, name: &str) -> Option<&Value> {
        let sym = canonical_param(name);
        self.bindings.iter().find(|(s, _)| *s == sym).map(|(_, v)| v)
    }

    /// The canonical `($name, value)` pairs, in bind order.
    pub fn bindings(&self) -> &[(Symbol, Value)] {
        &self.bindings
    }
}

/// `city` and `$city` both name the parameter symbol `$city`.
fn canonical_param(name: &str) -> Symbol {
    if name.starts_with('$') {
        Symbol::new(name)
    } else {
        Symbol::new(&format!("${name}"))
    }
}

// ---------------------------------------------------------------------
// Prepared
// ---------------------------------------------------------------------

/// A fully pipelined query, ready to execute any number of times against
/// different parameter bindings. Produced by [`prepare`] (schema-only
/// statistics) or [`prepare_on`] (statistics gathered from a database).
#[derive(Debug, Clone)]
pub struct Prepared {
    source: String,
    canonical: Expr,
    exec: ExecMode,
    effects: EffectSummary,
    estimates: Vec<f64>,
    params: Vec<Symbol>,
    trace: QueryTrace,
    prepare_nanos: u128,
}

/// How a prepared statement runs. Plannable canonical comprehensions get
/// the pipelined algebra; everything else the language can express —
/// allocating (`new`) heads, update programs, arithmetic over subqueries
/// — runs on the evaluator over the same canonical form. Either way the
/// warm path starts *after* parse/normalize/optimize.
#[derive(Debug, Clone)]
enum ExecMode {
    Plan(Query),
    Eval,
}

/// Prepare `src` against `schema` alone: parse, translate (type-checking
/// the placeholders as fresh type variables), normalize to canonical
/// form, reorder with *default* (empty) statistics, and plan. Use
/// [`prepare_on`] when a database is at hand — its gathered statistics
/// give the optimizer real cardinalities.
pub fn prepare(schema: &Schema, src: &str) -> Result<Prepared, AnalyzeError> {
    prepare_with_stats(schema, src, &Stats::default())
}

/// Prepare `src` with statistics gathered from `db` (the variant
/// [`Session::query`] and the plan cache use).
pub fn prepare_on(db: &Database, src: &str) -> Result<Prepared, AnalyzeError> {
    prepare_with_stats(db.schema(), src, &gathered_stats(db))
}

/// [`prepare_on`] for the snapshot read path: statistics gathered from
/// (and stamped with) the pinned snapshot, sharing the same one-slot
/// reuse cache — a snapshot of an unchanged database hits the gather the
/// writer path populated, and vice versa, because both key by
/// `(instance_id, mutation_epoch)`.
pub fn prepare_on_snapshot(snap: &Snapshot, src: &str) -> Result<Prepared, AnalyzeError> {
    prepare_with_stats(snap.schema(), src, &gathered_stats_snapshot(snap))
}

/// Gather-or-reuse: `Stats::gather` walks every root and the whole heap,
/// but its result only changes when the database mutates. A one-slot
/// process-wide cache keyed by `(instance_id, mutation_epoch)` makes
/// repeated prepares against an unchanged database reuse the previous
/// gather (counted by `stats_gather_reuse_total`). Anonymous databases
/// (`instance_id() == 0`, from `Database::default()`) are never cached.
fn gathered_stats(db: &Database) -> Arc<Stats> {
    gathered_stats_keyed(db.instance_id(), db.mutation_epoch(), || Stats::gather(db))
}

/// [`gathered_stats`] keyed by a snapshot's pinned
/// `(instance_id, epoch)` pair.
fn gathered_stats_snapshot(snap: &Snapshot) -> Arc<Stats> {
    gathered_stats_keyed(snap.instance_id(), snap.epoch(), || Stats::gather_snapshot(snap))
}

fn gathered_stats_keyed(
    instance: u64,
    epoch: u64,
    gather: impl FnOnce() -> Stats,
) -> Arc<Stats> {
    static CACHE: Mutex<Option<(u64, u64, Arc<Stats>)>> = Mutex::new(None);
    if instance != 0 {
        if let Some((i, e, stats)) = CACHE.lock().unwrap().as_ref() {
            if *i == instance && *e == epoch {
                cache_metrics().stats_reuse.inc();
                return Arc::clone(stats);
            }
        }
    }
    let stats = Arc::new(gather());
    if instance != 0 {
        *CACHE.lock().unwrap() = Some((instance, epoch, Arc::clone(&stats)));
    }
    stats
}

/// Prepare an already-built calculus expression (the bench builders, or
/// forms OQL cannot spell, e.g. allocating `new(…)` heads): normalize,
/// reorder with `stats`, plan. `Expr::Param` leaves become late-bound
/// parameters exactly as in OQL source.
pub fn prepare_expr(expr: &Expr, stats: &Stats) -> Result<Prepared, AnalyzeError> {
    let started = Instant::now();
    let mut trace = QueryTrace::new();
    let src = monoid_calculus::pretty::pretty(expr);
    trace.source = Some(src.clone());
    finish_prepare(started, trace, src, expr, stats)
}

fn prepare_with_stats(
    schema: &Schema,
    src: &str,
    stats: &Stats,
) -> Result<Prepared, AnalyzeError> {
    let started = Instant::now();
    let mut trace = QueryTrace::new();
    trace.source = Some(src.to_string());

    let program = trace.time(Phase::Parse, || monoid_oql::parse_program(src))?;
    let expr = trace.time(Phase::Translate, || {
        monoid_oql::Translator::new(schema).translate_program(&program)
    })?;
    finish_prepare(started, trace, src.to_string(), &expr, stats)
}

/// The back half of every prepare: normalize → optimize → plan, with the
/// trace and registry records all prepares share.
fn finish_prepare(
    started: Instant,
    mut trace: QueryTrace,
    src: String,
    expr: &Expr,
    stats: &Stats,
) -> Result<Prepared, AnalyzeError> {
    let start = Instant::now();
    let (canonical, _derivation, nstats) = normalize_traced(expr);
    trace.record(Phase::Normalize, start.elapsed().as_nanos());
    trace.normalize = Some(nstats);

    let reordered = trace.time(Phase::Optimize, || reorder_generators(&canonical, stats));

    let (exec, estimates) = match trace.time(Phase::Plan, || plan_comprehension(&reordered)) {
        Ok(query) => {
            let estimates = stats.query_estimates(&query);
            (ExecMode::Plan(query), estimates)
        }
        // Shapes the pipelined algebra declines — heap effects, vector
        // comprehensions, non-comprehension roots — stay preparable and
        // run on the evaluator.
        Err(
            monoid_algebra::PlanError::Impure
            | monoid_algebra::PlanError::NotAComprehension
            | monoid_algebra::PlanError::VectorComprehension,
        ) => (ExecMode::Eval, Vec::new()),
        Err(pe) => return Err(AnalyzeError::Exec(EvalError::Other(pe.to_string()))),
    };

    let effects = EffectSummary::of(&canonical);
    let params = collect_params(&canonical);
    let prepare_nanos = started.elapsed().as_nanos();
    cache_metrics().prepare_nanos.observe_nanos(prepare_nanos);

    Ok(Prepared {
        source: src,
        canonical,
        exec,
        effects,
        estimates,
        params,
        trace,
        prepare_nanos,
    })
}

/// Every distinct `$param` in `e`, in first-appearance order.
fn collect_params(e: &Expr) -> Vec<Symbol> {
    let mut out = Vec::new();
    e.visit(&mut |n| {
        if let Expr::Param(p) = n {
            if !out.contains(p) {
                out.push(*p);
            }
        }
    });
    out
}

impl Prepared {
    /// The original OQL source text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// The normalized (canonical-form) calculus expression.
    pub fn canonical(&self) -> &Expr {
        &self.canonical
    }

    /// The optimized physical plan, when the canonical form is plannable
    /// (`None` for evaluator-mode statements: allocating heads, update
    /// programs, non-comprehension roots).
    pub fn query(&self) -> Option<&Query> {
        match &self.exec {
            ExecMode::Plan(q) => Some(q),
            ExecMode::Eval => None,
        }
    }

    /// The effect summary of the canonical form, computed once at prepare
    /// time (placeholders contribute nothing — they are pure leaves).
    pub fn effects(&self) -> &EffectSummary {
        &self.effects
    }

    /// The optimizer's per-operator cardinality estimates, in the plan's
    /// pre-order numbering.
    pub fn estimates(&self) -> &[f64] {
        &self.estimates
    }

    /// The statement's `$`-prefixed parameter names, in first-appearance
    /// order.
    pub fn params(&self) -> &[Symbol] {
        &self.params
    }

    /// The prepare-time lifecycle trace (parse → translate → normalize →
    /// optimize → plan; no execute phase).
    pub fn trace(&self) -> &QueryTrace {
        &self.trace
    }

    /// Wall-clock nanoseconds the whole prepare took.
    pub fn prepare_nanos(&self) -> u128 {
        self.prepare_nanos
    }

    /// Check `params` against the statement's placeholders: every
    /// placeholder must be bound, and every binding must name a
    /// placeholder (catching typos eagerly instead of mid-scan).
    fn resolve<'p>(&self, params: &'p Params) -> Result<&'p [(Symbol, Value)], EvalError> {
        for p in &self.params {
            if !params.bindings.iter().any(|(s, _)| s == p) {
                return Err(EvalError::UnboundParameter(*p));
            }
        }
        for (s, _) in &params.bindings {
            if !self.params.contains(s) {
                return Err(EvalError::Other(format!(
                    "binding for `{s}` does not match any statement parameter"
                )));
            }
        }
        Ok(&params.bindings)
    }

    /// Execute sequentially: bind `params` into the root environment and
    /// run the stored plan (or, for evaluator-mode statements, the stored
    /// canonical form). No parse/normalize/optimize work happens here.
    pub fn execute(&self, db: &mut Database, params: &Params) -> Result<Value, AnalyzeError> {
        self.run_recorded(db, params, |p, db, binds| match &p.exec {
            ExecMode::Plan(q) => Ok(monoid_algebra::execute_bound(q, db, binds)?),
            ExecMode::Eval => p.execute_eval(db, binds),
        })
    }

    /// Execute with fleet metering (per-operator row counters in the
    /// global registry). Evaluator-mode statements run unmetered — there
    /// are no plan operators to charge.
    pub fn execute_metered(
        &self,
        db: &mut Database,
        params: &Params,
    ) -> Result<Value, AnalyzeError> {
        self.run_recorded(db, params, |p, db, binds| match &p.exec {
            ExecMode::Plan(q) => Ok(monoid_algebra::execute_metered_bound(q, db, binds)?),
            ExecMode::Eval => p.execute_eval(db, binds),
        })
    }

    /// Execute on the ordered parallel engine at
    /// [`monoid_algebra::default_threads`] workers (byte-identical to
    /// sequential execution). Evaluator-mode statements fall back to
    /// sequential evaluation, matching the parallel engine's own
    /// mutation fallback.
    pub fn execute_parallel_auto(
        &self,
        db: &mut Database,
        params: &Params,
    ) -> Result<Value, AnalyzeError> {
        self.run_recorded(db, params, |p, db, binds| match &p.exec {
            ExecMode::Plan(q) => Ok(monoid_algebra::execute_parallel_auto_bound(q, db, binds)?),
            ExecMode::Eval => p.execute_eval(db, binds),
        })
    }

    /// Execute against an immutable [`Snapshot`] — the concurrent-read
    /// path. Statements whose effect summary writes the heap (`:=`
    /// updates, `new` allocations) are refused: they need the
    /// `&mut Database` writer path, where epochs advance. Results are
    /// byte-identical to [`Prepared::execute`] against the database at
    /// the snapshot's epoch.
    pub fn execute_snapshot(
        &self,
        snap: &Snapshot,
        params: &Params,
    ) -> Result<Value, AnalyzeError> {
        let scope = if recorder::global().enabled() && !recorder::active() {
            recorder::begin(&self.source)
        } else {
            None
        };
        recorder::note_snapshot_epoch(snap.epoch());
        recorder::note_effects(|| self.effects.to_string());
        let result = self.execute_snapshot_inner(snap, params);
        if let Ok(v) = &result {
            recorder::note_result(v);
        }
        if let Some(scope) = scope {
            let error = result.as_ref().err().map(ToString::to_string);
            if let Some(trigger) = scope.finish(error) {
                self.capture_slow_snapshot(&trigger);
            }
        }
        result
    }

    fn execute_snapshot_inner(
        &self,
        snap: &Snapshot,
        params: &Params,
    ) -> Result<Value, AnalyzeError> {
        if self.effects.effects.mutates || self.effects.effects.allocates {
            return Err(AnalyzeError::Exec(EvalError::Other(format!(
                "statement has heap effects ({}) — snapshots are read-only; \
                 run it against the database writer instead",
                self.effects
            ))));
        }
        let binds = self.resolve(params).map_err(AnalyzeError::Exec)?;
        let timing = recorder::active().then(Instant::now);
        let result = match &self.exec {
            ExecMode::Plan(q) => {
                monoid_algebra::execute_snapshot_bound(q, snap, binds).map_err(AnalyzeError::from)
            }
            ExecMode::Eval => {
                recorder::note_engine("eval");
                let mut env = snap.env();
                for (p, v) in binds {
                    env = env.bind(*p, v.clone());
                }
                snap.eval_unchecked(&self.canonical, &env).map_err(AnalyzeError::from)
            }
        };
        if let Some(started) = timing {
            recorder::note_phase(Phase::Execute, started.elapsed().as_nanos());
        }
        result
    }

    /// The snapshot path's slow-query capture: plan text only — a
    /// profiled re-run needs a `&mut Database`, which a snapshot reader
    /// deliberately does not hold.
    fn capture_slow_snapshot(&self, trigger: &recorder::SlowTrigger) {
        recorder::global().capture_slow(SlowQueryCapture {
            seq: trigger.seq,
            fingerprint: trigger.fingerprint,
            source: self.source.clone(),
            total_nanos: trigger.total_nanos,
            threshold_nanos: trigger.threshold_nanos,
            plan: self.query().map(monoid_algebra::explain),
            profile: None,
        });
    }

    /// The shared recording wrapper of every `execute*` variant: open a
    /// flight-recorder scope when no higher layer (a [`Session`]) owns
    /// one, annotate whatever record is active (effect summary, execute
    /// time, rows, outcome), and — for a scope opened here — commit it
    /// and attach the slow-query capture if the threshold tripped.
    fn run_recorded(
        &self,
        db: &mut Database,
        params: &Params,
        f: impl FnOnce(&Prepared, &mut Database, &[(Symbol, Value)]) -> Result<Value, AnalyzeError>,
    ) -> Result<Value, AnalyzeError> {
        let scope = if recorder::global().enabled() && !recorder::active() {
            recorder::begin(&self.source)
        } else {
            None
        };
        recorder::note_effects(|| self.effects.to_string());
        let binds = match self.resolve(params) {
            Ok(b) => b,
            Err(e) => {
                let err = AnalyzeError::Exec(e);
                if let Some(scope) = scope {
                    scope.finish(Some(err.to_string()));
                }
                return Err(err);
            }
        };
        // The execute phase is timed here — not in the algebra layers
        // below — so it lands on the record whichever layer owns it.
        let timing = recorder::active().then(Instant::now);
        let result = f(self, db, binds);
        if let Some(started) = timing {
            recorder::note_phase(Phase::Execute, started.elapsed().as_nanos());
        }
        if let Ok(v) = &result {
            recorder::note_result(v);
        }
        if let Some(scope) = scope {
            let error = result.as_ref().err().map(ToString::to_string);
            if let Some(trigger) = scope.finish(error) {
                self.capture_slow(db, params, &trigger);
            }
        }
        result
    }

    /// Attach the deep capture for an over-threshold execution: the
    /// optimized plan text and — when a second run cannot be observed
    /// (no `:=`, which would change object state, and no `new(…)`, which
    /// would grow the heap) — a full re-run under the profiler. Runs
    /// after the record committed, so the re-run's own notes are no-ops.
    pub(crate) fn capture_slow(
        &self,
        db: &mut Database,
        params: &Params,
        trigger: &recorder::SlowTrigger,
    ) {
        let plan = self.query().map(monoid_algebra::explain);
        let replay_safe = !self.effects.effects.mutates && !self.effects.effects.allocates;
        let profile = match (self.query(), self.resolve(params)) {
            (Some(q), Ok(binds)) if replay_safe => {
                monoid_algebra::execute_profiled_bound(q, db, binds)
                    .ok()
                    .map(|a| a.profile.to_json())
            }
            _ => None,
        };
        recorder::global().capture_slow(SlowQueryCapture {
            seq: trigger.seq,
            fingerprint: trigger.fingerprint,
            // The record's source is capped; slow queries are rare
            // enough to keep the full text.
            source: self.source.clone(),
            total_nanos: trigger.total_nanos,
            threshold_nanos: trigger.threshold_nanos,
            plan,
            profile,
        });
    }

    /// Profile one execution and render it as folded stacks (the
    /// `flamegraph.pl` / inferno input format): one
    /// `Reduce[monoid];frame;…;frame self_nanos` line per plan operator.
    /// Only plan-mode statements have an operator tree to fold;
    /// evaluator-mode statements report an error instead of an empty
    /// flamegraph.
    pub fn profile_folded(
        &self,
        db: &mut Database,
        params: &Params,
    ) -> Result<String, AnalyzeError> {
        let binds = self.resolve(params).map_err(AnalyzeError::Exec)?;
        let Some(q) = self.query() else {
            return Err(AnalyzeError::Exec(EvalError::Other(
                "statement runs on the evaluator (no plan to profile)".to_string(),
            )));
        };
        let analysis = monoid_algebra::execute_profiled_bound(q, db, binds)?;
        Ok(analysis.profile.to_folded())
    }

    /// The evaluator path: the database's own heap-in/heap-out shape,
    /// with the parameter bindings layered over the persistent roots.
    fn execute_eval(
        &self,
        db: &mut Database,
        binds: &[(Symbol, Value)],
    ) -> Result<Value, AnalyzeError> {
        recorder::note_engine("eval");
        let mut env = db.env();
        for (p, v) in binds {
            env = env.bind(*p, v.clone());
        }
        let heap = std::mem::take(db.heap_mut());
        let mut ev = monoid_calculus::eval::Evaluator::with_heap(heap);
        let result = ev.eval(&env, &self.canonical);
        *db.heap_mut() = ev.heap;
        Ok(result?)
    }
}

// ---------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------

/// Shard count: fixed power of two so key → shard is a mask.
const SHARDS: usize = 8;

/// Default byte budget for the process-wide cache (approximate, across
/// all shards).
const DEFAULT_BUDGET_BYTES: usize = 8 * 1024 * 1024;

/// A sharded, LRU, byte-budgeted cache of [`Prepared`] statements, keyed
/// by source text + schema fingerprint and stamped with the database
/// mutation epoch observed at prepare time.
///
/// An entry is served only while `db.mutation_epoch()` still equals its
/// stamp — the same equality freshness check the index snapshots use —
/// so any mutation (heap write, allocation, root change) between
/// executions invalidates every entry prepared before it. Invalidation
/// is counted (`plan_cache_invalidations_total`) and followed by a fresh
/// prepare, never by serving the stale plan.
pub struct PlanCache {
    shards: Vec<Mutex<Shard>>,
    /// Approximate byte budget per shard.
    shard_budget: usize,
    /// Monotonic logical clock for LRU ordering.
    tick: AtomicU64,
}

#[derive(Default)]
struct Shard {
    entries: Vec<CacheEntry>,
    bytes: usize,
}

struct CacheEntry {
    source: String,
    schema_fp: u64,
    /// The `(instance_id, mutation_epoch)` pair observed at prepare
    /// time. Both halves must match for a hit: epochs are only
    /// comparable within one database instance, so an entry prepared
    /// against a different database that happens to share an epoch
    /// number must not be served (`tests/plan_cache.rs`).
    instance: u64,
    epoch: u64,
    bytes: usize,
    last_used: u64,
    prepared: Arc<Prepared>,
}

impl Default for PlanCache {
    fn default() -> PlanCache {
        PlanCache::with_budget(DEFAULT_BUDGET_BYTES)
    }
}

impl PlanCache {
    pub fn new() -> PlanCache {
        PlanCache::default()
    }

    /// A cache bounded to roughly `budget_bytes` across all shards.
    pub fn with_budget(budget_bytes: usize) -> PlanCache {
        PlanCache {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            shard_budget: (budget_bytes / SHARDS).max(1),
            tick: AtomicU64::new(0),
        }
    }

    /// The serving fast path: return the cached plan for `(src, schema)`
    /// if its `(instance, epoch)` stamp still matches the database;
    /// otherwise prepare (with statistics from `db`), cache, and return
    /// it.
    pub fn get_or_prepare(
        &self,
        db: &Database,
        src: &str,
    ) -> Result<Arc<Prepared>, AnalyzeError> {
        self.get_or_prepare_traced(db, src).map(|(p, _)| p)
    }

    /// [`PlanCache::get_or_prepare`], also reporting the disposition:
    /// `true` when served from cache, `false` when freshly prepared
    /// (cold, stale-epoch, or evicted). [`Session`] threads this into
    /// the flight recorder.
    pub fn get_or_prepare_traced(
        &self,
        db: &Database,
        src: &str,
    ) -> Result<(Arc<Prepared>, bool), AnalyzeError> {
        self.resolve_traced(
            schema_fingerprint(db.schema()),
            db.instance_id(),
            db.mutation_epoch(),
            src,
            || prepare_on(db, src),
        )
    }

    /// [`PlanCache::get_or_prepare_traced`] against a pinned
    /// [`Snapshot`]: the same cache, keyed by the snapshot's
    /// `(instance_id, epoch)`. Concurrent readers of one snapshot share
    /// entries with each other *and* with the writer path whenever the
    /// epochs agree; a reader pinned behind the writer simply re-prepares
    /// against its own epoch without disturbing the newer entry — the
    /// stale-entry eviction only fires for entries of the same key that
    /// can never be served again, which a racing fresh epoch cannot
    /// prove, so eviction here is conservative (replace-on-insert).
    pub fn get_or_prepare_snapshot_traced(
        &self,
        snap: &Snapshot,
        src: &str,
    ) -> Result<(Arc<Prepared>, bool), AnalyzeError> {
        self.resolve_traced(
            schema_fingerprint(snap.schema()),
            snap.instance_id(),
            snap.epoch(),
            src,
            || prepare_on_snapshot(snap, src),
        )
    }

    fn resolve_traced(
        &self,
        fp: u64,
        instance: u64,
        epoch: u64,
        src: &str,
        prepare: impl FnOnce() -> Result<Prepared, AnalyzeError>,
    ) -> Result<(Arc<Prepared>, bool), AnalyzeError> {
        let m = cache_metrics();
        let shard = &self.shards[(hash_key(src, fp) as usize) & (SHARDS - 1)];

        {
            let mut s = shard.lock().unwrap();
            if let Some(i) = s.entries.iter().position(|e| e.source == src && e.schema_fp == fp)
            {
                if s.entries[i].instance == instance && s.entries[i].epoch == epoch {
                    m.hits.inc();
                    let tick = self.tick.fetch_add(1, Ordering::Relaxed);
                    s.entries[i].last_used = tick;
                    return Ok((Arc::clone(&s.entries[i].prepared), true));
                }
                // Stale: the database mutated since this plan (and its
                // statistics) were captured — or the entry belongs to a
                // different database instance entirely. Refuse it,
                // exactly like a stale index snapshot.
                m.invalidations.inc();
                let dead = s.entries.remove(i);
                s.bytes -= dead.bytes;
            }
        }

        m.misses.inc();
        let prepared = Arc::new(prepare()?);
        let bytes = approx_bytes(&prepared);
        let tick = self.tick.fetch_add(1, Ordering::Relaxed);
        let mut s = shard.lock().unwrap();
        // A racing thread may have inserted the same key; replace rather
        // than duplicate.
        if let Some(i) = s.entries.iter().position(|e| e.source == src && e.schema_fp == fp) {
            let dead = s.entries.remove(i);
            s.bytes -= dead.bytes;
        }
        s.entries.push(CacheEntry {
            source: src.to_string(),
            schema_fp: fp,
            instance,
            epoch,
            bytes,
            last_used: tick,
            prepared: Arc::clone(&prepared),
        });
        s.bytes += bytes;
        while s.bytes > self.shard_budget && s.entries.len() > 1 {
            let (oldest, _) = s
                .entries
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.last_used)
                .expect("non-empty");
            let dead = s.entries.remove(oldest);
            s.bytes -= dead.bytes;
            m.evictions.inc();
        }
        Ok((prepared, false))
    }

    /// Entries currently cached (all shards).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().entries.len()).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Approximate bytes currently cached (all shards).
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().unwrap().bytes).sum()
    }

    /// Drop every entry (counters are not touched).
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap();
            s.entries.clear();
            s.bytes = 0;
        }
    }
}

/// Deterministic (per-process) fingerprint of a schema's debug form —
/// symbols intern to stable ids within a process, which is the cache's
/// lifetime.
fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{schema:?}").hash(&mut h);
    h.finish()
}

fn hash_key(src: &str, fp: u64) -> u64 {
    let mut h = DefaultHasher::new();
    src.hash(&mut h);
    fp.hash(&mut h);
    h.finish()
}

/// Approximate retained size of a prepared statement: source text plus a
/// fixed charge per calculus node, plan operator, estimate, and param.
fn approx_bytes(p: &Prepared) -> usize {
    let plan_nodes = p.query().map_or(0, |q| q.plan.node_count());
    p.source.len()
        + 64 * p.canonical.size()
        + 128 * plan_nodes
        + 8 * p.estimates.len()
        + 16 * p.params.len()
        + 256
}

/// The process-wide plan cache backing [`Session::new`].
pub fn global_plan_cache() -> &'static Arc<PlanCache> {
    static CACHE: OnceLock<Arc<PlanCache>> = OnceLock::new();
    CACHE.get_or_init(|| Arc::new(PlanCache::new()))
}

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// The umbrella serving fast path: `session.query(db, src, &params)`
/// resolves `src` through the plan cache (epoch-checked) and executes the
/// prepared plan with the given bindings. Sessions are cheap handles; by
/// default they all share the process-wide [`global_plan_cache`].
#[derive(Clone)]
pub struct Session {
    cache: Arc<PlanCache>,
    /// Process-unique id, stamped on every flight-recorder record this
    /// session produces. Clones share it — they are the same logical
    /// session over the same cache.
    id: u64,
    /// Statements this logical session has served (shared by clones,
    /// like the id). The process-wide aggregate is the
    /// `serving_statements_total` counter.
    statements: Arc<AtomicU64>,
}

/// A panic-safe increment of the `serving_requests_in_flight` gauge:
/// taken at the top of every serving entry point, released on drop —
/// unwinding included — so the gauge provably returns to zero once all
/// in-flight statements finish (`tests/snapshot_swap.rs`).
pub struct InFlightGuard {
    gauge: Arc<monoid_calculus::metrics::Gauge>,
}

impl InFlightGuard {
    /// Bump the gauge; the matching decrement runs on drop.
    pub fn enter() -> InFlightGuard {
        let gauge = Arc::clone(&serving_metrics().in_flight);
        gauge.add(1);
        InFlightGuard { gauge }
    }
}

impl Drop for InFlightGuard {
    fn drop(&mut self) {
        self.gauge.add(-1);
    }
}

/// Statements currently executing through the serving layer (the
/// `serving_requests_in_flight` gauge).
pub fn requests_in_flight() -> i64 {
    serving_metrics().in_flight.get()
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

fn next_session_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Session {
    /// A session over the process-wide plan cache.
    pub fn new() -> Session {
        Session {
            cache: Arc::clone(global_plan_cache()),
            id: next_session_id(),
            statements: Arc::new(AtomicU64::new(0)),
        }
    }

    /// A session over a private cache (isolated tests, bounded budgets).
    pub fn with_cache(cache: Arc<PlanCache>) -> Session {
        Session { cache, id: next_session_id(), statements: Arc::new(AtomicU64::new(0)) }
    }

    /// The cache this session serves from.
    pub fn cache(&self) -> &PlanCache {
        &self.cache
    }

    /// The id stamped on this session's flight-recorder records.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Statements this logical session (including clones) has served.
    pub fn statements_served(&self) -> u64 {
        self.statements.load(Ordering::Relaxed)
    }

    /// One statement entered this session: bump the per-session counter
    /// and the process-wide `serving_statements_total`.
    fn count_statement(&self) {
        self.statements.fetch_add(1, Ordering::Relaxed);
        serving_metrics().statements.inc();
    }

    /// Prepare-or-hit, then execute sequentially.
    pub fn query(
        &self,
        db: &mut Database,
        src: &str,
        params: &Params,
    ) -> Result<Value, AnalyzeError> {
        self.serve(db, src, params, false)
    }

    /// Prepare-or-hit, then execute on the parallel engine at
    /// [`monoid_algebra::default_threads`] workers.
    pub fn query_parallel(
        &self,
        db: &mut Database,
        src: &str,
        params: &Params,
    ) -> Result<Value, AnalyzeError> {
        self.serve(db, src, params, true)
    }

    /// The one serving path behind [`Session::query`] and
    /// [`Session::query_parallel`]: resolve through the cache and
    /// execute, owning the flight-recorder record for the whole
    /// lifecycle — session id, cache disposition, the cold prepare's
    /// phase timings (a prepare trace has no execute phase, so nothing
    /// double-counts with [`Prepared::run_recorded`]'s execute timing),
    /// and the slow-query capture on commit.
    fn serve(
        &self,
        db: &mut Database,
        src: &str,
        params: &Params,
        parallel: bool,
    ) -> Result<Value, AnalyzeError> {
        let _in_flight = InFlightGuard::enter();
        self.count_statement();
        let scope = if recorder::global().enabled() && !recorder::active() {
            recorder::begin(src)
        } else {
            None
        };
        recorder::note_session(self.id);
        let resolved = self.cache.get_or_prepare_traced(db, src);
        let prepared = match resolved {
            Ok((prepared, hit)) => {
                if hit {
                    recorder::note_cache(CacheDisposition::Hit);
                } else {
                    recorder::note_cache(CacheDisposition::Miss);
                    recorder::note_trace(prepared.trace());
                }
                prepared
            }
            Err(e) => {
                if let Some(scope) = scope {
                    scope.finish(Some(e.to_string()));
                }
                return Err(e);
            }
        };
        let result = if parallel {
            prepared.execute_parallel_auto(db, params)
        } else {
            prepared.execute(db, params)
        };
        if let Some(scope) = scope {
            let error = result.as_ref().err().map(ToString::to_string);
            if let Some(trigger) = scope.finish(error) {
                prepared.capture_slow(db, params, &trigger);
            }
        }
        result
    }

    /// Prepare-or-hit without executing (warming, inspection).
    pub fn prepare(&self, db: &Database, src: &str) -> Result<Arc<Prepared>, AnalyzeError> {
        self.cache.get_or_prepare(db, src)
    }

    /// The snapshot-isolated serving path: resolve `src` through the
    /// plan cache keyed by the snapshot's pinned `(instance_id, epoch)`
    /// and execute against the snapshot — no lock on the live database,
    /// so any number of sessions run this concurrently while a writer
    /// commits new epochs. Write statements are refused (they need
    /// [`Session::query`] against the `&mut Database`).
    pub fn query_snapshot(
        &self,
        snap: &Snapshot,
        src: &str,
        params: &Params,
    ) -> Result<Value, AnalyzeError> {
        let _in_flight = InFlightGuard::enter();
        self.count_statement();
        let scope = if recorder::global().enabled() && !recorder::active() {
            recorder::begin(src)
        } else {
            None
        };
        recorder::note_session(self.id);
        recorder::note_snapshot_epoch(snap.epoch());
        let resolved = self.cache.get_or_prepare_snapshot_traced(snap, src);
        let prepared = match resolved {
            Ok((prepared, hit)) => {
                if hit {
                    recorder::note_cache(CacheDisposition::Hit);
                } else {
                    recorder::note_cache(CacheDisposition::Miss);
                    recorder::note_trace(prepared.trace());
                }
                prepared
            }
            Err(e) => {
                if let Some(scope) = scope {
                    scope.finish(Some(e.to_string()));
                }
                return Err(e);
            }
        };
        let result = prepared.execute_snapshot(snap, params);
        if let Some(scope) = scope {
            let error = result.as_ref().err().map(ToString::to_string);
            if let Some(trigger) = scope.finish(error) {
                prepared.capture_slow_snapshot(&trigger);
            }
        }
        result
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

struct CacheMetrics {
    hits: Arc<monoid_calculus::metrics::Counter>,
    misses: Arc<monoid_calculus::metrics::Counter>,
    evictions: Arc<monoid_calculus::metrics::Counter>,
    invalidations: Arc<monoid_calculus::metrics::Counter>,
    prepare_nanos: Arc<monoid_calculus::metrics::Histogram>,
    stats_reuse: Arc<monoid_calculus::metrics::Counter>,
}

fn cache_metrics() -> &'static CacheMetrics {
    static METRICS: OnceLock<CacheMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = monoid_calculus::metrics::global();
        CacheMetrics {
            hits: r.counter("plan_cache_hits_total"),
            misses: r.counter("plan_cache_misses_total"),
            evictions: r.counter("plan_cache_evictions_total"),
            invalidations: r.counter("plan_cache_invalidations_total"),
            prepare_nanos: r.histogram("prepare_nanos"),
            stats_reuse: r.counter("stats_gather_reuse_total"),
        }
    })
}

struct ServingMetrics {
    /// Statements currently inside a serving entry point (writer or
    /// snapshot path). Guard-maintained: returns to zero when the layer
    /// drains, panics included.
    in_flight: Arc<monoid_calculus::metrics::Gauge>,
    /// Statements served, across all sessions.
    statements: Arc<monoid_calculus::metrics::Counter>,
}

fn serving_metrics() -> &'static ServingMetrics {
    static METRICS: OnceLock<ServingMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = monoid_calculus::metrics::global();
        ServingMetrics {
            in_flight: r.gauge("serving_requests_in_flight"),
            statements: r.counter("serving_statements_total"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_store::travel::{self, TravelScale};

    fn db() -> Database {
        travel::generate(TravelScale::tiny(), 42)
    }

    #[test]
    fn prepared_execute_matches_adhoc() {
        let mut db = db();
        let src = "select h.name from c in Cities, h in c.hotels where c.name = $city";
        let prepared = prepare_on(&db, src).unwrap();
        assert_eq!(prepared.params(), &[Symbol::new("$city")]);
        let v = prepared
            .execute(&mut db, &Params::new().bind("city", Value::str("Portland")))
            .unwrap();
        let adhoc = crate::explain_analyze(
            "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'",
            &mut db,
        )
        .unwrap()
        .value;
        assert_eq!(v, adhoc);
    }

    #[test]
    fn rebinding_changes_results_not_plans() {
        let mut db = db();
        let src = "select r.price from h in Hotels, r in h.rooms where r.bed# >= $beds";
        let prepared = prepare_on(&db, src).unwrap();
        let a = prepared.execute(&mut db, &Params::new().bind("beds", Value::Int(1))).unwrap();
        let b = prepared.execute(&mut db, &Params::new().bind("beds", Value::Int(99))).unwrap();
        assert_ne!(a, b, "different bindings select different rows");
        assert_eq!(b.elements().unwrap().len(), 0);
    }

    #[test]
    fn missing_and_unknown_bindings_are_rejected() {
        let mut db = db();
        let prepared =
            prepare_on(&db, "select c.name from c in Cities where c.name = $city").unwrap();
        let err = prepared.execute(&mut db, &Params::new()).unwrap_err();
        assert!(err.to_string().contains("$city"), "{err}");
        let err = prepared
            .execute(
                &mut db,
                &Params::new()
                    .bind("city", Value::str("Portland"))
                    .bind("oops", Value::Int(1)),
            )
            .unwrap_err();
        assert!(err.to_string().contains("$oops"), "{err}");
    }

    #[test]
    fn cache_hits_serve_the_same_prepared() {
        let cache = PlanCache::new();
        let db = db();
        let src = "count(Cities)";
        let a = cache.get_or_prepare(&db, src).unwrap();
        let b = cache.get_or_prepare(&db, src).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "second lookup is a hit");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn mutation_invalidates_cached_entries() {
        let cache = PlanCache::new();
        let mut db = db();
        let src = "count(Cities)";
        let a = cache.get_or_prepare(&db, src).unwrap();
        let before = db.mutation_epoch();
        db.set_root("Scratch", Value::Int(1));
        assert_ne!(before, db.mutation_epoch(), "root change advances the epoch");
        let b = cache.get_or_prepare(&db, src).unwrap();
        assert!(!Arc::ptr_eq(&a, &b), "mutation forced a re-prepare");
    }

    #[test]
    fn lru_eviction_respects_byte_budget() {
        // A budget that holds only a couple of entries per shard.
        let cache = PlanCache::with_budget(SHARDS * 2048);
        let db = db();
        for i in 0..64 {
            let src = format!("select c.name from c in Cities where c.hotel# > {i}");
            cache.get_or_prepare(&db, &src).unwrap();
        }
        assert!(cache.bytes() <= SHARDS * 2048 + 4096, "budget enforced: {}", cache.bytes());
        assert!(cache.len() < 64, "older entries evicted");
    }
}
