//! # monoid-db — umbrella crate
//!
//! Re-exports the whole system built around the monoid comprehension
//! calculus of Fegaras & Maier (SIGMOD 1995):
//!
//! * [`calculus`] — the calculus itself: monoids, comprehensions, type
//!   inference, normalization, evaluation, identity & updates.
//! * [`store`] — the object database substrate (schemas, extents, the
//!   paper's travel-agency database, synthetic data generation).
//! * [`oql`] — the ODMG-93 OQL front end (lexer, parser, translation into
//!   the calculus).
//! * [`algebra`] — the logical/physical algebra back end (canonical
//!   comprehension → pipelined iterator plans).
//! * [`vector`] — vectors and arrays as monoids (§4.1 extension library).
//!
//! Umbrella-level entry points: [`analyze`] (static analysis of OQL
//! source — effects + MC001–MC006 lints, no execution),
//! [`explain_analyze`] (profiled end-to-end execution), and the
//! [`serving`] layer ([`prepare`] → [`Prepared::execute`] prepared
//! statements with `$name` placeholders, plus the epoch-aware
//! [`PlanCache`] behind [`Session::query`]).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use monoid_algebra as algebra;
pub use monoid_calculus as calculus;
pub use monoid_oql as oql;
pub use monoid_store as store;
pub use monoid_vector as vector;

pub mod server;
pub mod serving;
pub mod wire;

pub use serving::{
    global_plan_cache, prepare, prepare_expr, prepare_on, prepare_on_snapshot,
    requests_in_flight, InFlightGuard, Params, PlanCache, Prepared, Session,
};

pub use monoid_calculus::prelude;

use monoid_algebra::Analysis;
use monoid_calculus::analysis::AnalysisReport;
use monoid_calculus::error::EvalError;
use monoid_calculus::trace::{Phase, QueryTrace};
use monoid_calculus::types::Schema;
use monoid_oql::OqlError;
use monoid_store::Database;

/// Why a profiled end-to-end run failed: in the front end or at
/// plan/execution time.
#[derive(Debug, Clone)]
pub enum AnalyzeError {
    /// Lexing, parsing, or OQL → calculus translation failed.
    Oql(OqlError),
    /// Planning or execution failed.
    Exec(EvalError),
}

impl std::fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AnalyzeError::Oql(e) => write!(f, "{e}"),
            AnalyzeError::Exec(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AnalyzeError {}

impl From<OqlError> for AnalyzeError {
    fn from(e: OqlError) -> AnalyzeError {
        AnalyzeError::Oql(e)
    }
}

impl From<EvalError> for AnalyzeError {
    fn from(e: EvalError) -> AnalyzeError {
        AnalyzeError::Exec(e)
    }
}

/// Statically analyze an OQL query against `schema` *without executing
/// it*: parse → translate (recording source spans) → effect inference +
/// the MC001–MC006 lint pass. This is the library face of the `oqlint`
/// binary; `report.render()` for humans, `report.to_json()` for tools.
pub fn analyze(schema: &Schema, src: &str) -> Result<AnalysisReport, OqlError> {
    let (expr, spans) = monoid_oql::compile_analyzed(schema, src)?;
    Ok(AnalysisReport::with_spans(&expr, &spans))
}

/// `EXPLAIN ANALYZE` for OQL source: run the full lifecycle — lex/parse →
/// translate → normalize → optimize → plan → execute — against `db`,
/// timing every phase and counting rows per plan operator. Returns the
/// query's value together with a [`monoid_algebra::QueryProfile`] whose
/// plan tree shows the optimizer's estimated cardinalities next to the
/// observed ones (`profile.render()` for humans, `profile.to_json()` for
/// machines).
///
/// This is the only layer that sees both the OQL front end and the
/// algebra back end, so it is where the two halves of the trace meet.
pub fn explain_analyze(src: &str, db: &mut Database) -> Result<Analysis, AnalyzeError> {
    use monoid_calculus::recorder;
    let m = oql_metrics();
    m.queries.inc();
    let scope = if recorder::global().enabled() && !recorder::active() {
        recorder::begin(src)
    } else {
        None
    };
    let started = std::time::Instant::now();
    let result = explain_analyze_inner(src, db);
    m.query_nanos.observe_nanos(started.elapsed().as_nanos());
    if result.is_err() {
        m.errors.inc();
    }
    if let Ok(analysis) = &result {
        // The profile's trace already includes the execute phase, so the
        // record gets the full lifecycle in one note.
        recorder::note_trace(&analysis.profile.trace);
        recorder::note_result(&analysis.value);
        if let Some(fallback) = &analysis.profile.parallel_fallback {
            recorder::note_parallel(0, Some(fallback));
        }
    }
    if let Some(scope) = scope {
        let error = result.as_ref().err().map(ToString::to_string);
        if let Some(trigger) = scope.finish(error) {
            // The profile is already in hand — the slow capture is free.
            recorder::global().capture_slow(monoid_calculus::recorder::SlowQueryCapture {
                seq: trigger.seq,
                fingerprint: trigger.fingerprint,
                source: src.to_string(),
                total_nanos: trigger.total_nanos,
                threshold_nanos: trigger.threshold_nanos,
                plan: None,
                profile: result.as_ref().ok().map(|a| a.profile.to_json()),
            });
        }
    }
    result
}

fn explain_analyze_inner(src: &str, db: &mut Database) -> Result<Analysis, AnalyzeError> {
    let mut trace = QueryTrace::new();
    trace.source = Some(src.to_string());
    let program = trace.time(Phase::Parse, || monoid_oql::parse_program(src))?;
    let expr = trace.time(Phase::Translate, || {
        monoid_oql::Translator::new(db.schema()).translate_program(&program)
    })?;
    Ok(monoid_algebra::analyze_with_trace(&expr, db, trace)?)
}

/// The umbrella OQL path's series in the process-wide registry: query
/// and error counters plus an end-to-end (parse → execute) latency
/// histogram. Per-phase histograms (`query_phase_nanos{phase=…}`) are
/// recorded by `QueryTrace` itself.
struct OqlMetrics {
    queries: std::sync::Arc<monoid_calculus::metrics::Counter>,
    errors: std::sync::Arc<monoid_calculus::metrics::Counter>,
    query_nanos: std::sync::Arc<monoid_calculus::metrics::Histogram>,
}

fn oql_metrics() -> &'static OqlMetrics {
    static METRICS: std::sync::OnceLock<OqlMetrics> = std::sync::OnceLock::new();
    METRICS.get_or_init(|| {
        let r = monoid_calculus::metrics::global();
        OqlMetrics {
            queries: r.counter("oql_queries_total"),
            errors: r.counter("oql_query_errors_total"),
            query_nanos: r.histogram("oql_query_nanos"),
        }
    })
}
