//! # monoid-db — umbrella crate
//!
//! Re-exports the whole system built around the monoid comprehension
//! calculus of Fegaras & Maier (SIGMOD 1995):
//!
//! * [`calculus`] — the calculus itself: monoids, comprehensions, type
//!   inference, normalization, evaluation, identity & updates.
//! * [`store`] — the object database substrate (schemas, extents, the
//!   paper's travel-agency database, synthetic data generation).
//! * [`oql`] — the ODMG-93 OQL front end (lexer, parser, translation into
//!   the calculus).
//! * [`algebra`] — the logical/physical algebra back end (canonical
//!   comprehension → pipelined iterator plans).
//! * [`vector`] — vectors and arrays as monoids (§4.1 extension library).
//!
//! See `examples/quickstart.rs` for an end-to-end tour.

pub use monoid_algebra as algebra;
pub use monoid_calculus as calculus;
pub use monoid_oql as oql;
pub use monoid_store as store;
pub use monoid_vector as vector;

pub use monoid_calculus::prelude;
