//! `oqld` — the wire server over a generated travel-agency database.
//!
//! ```text
//! oqld [--addr HOST:PORT] [--scale tiny|small|hotels=N] [--seed N]
//! ```
//!
//! Binds (default `127.0.0.1:0`, an ephemeral port), prints exactly one
//! `listening on <addr>` line to stdout (test harnesses parse the port
//! from it), then serves until killed. Protocol spec: `docs/serving.md`.

use monoid_db::server::Server;
use monoid_store::travel::{self, TravelScale};
use std::io::Write;

fn main() {
    let mut addr = String::from("127.0.0.1:0");
    let mut scale = TravelScale::small();
    let mut seed = 42u64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = expect_value(&arg, args.next()),
            "--scale" => {
                let v = expect_value(&arg, args.next());
                scale = parse_scale(&v).unwrap_or_else(|| {
                    die(&format!("bad --scale {v:?}: want tiny|small|hotels=N"))
                });
            }
            "--seed" => {
                let v = expect_value(&arg, args.next());
                seed = v
                    .parse()
                    .unwrap_or_else(|_| die(&format!("bad --seed {v:?}: want an integer")));
            }
            "--help" | "-h" => {
                println!("usage: oqld [--addr HOST:PORT] [--scale tiny|small|hotels=N] [--seed N]");
                return;
            }
            other => die(&format!("unknown argument {other:?} (try --help)")),
        }
    }

    let db = travel::generate(scale, seed);
    let server = Server::bind(&addr, db)
        .unwrap_or_else(|e| die(&format!("failed to bind {addr}: {e}")));
    println!("listening on {}", server.addr());
    // The harness reads this line to learn the port; make sure it's out
    // before the accept loop blocks.
    std::io::stdout().flush().ok();
    if let Err(e) = server.run() {
        die(&format!("server error: {e}"));
    }
}

fn parse_scale(v: &str) -> Option<TravelScale> {
    match v {
        "tiny" => Some(TravelScale::tiny()),
        "small" => Some(TravelScale::small()),
        _ => {
            let n = v.strip_prefix("hotels=")?.parse().ok()?;
            Some(TravelScale::with_hotels(n))
        }
    }
}

fn expect_value(flag: &str, v: Option<String>) -> String {
    v.unwrap_or_else(|| die(&format!("{flag} needs a value")))
}

fn die(msg: &str) -> ! {
    eprintln!("oqld: {msg}");
    std::process::exit(1)
}
