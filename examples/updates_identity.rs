//! §4.2/§4.3 in action: object identity, updates, and an update program
//! run against the database — plus a binary snapshot round-trip.
//!
//! ```text
//! cargo run --example updates_identity
//! ```

use monoid_db::calculus::eval::eval_closed;
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::pretty::pretty;
use monoid_db::oql::compile;
use monoid_db::store::codec;
use monoid_db::store::travel::{self, TravelScale};

fn show(label: &str, e: &Expr) {
    println!("{label}:");
    println!("  {}", pretty(e));
    println!("  → {}\n", eval_closed(e).expect("evaluates"));
}

fn main() {
    println!("— the paper's §4.2 examples —\n");

    show(
        "distinct objects, equal states",
        &Expr::comp(
            Monoid::Some,
            Expr::var("x").deref().eq(Expr::var("y").deref()),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(1))),
                Expr::gen("y", Expr::new_obj(Expr::int(1))),
            ],
        ),
    );
    show(
        "aliasing: y ≡ x, then y := 2, read through x",
        &Expr::comp(
            Monoid::Sum,
            Expr::var("x").deref(),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(1))),
                Expr::bind("y", Expr::var("x")),
                Expr::pred(Expr::var("y").assign(Expr::int(2))),
            ],
        ),
    );
    show(
        "running sums (state threads through the generator)",
        &Expr::comp(
            Monoid::List,
            Expr::var("x").deref(),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(0))),
                Expr::gen(
                    "e",
                    Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3), Expr::int(4)]),
                ),
                Expr::pred(Expr::var("x").assign(Expr::var("x").deref().add(Expr::var("e")))),
            ],
        ),
    );

    println!("— the §4.3 update program against a real database —\n");
    let mut db = travel::generate(TravelScale::tiny(), 99);
    let count_q = compile(
        db.schema(),
        "element(select c.hotel# from c in Cities where c.name = 'Portland')",
    )
    .expect("compiles");
    println!("Portland hotel# before: {}", db.query(&count_q).expect("runs"));

    // all{ c := ⟨…, hotels = c.hotels ++ [h], hotel# = c.hotel# + 1⟩
    //    | c ← Cities, c.name = "Portland", h ← new(⟨…⟩) }
    let update = monoid_db::calculus::expr::Expr::comp(
        Monoid::All,
        Expr::var("c").assign(Expr::record(vec![
            ("name", Expr::var("c").proj("name")),
            (
                "hotels",
                Expr::merge(
                    Monoid::List,
                    Expr::var("c").proj("hotels"),
                    Expr::CollLit(Monoid::List, vec![Expr::var("h")]),
                ),
            ),
            ("hotel#", Expr::var("c").proj("hotel#").add(Expr::int(1))),
        ])),
        vec![
            Expr::gen("c", Expr::var("Cities")),
            Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
            Expr::gen(
                "h",
                Expr::new_obj(Expr::record(vec![
                    ("name", Expr::str("Hotel Monoid")),
                    ("address", Expr::str("1 Comprehension Way")),
                    ("facilities", Expr::set_of(vec![Expr::str("pool")])),
                    ("employees", Expr::list_of(vec![])),
                    ("rooms", Expr::list_of(vec![])),
                ])),
            ),
        ],
    );
    println!("update program:\n  {}", pretty(&update));
    db.query(&update).expect("updates");
    println!("\nPortland hotel# after:  {}", db.query(&count_q).expect("runs"));

    let names = compile(
        db.schema(),
        "select h.name from c in Cities, h in c.hotels where c.name = 'Portland'",
    )
    .expect("compiles");
    println!("Portland hotels now:    {}", db.query(&names).expect("runs"));

    // Snapshot the mutated database and prove the copy answers identically.
    let bytes = codec::encode_database(&db).expect("encodes");
    let mut restored = codec::decode_database(&bytes).expect("decodes");
    assert_eq!(db.query(&names).unwrap(), restored.query(&names).unwrap());
    println!(
        "\nsnapshot: {} bytes; restored database answers identically ✓",
        bytes.len()
    );
}
