//! An interactive OQL shell over the travel database.
//!
//! ```text
//! cargo run --example oql_shell
//! ```
//!
//! Enter OQL queries terminated by `;`. Meta-commands:
//!
//! | command | effect |
//! |---------|--------|
//! | `:help` | this text |
//! | `:schema` | print classes and extents |
//! | `:calculus <query>;` | show the monoid-calculus translation |
//! | `:normalize <query>;` | show the Table-3 derivation |
//! | `:explain <query>;` | show the algebra plan |
//! | `:scale <hotels>` | regenerate the database at a new scale |
//! | `:quit` | exit |

use monoid_db::algebra;
use monoid_db::calculus::normalize::{normalize, normalize_traced};
use monoid_db::calculus::pretty::pretty;
use monoid_db::oql::compile;
use monoid_db::store::travel::{self, TravelScale};
use monoid_db::store::Database;
use std::io::{self, BufRead, Write};

fn main() {
    let mut db = travel::generate(TravelScale::small(), 42);
    println!(
        "monoid-db OQL shell — {} objects loaded; :help for commands",
        db.object_count()
    );
    let stdin = io::stdin();
    let mut buffer = String::new();
    prompt(&buffer);
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim();
        if buffer.is_empty() && trimmed.starts_with(':') && !trimmed.contains(';') {
            if !meta_command(trimmed, &mut db) {
                break;
            }
            prompt(&buffer);
            continue;
        }
        buffer.push_str(&line);
        buffer.push('\n');
        if line.contains(';') {
            let input = std::mem::take(&mut buffer);
            dispatch(input.trim(), &mut db);
        }
        prompt(&buffer);
    }
}

fn prompt(buffer: &str) {
    if buffer.is_empty() {
        print!("oql> ");
    } else {
        print!("...> ");
    }
    let _ = io::stdout().flush();
}

/// Handle `:command query;` and plain queries.
fn dispatch(input: &str, db: &mut Database) {
    let input = input.trim().trim_end_matches(';').trim();
    if input.is_empty() {
        return;
    }
    if let Some(rest) = input.strip_prefix(":calculus") {
        match compile(db.schema(), rest.trim()) {
            Ok(q) => println!("{}", pretty(&q)),
            Err(e) => println!("error: {e}"),
        }
        return;
    }
    if let Some(rest) = input.strip_prefix(":normalize") {
        match compile(db.schema(), rest.trim()) {
            Ok(q) => {
                println!("calculus:  {}", pretty(&q));
                let (n, trace, _) = normalize_traced(&q);
                for step in &trace {
                    println!("⇒ [{}] {}", step.rule, step.after);
                }
                println!("canonical: {}", pretty(&n));
            }
            Err(e) => println!("error: {e}"),
        }
        return;
    }
    if let Some(rest) = input.strip_prefix(":calc") {
        // A raw monoid-calculus term (paper notation or ASCII), evaluated
        // against the database roots.
        match monoid_db::calculus::parse::parse_expr(rest.trim()) {
            Ok(e) => {
                println!("parsed:    {}", pretty(&e));
                let n = normalize(&e);
                if n != e {
                    println!("canonical: {}", pretty(&n));
                }
                match db.query(&n) {
                    Ok(v) => println!("{v}"),
                    Err(err) => println!("runtime error: {err}"),
                }
            }
            Err(err) => println!("error: {err}"),
        }
        return;
    }
    if let Some(rest) = input.strip_prefix(":explain") {
        match compile(db.schema(), rest.trim()) {
            Ok(q) => match algebra::plan_comprehension(&normalize(&q)) {
                Ok(plan) => print!("{}", algebra::explain(&plan)),
                Err(e) => println!("not plannable: {e}"),
            },
            Err(e) => println!("error: {e}"),
        }
        return;
    }
    // A plain query: compile, normalize, run through the best path.
    match compile(db.schema(), input) {
        Ok(q) => {
            let n = normalize(&q);
            let result = match algebra::plan_comprehension(&n) {
                Ok(plan) => algebra::execute(&plan, db),
                Err(_) => db.query(&n),
            };
            match result {
                Ok(v) => println!("{v}"),
                Err(e) => println!("runtime error: {e}"),
            }
        }
        Err(e) => println!("error: {e}"),
    }
}

/// Handle bare `:commands` (no query argument). Returns false to exit.
fn meta_command(cmd: &str, db: &mut Database) -> bool {
    let mut parts = cmd.split_whitespace();
    match parts.next().unwrap_or("") {
        ":quit" | ":q" | ":exit" => return false,
        ":help" | ":h" => {
            println!(
                "queries end with `;`.\n\
                 :schema               print classes and extents\n\
                 :calculus  <query>;   show the calculus translation\n\
                 :normalize <query>;   show the Table-3 derivation\n\
                 :explain   <query>;   show the algebra plan\n\
                 :calc      <term>;    evaluate a raw calculus term (paper notation)\n\
                 :scale <hotels>       regenerate the database\n\
                 :quit                 exit"
            );
        }
        ":schema" => {
            for class in db.schema().classes() {
                let extent = class
                    .extent
                    .map(|e| format!(" (extent {e})"))
                    .unwrap_or_default();
                println!("class {}{extent}", class.name);
                println!("  {}", class.state);
            }
        }
        ":scale" => match parts.next().and_then(|n| n.parse::<usize>().ok()) {
            Some(hotels) => {
                *db = travel::generate(TravelScale::with_hotels(hotels), 42);
                println!("regenerated: {} objects", db.object_count());
            }
            None => println!("usage: :scale <hotels>"),
        },
        other => println!("unknown command `{other}` (:help)"),
    }
    true
}
