//! §4.1 in action: vectors and arrays as monoids — reverse, rotate,
//! histogram, matrices, and the Fourier transform as a query.
//!
//! ```text
//! cargo run --example vectors_fft
//! ```

use monoid_db::calculus::eval::eval_closed;
use monoid_db::calculus::expr::Expr;
use monoid_db::calculus::monoid::Monoid;
use monoid_db::calculus::pretty::pretty;
use monoid_db::vector::{self, matrix, ops};

fn show(label: &str, e: &Expr) {
    println!("{label}:");
    println!("  {}", pretty(e));
    println!("  = {}\n", eval_closed(e).expect("evaluates"));
}

fn main() {
    // The paper's reverse: vec[n]{ a [n−i−1] | a[i] ← x }.
    show(
        "reverse (paper §4.1)",
        &vector::reverse_expr(ops::int_vec(&[1, 2, 3, 4, 5]), 5),
    );

    // Rotation and permutation.
    show("rotate left by 2", &vector::rotate_expr(ops::int_vec(&[1, 2, 3, 4, 5]), 2, 5));
    show(
        "gather by index vector",
        &vector::permute_expr(ops::int_vec(&[10, 20, 30]), ops::int_vec(&[2, 2, 0]), 3),
    );

    // Histogram: index collisions merge with the element monoid (sum).
    show(
        "histogram of squares mod 40, 4 buckets of width 10",
        &vector::histogram_expr(
            Expr::CollLit(Monoid::List, (0..20).map(|i| Expr::int(i * i % 40)).collect()),
            4,
            10,
        ),
    );

    // Pointwise monoid merges: sum[n] and max[n].
    show(
        "pointwise add (the sum[n] merge itself)",
        &ops::vector_add_expr(ops::int_vec(&[1, 2, 3]), ops::int_vec(&[10, 20, 30])),
    );

    // Matrices.
    let a = vec![vec![1, 2], vec![3, 4]];
    let b = vec![vec![0, 1], vec![1, 0]];
    show(
        "matrix × swap-matrix",
        &matrix::matmul_expr(matrix::int_matrix(&a), matrix::int_matrix(&b), 2, 2),
    );
    show("transpose", &matrix::transpose_expr(matrix::int_matrix(&a), 2, 2));

    // The FFT as a query (Buneman [7]).
    let x = [1.0, 0.5, -0.25, 0.75, 2.0, -1.0, 0.0, 0.25];
    let via_query = vector::dft_via_query(&x).expect("dft query");
    let xs: Vec<vector::Complex> = x.iter().map(|&r| (r, 0.0)).collect();
    let via_fft = vector::fft(&xs);
    println!("DFT as a monoid comprehension vs native FFT, n = {}:", x.len());
    println!("  input:      {x:?}");
    println!("  |X[k]| via query: {:?}",
        via_query.iter().map(|(r, i)| ((r * r + i * i).sqrt() * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>());
    println!("  |X[k]| via FFT:   {:?}",
        via_fft.iter().map(|(r, i)| ((r * r + i * i).sqrt() * 1000.0).round() / 1000.0)
            .collect::<Vec<_>>());
    println!(
        "  max |Δ| = {:.3e}  — the calculus computed the Fourier transform.",
        vector::fft::max_error(&via_query, &via_fft)
    );
}
