//! The travel agency, end to end: a workload of OQL queries exercising the
//! §3 coverage features against a generated database — aggregates,
//! quantifiers, membership, group-by with `partition`, order-by, set
//! operators, `like`, and nested subqueries.
//!
//! ```text
//! cargo run --example travel_agency
//! ```

use monoid_db::calculus::normalize::normalize;
use monoid_db::calculus::pretty::pretty;
use monoid_db::oql::compile;
use monoid_db::store::travel::{self, TravelScale};

fn main() {
    let mut db = travel::generate(TravelScale::small(), 2026);

    let queries: Vec<(&str, &str)> = vec![
        (
            "Cities with more than three hotels",
            "select c.name from c in Cities where c.hotel# > 3",
        ),
        (
            "Distinct bed counts on offer",
            "select distinct r.bed# from h in Hotels, r in h.rooms",
        ),
        (
            "How many employees does the agency's world contain?",
            "count(Employees)",
        ),
        (
            "Average salary",
            "avg(select e.salary from e in Employees)",
        ),
        (
            "Hotels with a pool *and* a gym",
            "select h.name from h in Hotels \
             where 'pool' in h.facilities and 'gym' in h.facilities",
        ),
        (
            "Hotels where every room costs under 300",
            "select h.name from h in Hotels \
             where for all r in h.rooms: r.price < 300",
        ),
        (
            "Cities that have a hotel with a 4-bed room",
            "select distinct c.name from c in Cities \
             where exists h in c.hotels: (exists r in h.rooms: r.bed# = 4)",
        ),
        (
            "Room counts per bed size (group by with partition)",
            "select struct(beds: b, rooms: count(partition)) \
             from h in Hotels, r in h.rooms group by b: r.bed# \
             order by b",
        ),
        (
            "Three cheapest room prices anywhere",
            "select r.price from h in Hotels, r in h.rooms order by r.price",
        ),
        (
            "Clients who prefer Portland",
            "select cl.name from cl in Clients where 'Portland' in cl.preferred",
        ),
        (
            "Names of cities, sorted, that start with a vowel-ish 'A'",
            "select c.name from c in Cities where c.name like 'A%' order by c.name",
        ),
        (
            "Facilities available somewhere in Portland (flatten)",
            "flatten(select h.facilities \
                     from c in Cities, h in c.hotels where c.name = 'Portland')",
        ),
    ];

    for (title, src) in queries {
        println!("— {title}");
        println!("  OQL:      {src}");
        let q = compile(db.schema(), src).expect("compiles");
        println!("  calculus: {}", pretty(&q));
        let n = normalize(&q);
        if n != q {
            println!("  normal:   {}", pretty(&n));
        }
        let v = db.query(&n).expect("runs");
        let rendered = v.to_string();
        if rendered.len() > 120 {
            println!("  result:   {}…  ({} elements)", &rendered[..120], v.len().unwrap_or(0));
        } else {
            println!("  result:   {rendered}");
        }
        println!();
    }
}
