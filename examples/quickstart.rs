//! Quickstart: the whole system in one page.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! Pipeline: OQL text → monoid calculus → type check → normalization →
//! algebra plan → pipelined execution, against the paper's travel-agency
//! database.

use monoid_db::algebra;
use monoid_db::calculus::normalize::normalize_traced;
use monoid_db::calculus::pretty::pretty;
use monoid_db::oql::compile_typed;
use monoid_db::store::travel::{self, TravelScale};

fn main() {
    // 1. A database: the paper's travel-agency schema, generated
    //    deterministically. City 0 is always "Portland".
    let mut db = travel::generate(TravelScale::small(), 42);
    println!(
        "database: {} objects, {} cities, {} hotels, {} clients\n",
        db.object_count(),
        db.extent_len("Cities"),
        db.extent_len("Hotels"),
        db.extent_len("Clients"),
    );

    // 2. The paper's §3.1 query, in its nested OQL form.
    let oql = "select h.name \
               from h in (select h2 from c in Cities, h2 in c.hotels \
                          where c.name = 'Portland'), \
                    r in h.rooms \
               where r.bed# = 3";
    println!("OQL:\n  {oql}\n");

    // 3. Translate to the monoid comprehension calculus and type-check.
    let (query, ty) = compile_typed(db.schema(), oql).expect("translates");
    println!("calculus ({ty}):\n  {}\n", pretty(&query));

    // 4. Normalize to canonical form (the paper's Table 3 rules).
    let (canonical, trace, stats) = normalize_traced(&query);
    println!("derivation ({} steps):", stats.steps);
    for step in &trace {
        println!("  ⇒ [{}] {}", step.rule, step.after);
    }
    println!();

    // 5. Compile the canonical form to an algebra plan…
    let plan = algebra::plan_comprehension(&canonical).expect("plans");
    println!("plan:\n{}", algebra::explain(&plan));

    // 6. …and execute it, pipelined.
    let result = algebra::execute(&plan, &mut db).expect("executes");
    println!("result: {result}");

    // The direct evaluator agrees, of course.
    let direct = db.query(&query).expect("evaluates");
    assert_eq!(result, direct);
    println!("\n(direct evaluation of the un-normalized query agrees ✓)");
}
