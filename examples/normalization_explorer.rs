//! Normalization explorer: feed an OQL query on the command line (or use
//! the built-in tour) and watch the Table-3 rules rewrite it to canonical
//! form, then see the plan it pipelines into.
//!
//! ```text
//! cargo run --example normalization_explorer
//! cargo run --example normalization_explorer -- \
//!     "select h.name from h in (select h2 from c in Cities, h2 in c.hotels) where exists r in h.rooms: r.bed# = 3"
//! ```

use monoid_db::algebra;
use monoid_db::calculus::normalize::normalize_traced;
use monoid_db::calculus::pretty::pretty;
use monoid_db::oql::compile;
use monoid_db::store::travel;

fn explore(src: &str) {
    let schema = travel::schema();
    println!("OQL:\n  {src}\n");
    let q = match compile(&schema, src) {
        Ok(q) => q,
        Err(e) => {
            println!("  error: {e}\n");
            return;
        }
    };
    println!("calculus:\n  {}\n", pretty(&q));
    let (n, trace, stats) = normalize_traced(&q);
    if trace.is_empty() {
        println!("already canonical.\n");
    } else {
        println!("derivation:");
        for step in &trace {
            println!("  ⇒ [{}] {}", step.rule, step.after);
        }
        println!(
            "\ncanonical ({} steps, {} → {} nodes):\n  {}\n",
            stats.steps,
            stats.size_before,
            stats.size_after,
            pretty(&n)
        );
    }
    match algebra::plan_comprehension(&n) {
        Ok(plan) => println!("plan:\n{}", algebra::explain(&plan)),
        Err(e) => println!("(not plannable: {e})"),
    }
    println!("{}", "─".repeat(72));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if !args.is_empty() {
        explore(&args.join(" "));
        return;
    }
    // The built-in tour: one query per interesting rule.
    for src in [
        // N5 + N7: subquery in from.
        "select h.name from h in (select h2 from c in Cities, h2 in c.hotels \
         where c.name = 'Portland'), r in h.rooms where r.bed# = 3",
        // N6: correlated exists inside a distinct (set) query.
        "select distinct cl.name from cl in Clients \
         where exists c in Cities: c.name in cl.preferred",
        // N9/N10: predicate surgery.
        "select c.name from c in Cities where true and c.hotel# > 1 and c.hotel# < 100",
        // group by: normalization unnests the key-set generator.
        "select struct(beds: b, n: count(partition)) \
         from h in Hotels, r in h.rooms group by b: r.bed#",
    ] {
        explore(src);
    }
}
