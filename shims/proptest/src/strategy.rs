//! The [`Strategy`] trait and its combinators.

use crate::test_runner::{Reason, TestRng, TestRunner};
use std::fmt::Debug;
use std::rc::Rc;

/// A generator of values. Unlike real proptest there is no shrinking:
/// the "tree" a strategy produces is just the generated value.
pub trait Strategy {
    type Value: Clone + Debug + 'static;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Compatibility with proptest's explicit-runner API.
    fn new_tree(&self, runner: &mut TestRunner) -> Result<SimpleValueTree<Self::Value>, Reason>
    where
        Self: Sized,
    {
        Ok(SimpleValueTree { value: self.generate(runner.rng()) })
    }

    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, f }
    }

    fn prop_flat_map<R, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        R: Strategy,
        F: Fn(Self::Value) -> R,
    {
        FlatMap { source: self, f }
    }

    /// Keep only values for which `f` returns `Some`, retrying the
    /// source strategy otherwise.
    fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        U: Clone + Debug + 'static,
        F: Fn(Self::Value) -> Option<U>,
    {
        FilterMap { source: self, f, whence }
    }

    /// Nested values up to `depth` levels, built by applying `recurse`
    /// to strategies for the shallower levels. `desired_size` and
    /// `expected_branch_size` are accepted for API compatibility but
    /// unused (sizes are bounded by the collection strategies `recurse`
    /// itself builds).
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let base = self.boxed();
        let mut layered = base.clone();
        for _ in 0..depth {
            layered = Union::new(vec![
                (1, base.clone()),
                (2, recurse(layered).boxed()),
            ])
            .boxed();
        }
        layered
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy { inner: Rc::new(self) }
    }
}

/// The value "tree" [`Strategy::new_tree`] returns; `current` yields the
/// generated value (there is nothing to simplify).
#[derive(Debug, Clone)]
pub struct SimpleValueTree<T> {
    value: T,
}

impl<T: Clone> SimpleValueTree<T> {
    pub fn current(&self) -> T {
        self.value.clone()
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T> {
    inner: Rc<dyn Strategy<Value = T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy { inner: Rc::clone(&self.inner) }
    }
}

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Clone + Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.generate(rng)
    }
}

/// A strategy producing exactly one value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: Clone + Debug + 'static,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.source.generate(rng))
    }
}

#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    source: S,
    f: F,
}

impl<S, R, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    R: Strategy,
    F: Fn(S::Value) -> R,
{
    type Value = R::Value;

    fn generate(&self, rng: &mut TestRng) -> R::Value {
        (self.f)(self.source.generate(rng)).generate(rng)
    }
}

#[derive(Debug, Clone)]
pub struct FilterMap<S, F> {
    source: S,
    f: F,
    whence: &'static str,
}

impl<S, U, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    U: Clone + Debug + 'static,
    F: Fn(S::Value) -> Option<U>,
{
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        for _ in 0..1000 {
            if let Some(v) = (self.f)(self.source.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map rejected 1000 consecutive inputs: {}", self.whence);
    }
}

/// Weighted choice between boxed alternatives — what `prop_oneof!`
/// expands to.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T: Clone + Debug + 'static> Union<T> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof requires at least one arm");
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>().max(1);
        Union { arms, total }
    }
}

impl<T: Clone + Debug + 'static> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, arm) in &self.arms {
            if pick < u64::from(*w) {
                return arm.generate(rng);
            }
            pick -= u64::from(*w);
        }
        self.arms[self.arms.len() - 1].1.generate(rng)
    }
}

// Integer and float range strategies.
macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as i128).rem_euclid(span)) as $t
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// String-literal strategies: a subset of regex (character classes with
// counted repetition).
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::sample_regex(self, rng)
    }
}

// Tuple strategies up to arity 10.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
