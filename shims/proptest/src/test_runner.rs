//! Deterministic case runner, config, and the user-facing macros.

use crate::strategy::Strategy;

/// Why a strategy could not produce a tree (kept for API compatibility;
/// this shim's strategies never fail to generate).
#[derive(Debug, Clone)]
pub struct Reason(pub String);

impl std::fmt::Display for Reason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// A test-case failure: aborts the case and fails the test (no
/// shrinking in this shim).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    Fail(String),
}

impl TestCaseError {
    pub fn fail<M: Into<String>>(message: M) -> TestCaseError {
        TestCaseError::Fail(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
        }
    }
}

/// Runner configuration; only `cases` is meaningful here.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// SplitMix64 — deterministic so failures reproduce run-to-run without
/// a persistence file.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn new(seed: u64) -> TestRng {
        TestRng { state: seed ^ 0x9e37_79b9_7f4a_7c15 }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[lo, hi)`; `hi` must exceed `lo`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty usize range");
        lo + (self.next_u64() as usize) % (hi - lo)
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Drives a strategy through N cases.
pub struct TestRunner {
    rng: TestRng,
    config: ProptestConfig,
}

impl TestRunner {
    pub fn new(config: ProptestConfig) -> TestRunner {
        TestRunner { rng: TestRng::new(0x5eed_cafe), config }
    }

    /// The fixed-seed runner used for derived deterministic values.
    pub fn deterministic() -> TestRunner {
        TestRunner::new(ProptestConfig::default())
    }

    pub fn rng(&mut self) -> &mut TestRng {
        &mut self.rng
    }

    /// Run `test` over `config.cases` generated inputs. Returns a
    /// human-readable failure description on the first failing case.
    pub fn run_named<S: Strategy>(
        &mut self,
        name: &str,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), String> {
        for case in 0..self.config.cases {
            let input = strategy.generate(&mut self.rng);
            let shown = format!("{input:?}");
            if let Err(TestCaseError::Fail(msg)) = test(input) {
                return Err(format!(
                    "proptest `{name}` failed at case {case}/{}:\n  {msg}\n  input: {shown}",
                    self.config.cases
                ));
            }
        }
        Ok(())
    }

    /// proptest-compatible entry point.
    pub fn run<S: Strategy>(
        &mut self,
        strategy: &S,
        test: impl Fn(S::Value) -> Result<(), TestCaseError>,
    ) -> Result<(), String> {
        self.run_named("anonymous", strategy, test)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { [$crate::test_runner::ProptestConfig::default()] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ([$cfg:expr]) => {};
    ([$cfg:expr]
     $(#[$meta:meta])*
     fn $name:ident($($params:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            $crate::__proptest_case! { @munch [$cfg] [$name] [] [] [$($params)*] $body }
        }
        $crate::__proptest_items! { [$cfg] $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_case {
    (@munch [$cfg:expr] [$name:ident] [$($pats:tt)*] [$($strats:tt)*]
     [mut $p:ident in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case! { @munch [$cfg] [$name]
            [$($pats)* (mut $p)] [$($strats)* ($strat)] [$($rest)*] $body }
    };
    (@munch [$cfg:expr] [$name:ident] [$($pats:tt)*] [$($strats:tt)*]
     [mut $p:ident in $strat:expr] $body:block) => {
        $crate::__proptest_case! { @munch [$cfg] [$name]
            [$($pats)* (mut $p)] [$($strats)* ($strat)] [] $body }
    };
    (@munch [$cfg:expr] [$name:ident] [$($pats:tt)*] [$($strats:tt)*]
     [$p:ident in $strat:expr, $($rest:tt)*] $body:block) => {
        $crate::__proptest_case! { @munch [$cfg] [$name]
            [$($pats)* ($p)] [$($strats)* ($strat)] [$($rest)*] $body }
    };
    (@munch [$cfg:expr] [$name:ident] [$($pats:tt)*] [$($strats:tt)*]
     [$p:ident in $strat:expr] $body:block) => {
        $crate::__proptest_case! { @munch [$cfg] [$name]
            [$($pats)* ($p)] [$($strats)* ($strat)] [] $body }
    };
    (@munch [$cfg:expr] [$name:ident]
     [$(($($pat:tt)*))*] [$(($strat:expr))*] [] $body:block) => {{
        let mut runner = $crate::test_runner::TestRunner::new($cfg);
        let result = runner.run_named(
            stringify!($name),
            &($($strat,)*),
            |($($($pat)*,)*)| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                $body
                ::std::result::Result::Ok(())
            },
        );
        if let ::std::result::Result::Err(message) = result {
            panic!("{}", message);
        }
    }};
}

#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{:?}` != `{:?}`: {}", l, r, format!($($fmt)*)
        );
    }};
}
