//! String generation from a small regex subset: sequences of character
//! classes (`[a-z_%]`, with `\n`/`\t`/`\\` escapes and ranges) or literal
//! characters, each optionally followed by a counted repetition
//! (`{m,n}` or `{m}`). This covers every string strategy in the
//! workspace's property tests.

use crate::test_runner::TestRng;

struct Group {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

/// Draw one string matching `pattern`.
pub fn sample_regex(pattern: &str, rng: &mut TestRng) -> String {
    let groups = parse(pattern);
    let mut out = String::new();
    for g in &groups {
        let n = rng.usize_in(g.min, g.max + 1);
        for _ in 0..n {
            out.push(g.choices[rng.usize_in(0, g.choices.len())]);
        }
    }
    out
}

fn unescape(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn parse(pattern: &str) -> Vec<Group> {
    let mut chars = pattern.chars().peekable();
    let mut groups = Vec::new();
    while let Some(c) = chars.next() {
        let choices = match c {
            '[' => {
                // Collect class members with escapes resolved, then
                // expand `a-z` ranges.
                let mut raw: Vec<char> = Vec::new();
                while let Some(m) = chars.next() {
                    match m {
                        ']' => break,
                        '\\' => raw.push(unescape(chars.next().unwrap_or('\\'))),
                        other => raw.push(other),
                    }
                }
                expand_ranges(&raw)
            }
            '\\' => vec![unescape(chars.next().unwrap_or('\\'))],
            lit => vec![lit],
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                match spec.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().unwrap_or(0),
                        n.trim().parse().unwrap_or(0),
                    ),
                    None => {
                        let m = spec.trim().parse().unwrap_or(1);
                        (m, m)
                    }
                }
            }
            _ => (1, 1),
        };
        assert!(!choices.is_empty(), "empty character class in `{pattern}`");
        assert!(min <= max, "bad repetition in `{pattern}`");
        groups.push(Group { choices, min, max });
    }
    groups
}

fn expand_ranges(raw: &[char]) -> Vec<char> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < raw.len() {
        if i + 2 < raw.len() && raw[i + 1] == '-' {
            let (lo, hi) = (raw[i], raw[i + 2]);
            let (lo, hi) = (lo as u32, hi as u32);
            assert!(lo <= hi, "inverted range in character class");
            for cp in lo..=hi {
                if let Some(c) = char::from_u32(cp) {
                    out.push(c);
                }
            }
            i += 3;
        } else {
            out.push(raw[i]);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::new(99)
    }

    #[test]
    fn class_with_counted_repetition() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-c]{0,3}", &mut r);
            assert!(s.len() <= 3);
            assert!(s.chars().all(|c| ('a'..='c').contains(&c)), "{s}");
        }
    }

    #[test]
    fn space_tilde_range_with_escapes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[ -~\\n\\t]{0,80}", &mut r);
            assert!(s.chars().count() <= 80);
            assert!(s
                .chars()
                .all(|c| (' '..='~').contains(&c) || c == '\n' || c == '\t'));
        }
    }

    #[test]
    fn concatenated_classes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-zA-Z_][a-zA-Z0-9_]{0,10}", &mut r);
            assert!(!s.is_empty() && s.len() <= 11);
            let first = s.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
        }
    }

    #[test]
    fn unicode_classes() {
        let mut r = rng();
        for _ in 0..200 {
            let s = sample_regex("[a-zé√ü東]{0,10}", &mut r);
            assert!(s.chars().count() <= 10);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || "é√ü東".contains(c)));
        }
    }

    #[test]
    fn literal_percent_class() {
        let mut r = rng();
        let mut saw_percent = false;
        for _ in 0..500 {
            let s = sample_regex("[ab%]{0,6}", &mut r);
            assert!(s.chars().all(|c| "ab%".contains(c)));
            saw_percent |= s.contains('%');
        }
        assert!(saw_percent);
    }
}
