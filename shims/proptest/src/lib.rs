//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendors the subset of proptest the workspace's property tests use:
//! the [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter_map` / `prop_recursive` / `boxed`, tuple and range
//! strategies, a tiny character-class regex generator for `&str`
//! strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::bool::ANY`, `any::<T>()`, and the `proptest!` / `prop_oneof!` /
//! `prop_assert*!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! * **No shrinking** — a failing case reports the generated input as-is.
//! * **Deterministic RNG** — every run uses the same fixed seed, so
//!   failures reproduce without a persistence file.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types with a canonical strategy.
    pub trait Arbitrary: Clone + std::fmt::Debug + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> u64 {
            rng.next_u64()
        }
    }

    impl Arbitrary for i64 {
        fn arbitrary(rng: &mut TestRng) -> i64 {
            rng.next_u64() as i64
        }
    }

    impl Arbitrary for u32 {
        fn arbitrary(rng: &mut TestRng) -> u32 {
            rng.next_u64() as u32
        }
    }

    impl Arbitrary for usize {
        fn arbitrary(rng: &mut TestRng) -> usize {
            rng.next_u64() as usize
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Arbitrary bit patterns, with NaN mapped to 0.0 so generated
            // values compare reflexively (we have no shrinking to recover
            // from NaN != NaN surprises).
            let x = f64::from_bits(rng.next_u64());
            if x.is_nan() {
                0.0
            } else {
                x
            }
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct AnyStrategy<A> {
        _marker: std::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> crate::strategy::Strategy for AnyStrategy<A> {
        type Value = A;

        fn generate(&self, rng: &mut TestRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// A strategy producing arbitrary values of `A`.
    pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
        AnyStrategy { _marker: std::marker::PhantomData }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.usize_in(self.size.start, self.size.end.max(self.size.start + 1));
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly select one of the given values.
    pub fn select<T: Clone + std::fmt::Debug + 'static>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    #[derive(Debug, Clone)]
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone + std::fmt::Debug + 'static> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.usize_in(0, self.options.len())].clone()
        }
    }
}

pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy over both booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: Any = Any;
}

pub mod string;

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// `prop::collection`, `prop::sample`, `prop::bool` namespacing.
    pub use crate as prop;
}
