//! A minimal, dependency-free stand-in for the `bytes` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendors the slice-of-API the store's binary codec uses: [`BytesMut`]
//! as an append-only builder (via [`BufMut`]), and [`Bytes`] as a
//! consuming read cursor (via [`Buf`]). Unlike the real crate there is
//! no refcounted zero-copy sharing — `slice`/`copy_to_bytes` copy — but
//! the observable behaviour for encode/decode round-trips is identical.

use std::ops::Deref;

/// Read side: a cursor over immutable bytes.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn get_u8(&mut self) -> u8;
    fn get_u32_le(&mut self) -> u32;
    fn get_u64_le(&mut self) -> u64;
    fn get_i64_le(&mut self) -> i64;
    fn get_f64_le(&mut self) -> f64;
    fn copy_to_bytes(&mut self, len: usize) -> Bytes;
}

/// Write side: an append-only byte sink.
pub trait BufMut {
    fn put_u8(&mut self, v: u8);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
    fn put_slice(&mut self, src: &[u8]);
}

/// Immutable bytes with a consuming read position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    pub fn new() -> Bytes {
        Bytes { data: Vec::new(), pos: 0 }
    }

    pub fn from_static(data: &'static [u8]) -> Bytes {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes { data: data.to_vec(), pos: 0 }
    }

    /// Unread bytes left in the cursor.
    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of `range` within the unread remainder.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        Bytes { data: self.data[self.pos..][range].to_vec(), pos: 0 }
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.data[self.pos..].to_vec()
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.len() >= n, "buffer underflow");
        let start = self.pos;
        self.pos += n;
        &self.data[start..start + n]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Bytes {
        Bytes { data, pos: 0 }
    }
}

macro_rules! get_le {
    ($self:ident, $t:ty) => {{
        let mut raw = [0u8; std::mem::size_of::<$t>()];
        raw.copy_from_slice($self.take(std::mem::size_of::<$t>()));
        <$t>::from_le_bytes(raw)
    }};
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    fn get_u32_le(&mut self) -> u32 {
        get_le!(self, u32)
    }

    fn get_u64_le(&mut self) -> u64 {
        get_le!(self, u64)
    }

    fn get_i64_le(&mut self) -> i64 {
        get_le!(self, i64)
    }

    fn get_f64_le(&mut self) -> f64 {
        get_le!(self, f64)
    }

    fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        Bytes { data: self.take(len).to_vec(), pos: 0 }
    }
}

/// A growable byte buffer; freeze it into [`Bytes`] to read it back.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data, pos: 0 }
    }
}

impl BufMut for BytesMut {
    fn put_u8(&mut self, v: u8) {
        self.data.push(v);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.data.extend_from_slice(&v.to_le_bytes());
    }

    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_widths() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xdead_beef);
        buf.put_i64_le(-42);
        buf.put_u64_le(u64::MAX);
        buf.put_f64_le(2.5);
        buf.put_slice(b"abc");
        let mut b = buf.freeze();
        assert_eq!(b.get_u8(), 7);
        assert_eq!(b.get_u32_le(), 0xdead_beef);
        assert_eq!(b.get_i64_le(), -42);
        assert_eq!(b.get_u64_le(), u64::MAX);
        assert_eq!(b.get_f64_le(), 2.5);
        assert_eq!(b.copy_to_bytes(3).as_ref(), b"abc");
        assert_eq!(b.remaining(), 0);
    }

    #[test]
    fn slice_is_relative_to_cursor() {
        let mut b = Bytes::copy_from_slice(&[1, 2, 3, 4]);
        b.get_u8();
        assert_eq!(b.slice(0..2).as_ref(), &[2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(b[0], 2);
    }
}
