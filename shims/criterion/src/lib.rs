//! A minimal, dependency-free stand-in for the `criterion` crate.
//!
//! The build environment has no network access to crates.io, so this
//! vendors the API surface the workspace benches use: `benchmark_group`,
//! `sample_size`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! and the `criterion_group!`/`criterion_main!` macros. Instead of
//! criterion's full statistical machinery it warms up once, runs a small
//! fixed number of samples, and prints the median wall-clock time —
//! enough to eyeball relative costs and to keep `cargo bench` compiling
//! and running.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifies one benchmark within a group: `name/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }
}

/// Passed to the closure of each benchmark; `iter` measures one sample.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up (also keeps the closure's side effects out of sample 0).
        std::hint::black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            std::hint::black_box(f());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample.max(1) as u32);
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.id, &mut |b: &mut Bencher| f(b, input));
        self
    }

    pub fn finish(&mut self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = if self.criterion.test_mode { 1 } else { self.sample_size };
        let mut bencher = Bencher { samples: Vec::new(), iters_per_sample: 1 };
        for _ in 0..samples {
            f(&mut bencher);
        }
        bencher.samples.sort();
        let median = bencher
            .samples
            .get(bencher.samples.len() / 2)
            .copied()
            .unwrap_or_default();
        println!("{}/{}: median {:?} ({} samples)", self.name, id, median, samples);
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // Under `cargo test` the harness passes `--test`; run each bench
        // once so the suite stays fast while still exercising the code.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Criterion {
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 10 }
    }
}

/// Re-export so `criterion::black_box` keeps working.
pub use std::hint::black_box;

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion { test_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        let mut calls = 0;
        group.bench_function("f", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("with", 3), &3, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
        assert!(calls >= 1);
    }
}
