//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the few pieces of `rand`'s API it actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt::random_range`] / [`RngExt::random_bool`] sampling methods.
//! The generator is xoshiro256++ seeded through SplitMix64 — fast,
//! deterministic, and more than adequate for synthetic data generation
//! (it makes no cryptographic claims, exactly like `StdRng`'s contract
//! of being "a reasonably good generator").

/// A source of random `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// A half-open or inclusive range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128) - (self.start as i128);
                (self.start as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                (lo as i128 + (rng.next_u64() as i128 % span)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// The sampling surface (`rand` 0.9+ naming: `random_*`).
pub trait RngExt: RngCore {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> RngExt for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0i64..1000), b.random_range(0i64..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(-5i64..6);
            assert!((-5..6).contains(&v));
            let w = rng.random_range(1i64..=4);
            assert!((1..=4).contains(&w));
            let u = rng.random_range(0usize..3);
            assert!(u < 3);
            let f = rng.random_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert!(!rng.random_bool(0.0));
            assert!(rng.random_bool(1.0));
        }
    }
}
