//! Property tests for the binary codec: arbitrary values round-trip
//! exactly, and corrupted/truncated inputs fail cleanly instead of
//! panicking or mis-decoding.

use bytes::BytesMut;
use monoid_calculus::value::{Oid, Value};
use monoid_store::codec::{decode_value, encode_value};
use proptest::prelude::*;

/// An arbitrary value (closures excluded — they have no serialized form).
fn value_strategy() -> BoxedStrategy<Value> {
    let scalar = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        any::<f64>().prop_map(Value::Float),
        "[a-z0-9 ]{0,12}".prop_map(|s| Value::str(&s)),
        (0u64..1000).prop_map(|o| Value::Obj(Oid(o))),
    ];
    scalar
        .prop_recursive(3, 48, 6, |inner| {
            prop_oneof![
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::list),
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::set_from),
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::bag_from),
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::tuple),
                prop::collection::vec(inner.clone(), 0..6).prop_map(Value::vector),
                prop::collection::vec(("[a-f]{1,4}", inner), 0..5).prop_map(|fields| {
                    Value::record(
                        fields
                            .into_iter()
                            .map(|(n, v)| (monoid_calculus::symbol::Symbol::new(&n), v))
                            .collect(),
                    )
                }),
            ]
        })
        .boxed()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn roundtrip_is_exact(v in value_strategy()) {
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf).unwrap();
        let mut bytes = buf.freeze();
        let out = decode_value(&mut bytes).unwrap();
        prop_assert_eq!(out, v);
        prop_assert_eq!(bytes.len(), 0, "no trailing bytes");
    }

    /// Truncating an encoding at any point yields an error, never a panic
    /// or a silent success (unless the truncation point is the full
    /// length).
    #[test]
    fn truncation_fails_cleanly(v in value_strategy(), cut_ratio in 0.0f64..1.0) {
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf).unwrap();
        let full = buf.freeze();
        let cut = ((full.len() as f64) * cut_ratio) as usize;
        if cut >= full.len() {
            return Ok(());
        }
        let mut truncated = full.slice(0..cut);
        // Either a clean decode error, or a successful decode of a prefix
        // value (possible when the cut lands on a value boundary inside a
        // sequence is *not* possible here because lengths are prefixed —
        // so any strict prefix must error).
        prop_assert!(decode_value(&mut truncated).is_err());
    }

    /// Flipping the tag byte to garbage fails cleanly.
    #[test]
    fn bad_tags_fail_cleanly(v in value_strategy()) {
        let mut buf = BytesMut::new();
        encode_value(&v, &mut buf).unwrap();
        let mut bytes = buf.freeze().to_vec();
        bytes[0] = 0xfe;
        let mut b = bytes::Bytes::from(bytes);
        prop_assert!(decode_value(&mut b).is_err());
    }
}
