//! Binary snapshots of values and databases.
//!
//! A compact, self-contained tagged binary format (no external format
//! crates): every [`Value`] shape except closures round-trips, as does a
//! whole [`Database`] (schema types, heap, roots). Used to persist
//! generated databases so benchmark runs can reload identical data, and as
//! a stress surface for property tests (`decode(encode(v)) == v`).
//!
//! Format: one tag byte per node, little-endian fixed-width integers,
//! `u32` length prefixes for sequences and strings.

use crate::database::Database;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use monoid_calculus::symbol::Symbol;
use monoid_calculus::types::{ClassDef, CollKind, Schema, Type};
use monoid_calculus::value::{Oid, Value};
use std::fmt;

/// Errors from decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Ran out of bytes mid-value.
    Truncated,
    /// An unknown tag byte.
    BadTag(u8),
    /// Invalid UTF-8 in a string.
    BadUtf8,
    /// Closures have no serialized form.
    Unsupported(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "snapshot truncated"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte 0x{t:02x}"),
            CodecError::BadUtf8 => write!(f, "invalid utf-8 in snapshot string"),
            CodecError::Unsupported(what) => write!(f, "cannot serialize {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

type Result<T> = std::result::Result<T, CodecError>;

mod tag {
    pub const NULL: u8 = 0;
    pub const BOOL_FALSE: u8 = 1;
    pub const BOOL_TRUE: u8 = 2;
    pub const INT: u8 = 3;
    pub const FLOAT: u8 = 4;
    pub const STR: u8 = 5;
    pub const RECORD: u8 = 6;
    pub const TUPLE: u8 = 7;
    pub const LIST: u8 = 8;
    pub const SET: u8 = 9;
    pub const BAG: u8 = 10;
    pub const VECTOR: u8 = 11;
    pub const OBJ: u8 = 12;
    // types
    pub const T_BOOL: u8 = 32;
    pub const T_INT: u8 = 33;
    pub const T_FLOAT: u8 = 34;
    pub const T_STR: u8 = 35;
    pub const T_NULL: u8 = 36;
    pub const T_VAR: u8 = 37;
    pub const T_RECORD: u8 = 38;
    pub const T_TUPLE: u8 = 39;
    pub const T_LIST: u8 = 40;
    pub const T_BAG: u8 = 41;
    pub const T_SET: u8 = 42;
    pub const T_VECTOR: u8 = 43;
    pub const T_OBJ: u8 = 44;
    pub const T_CLASS: u8 = 45;
    pub const T_FN: u8 = 46;
}

/// Magic bytes + version for database snapshots.
const MAGIC: &[u8; 4] = b"MCDB";
const VERSION: u8 = 1;

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn get_str(buf: &mut Bytes) -> Result<String> {
    let len = get_len(buf)?;
    if buf.remaining() < len {
        return Err(CodecError::Truncated);
    }
    let bytes = buf.copy_to_bytes(len);
    String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
}

fn get_len(buf: &mut Bytes) -> Result<usize> {
    if buf.remaining() < 4 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u32_le() as usize)
}

fn get_u8(buf: &mut Bytes) -> Result<u8> {
    if buf.remaining() < 1 {
        return Err(CodecError::Truncated);
    }
    Ok(buf.get_u8())
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// Encode a value into `buf`.
pub fn encode_value(v: &Value, buf: &mut BytesMut) -> Result<()> {
    match v {
        Value::Null => buf.put_u8(tag::NULL),
        Value::Bool(false) => buf.put_u8(tag::BOOL_FALSE),
        Value::Bool(true) => buf.put_u8(tag::BOOL_TRUE),
        Value::Int(i) => {
            buf.put_u8(tag::INT);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(tag::FLOAT);
            buf.put_f64_le(*x);
        }
        Value::Str(s) => {
            buf.put_u8(tag::STR);
            put_str(buf, s);
        }
        Value::Record(fields) => {
            buf.put_u8(tag::RECORD);
            buf.put_u32_le(fields.len() as u32);
            for (name, fv) in fields.iter() {
                put_str(buf, name.as_str());
                encode_value(fv, buf)?;
            }
        }
        Value::Tuple(items) => {
            buf.put_u8(tag::TUPLE);
            encode_seq(items, buf)?;
        }
        Value::List(items) => {
            buf.put_u8(tag::LIST);
            encode_seq(items, buf)?;
        }
        Value::Set(items) => {
            buf.put_u8(tag::SET);
            encode_seq(items, buf)?;
        }
        Value::Bag(runs) => {
            buf.put_u8(tag::BAG);
            buf.put_u32_le(runs.len() as u32);
            for (rv, count) in runs.iter() {
                buf.put_u64_le(*count);
                encode_value(rv, buf)?;
            }
        }
        Value::Vector(items) => {
            buf.put_u8(tag::VECTOR);
            encode_seq(items, buf)?;
        }
        Value::Obj(oid) => {
            buf.put_u8(tag::OBJ);
            buf.put_u64_le(oid.0);
        }
        Value::Closure(_) => return Err(CodecError::Unsupported("closures")),
    }
    Ok(())
}

fn encode_seq(items: &[Value], buf: &mut BytesMut) -> Result<()> {
    buf.put_u32_le(items.len() as u32);
    for i in items {
        encode_value(i, buf)?;
    }
    Ok(())
}

/// Decode one value from `buf`.
pub fn decode_value(buf: &mut Bytes) -> Result<Value> {
    let t = get_u8(buf)?;
    Ok(match t {
        tag::NULL => Value::Null,
        tag::BOOL_FALSE => Value::Bool(false),
        tag::BOOL_TRUE => Value::Bool(true),
        tag::INT => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Value::Int(buf.get_i64_le())
        }
        tag::FLOAT => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Value::Float(buf.get_f64_le())
        }
        tag::STR => Value::str(&get_str(buf)?),
        tag::RECORD => {
            let n = get_len(buf)?;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = Symbol::new(&get_str(buf)?);
                let v = decode_value(buf)?;
                fields.push((name, v));
            }
            Value::record(fields)
        }
        tag::TUPLE => Value::tuple(decode_seq(buf)?),
        tag::LIST => Value::list(decode_seq(buf)?),
        tag::SET => Value::set_from(decode_seq(buf)?),
        tag::BAG => {
            let n = get_len(buf)?;
            let mut items = Vec::new();
            for _ in 0..n {
                if buf.remaining() < 8 {
                    return Err(CodecError::Truncated);
                }
                let count = buf.get_u64_le();
                let v = decode_value(buf)?;
                for _ in 0..count {
                    items.push(v.clone());
                }
            }
            Value::bag_from(items)
        }
        tag::VECTOR => Value::vector(decode_seq(buf)?),
        tag::OBJ => {
            if buf.remaining() < 8 {
                return Err(CodecError::Truncated);
            }
            Value::Obj(Oid(buf.get_u64_le()))
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

fn decode_seq(buf: &mut Bytes) -> Result<Vec<Value>> {
    let n = get_len(buf)?;
    let mut items = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        items.push(decode_value(buf)?);
    }
    Ok(items)
}

// ---------------------------------------------------------------------------
// Types
// ---------------------------------------------------------------------------

fn encode_type(t: &Type, buf: &mut BytesMut) {
    match t {
        Type::Bool => buf.put_u8(tag::T_BOOL),
        Type::Int => buf.put_u8(tag::T_INT),
        Type::Float => buf.put_u8(tag::T_FLOAT),
        Type::Str => buf.put_u8(tag::T_STR),
        Type::Null => buf.put_u8(tag::T_NULL),
        Type::Var(v) => {
            buf.put_u8(tag::T_VAR);
            buf.put_u32_le(*v);
        }
        Type::Record(fields) => {
            buf.put_u8(tag::T_RECORD);
            buf.put_u32_le(fields.len() as u32);
            for (n, ft) in fields {
                put_str(buf, n.as_str());
                encode_type(ft, buf);
            }
        }
        Type::Tuple(items) => {
            buf.put_u8(tag::T_TUPLE);
            buf.put_u32_le(items.len() as u32);
            for i in items {
                encode_type(i, buf);
            }
        }
        Type::Coll(kind, elem) => {
            buf.put_u8(match kind {
                CollKind::List => tag::T_LIST,
                CollKind::Bag => tag::T_BAG,
                CollKind::Set => tag::T_SET,
            });
            encode_type(elem, buf);
        }
        Type::Vector(elem) => {
            buf.put_u8(tag::T_VECTOR);
            encode_type(elem, buf);
        }
        Type::Obj(state) => {
            buf.put_u8(tag::T_OBJ);
            encode_type(state, buf);
        }
        Type::Class(name) => {
            buf.put_u8(tag::T_CLASS);
            put_str(buf, name.as_str());
        }
        Type::Fn(a, r) => {
            buf.put_u8(tag::T_FN);
            encode_type(a, buf);
            encode_type(r, buf);
        }
    }
}

fn decode_type(buf: &mut Bytes) -> Result<Type> {
    let t = get_u8(buf)?;
    Ok(match t {
        tag::T_BOOL => Type::Bool,
        tag::T_INT => Type::Int,
        tag::T_FLOAT => Type::Float,
        tag::T_STR => Type::Str,
        tag::T_NULL => Type::Null,
        tag::T_VAR => {
            if buf.remaining() < 4 {
                return Err(CodecError::Truncated);
            }
            Type::Var(buf.get_u32_le())
        }
        tag::T_RECORD => {
            let n = get_len(buf)?;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                let name = Symbol::new(&get_str(buf)?);
                fields.push((name, decode_type(buf)?));
            }
            Type::Record(fields)
        }
        tag::T_TUPLE => {
            let n = get_len(buf)?;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_type(buf)?);
            }
            Type::Tuple(items)
        }
        tag::T_LIST => Type::list(decode_type(buf)?),
        tag::T_BAG => Type::bag(decode_type(buf)?),
        tag::T_SET => Type::set(decode_type(buf)?),
        tag::T_VECTOR => Type::vector(decode_type(buf)?),
        tag::T_OBJ => Type::obj(decode_type(buf)?),
        tag::T_CLASS => Type::Class(Symbol::new(&get_str(buf)?)),
        tag::T_FN => {
            let a = decode_type(buf)?;
            let r = decode_type(buf)?;
            Type::func(a, r)
        }
        other => return Err(CodecError::BadTag(other)),
    })
}

// ---------------------------------------------------------------------------
// Databases
// ---------------------------------------------------------------------------

/// Serialize a whole database (schema, heap, roots) into bytes.
pub fn encode_database(db: &Database) -> Result<Bytes> {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    // Schema: classes then extra roots' types are re-derivable; we encode
    // class defs and named root values (values carry their own shapes).
    let classes = db.schema().classes();
    buf.put_u32_le(classes.len() as u32);
    for c in classes {
        put_str(&mut buf, c.name.as_str());
        encode_type(&c.state, &mut buf);
        match c.extent {
            Some(e) => {
                buf.put_u8(1);
                put_str(&mut buf, e.as_str());
            }
            None => buf.put_u8(0),
        }
        match c.superclass {
            Some(s) => {
                buf.put_u8(1);
                put_str(&mut buf, s.as_str());
            }
            None => buf.put_u8(0),
        }
    }
    // Heap.
    buf.put_u32_le(db.heap().len() as u32);
    for (_, state) in db.heap().iter() {
        encode_value(state, &mut buf)?;
    }
    // Roots.
    let roots: Vec<_> = db.roots().collect();
    buf.put_u32_le(roots.len() as u32);
    for (name, v) in roots {
        put_str(&mut buf, name.as_str());
        encode_value(v, &mut buf)?;
    }
    Ok(buf.freeze())
}

/// Reconstruct a database from bytes produced by [`encode_database`].
pub fn decode_database(bytes: &[u8]) -> Result<Database> {
    let mut buf = Bytes::copy_from_slice(bytes);
    if buf.remaining() < 5 {
        return Err(CodecError::Truncated);
    }
    let magic = buf.copy_to_bytes(4);
    if magic.as_ref() != MAGIC {
        return Err(CodecError::BadTag(magic[0]));
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::BadTag(version));
    }
    let n_classes = get_len(&mut buf)?;
    let mut schema = Schema::new();
    for _ in 0..n_classes {
        let name = Symbol::new(&get_str(&mut buf)?);
        let state = decode_type(&mut buf)?;
        let extent = if get_u8(&mut buf)? == 1 {
            Some(Symbol::new(&get_str(&mut buf)?))
        } else {
            None
        };
        let superclass = if get_u8(&mut buf)? == 1 {
            Some(Symbol::new(&get_str(&mut buf)?))
        } else {
            None
        };
        schema.add_class(ClassDef { name, state, extent, superclass });
    }
    let mut db = Database::new(schema);
    let n_heap = get_len(&mut buf)?;
    for _ in 0..n_heap {
        let state = decode_value(&mut buf)?;
        db.heap_mut().alloc(state);
    }
    let n_roots = get_len(&mut buf)?;
    for _ in 0..n_roots {
        let name = Symbol::new(&get_str(&mut buf)?);
        let v = decode_value(&mut buf)?;
        db.set_root(name, v);
    }
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::travel::{self, TravelScale};
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = BytesMut::new();
        encode_value(v, &mut buf).unwrap();
        let mut bytes = buf.freeze();
        let out = decode_value(&mut bytes).unwrap();
        assert_eq!(bytes.remaining(), 0, "no trailing bytes");
        out
    }

    #[test]
    fn scalar_roundtrips() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(-7),
            Value::Float(2.5),
            Value::str("héllo"),
            Value::Obj(Oid(9)),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn nested_collections_roundtrip() {
        let v = Value::record_from(vec![
            ("xs", Value::list(vec![Value::Int(1), Value::Int(2)])),
            ("s", Value::set_from(vec![Value::Int(3), Value::Int(3), Value::Int(1)])),
            (
                "b",
                Value::bag_from(vec![Value::str("a"), Value::str("a"), Value::str("b")]),
            ),
            ("t", Value::tuple(vec![Value::Null, Value::Bool(true)])),
            ("v", Value::vector(vec![Value::Float(1.0)])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn truncated_input_errors() {
        let mut buf = BytesMut::new();
        encode_value(&Value::Int(5), &mut buf).unwrap();
        let full = buf.freeze();
        let mut cut = full.slice(0..full.len() - 1);
        assert_eq!(decode_value(&mut cut), Err(CodecError::Truncated));
    }

    #[test]
    fn bad_tag_errors() {
        let mut bytes = Bytes::from_static(&[0xee]);
        assert_eq!(decode_value(&mut bytes), Err(CodecError::BadTag(0xee)));
    }

    #[test]
    fn database_snapshot_roundtrips_and_queries_agree() {
        let mut db = travel::generate(TravelScale::tiny(), 11);
        let bytes = encode_database(&db).unwrap();
        let mut db2 = decode_database(&bytes).unwrap();
        assert_eq!(db.object_count(), db2.object_count());
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("e").proj("salary"),
            vec![Expr::gen("e", Expr::var("Employees"))],
        );
        assert_eq!(db.query(&q).unwrap(), db2.query(&q).unwrap());
    }
}
