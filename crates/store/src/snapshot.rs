//! Immutable database snapshots for concurrent, snapshot-isolated reads.
//!
//! A [`Snapshot`] is the read-only face of a [`Database`] at one point in
//! time: the Arc'd heap, roots, and schema, stamped with the
//! `(instance_id, mutation_epoch)` pair that keys every derived-data
//! cache in the system (plan cache, gathered statistics, secondary
//! indexes). Taking one is O(1) — [`Database::snapshot`] clones three
//! `Arc`s — and the snapshot is `Send + Sync + Clone`, so any number of
//! reader threads can execute against it while the owning database keeps
//! committing new epochs. The copy-on-write storage underneath
//! ([`monoid_calculus::heap::Heap`]) guarantees a reader never sees a
//! torn state: a writer's first mutation after the snapshot unshares the
//! storage, leaving the snapshot bit-for-bit what it was.
//!
//! Because the monoid-comprehension calculus evaluates queries as pure
//! folds over the extents, snapshot reads are serializable for free: a
//! query against epoch *e* returns exactly what a single-threaded run
//! against the database at epoch *e* would have returned, byte for byte
//! (property-tested in `tests/concurrent_reads.rs`). Statements whose
//! effects would write the heap (`:=`, `new`) are refused here — they
//! must run against the `&mut Database` writer path, which is where
//! epochs advance.

use monoid_calculus::analysis::EffectSummary;
use monoid_calculus::error::{EvalError, EvalResult, TypeResult};
use monoid_calculus::eval::Evaluator;
use monoid_calculus::expr::Expr;
use monoid_calculus::heap::Heap;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::typecheck::{TypeChecker, TypeEnv};
use monoid_calculus::types::{Schema, Type};
use monoid_calculus::value::{Env, Oid, Value};
use std::collections::BTreeMap;
use std::sync::Arc;

/// An immutable view of a [`Database`](crate::Database) at one mutation
/// epoch. Cheap to take, cheap to clone, safe to share across threads.
#[derive(Debug, Clone)]
pub struct Snapshot {
    schema: Arc<Schema>,
    heap: Heap,
    roots: Arc<BTreeMap<Symbol, Value>>,
    extent_of: Arc<BTreeMap<Symbol, Symbol>>,
    instance: u64,
    epoch: u64,
}

impl Snapshot {
    /// Constructed by [`Database::snapshot`](crate::Database::snapshot).
    pub(crate) fn new(
        schema: Arc<Schema>,
        heap: Heap,
        roots: Arc<BTreeMap<Symbol, Value>>,
        extent_of: Arc<BTreeMap<Symbol, Symbol>>,
        instance: u64,
        epoch: u64,
    ) -> Snapshot {
        Snapshot { schema, heap, roots, extent_of, instance, epoch }
    }

    /// The [`Database::instance_id`](crate::Database::instance_id) of the
    /// database this snapshot was taken from.
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// The [`Database::mutation_epoch`](crate::Database::mutation_epoch)
    /// this snapshot pins. Two snapshots with equal
    /// `(instance_id, epoch)` see identical data, byte for byte.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema behind its shared handle.
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    /// The pinned heap. Cloning it is O(1) (copy-on-write storage), which
    /// is how executors obtain an owned evaluator heap without copying
    /// the store.
    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    pub fn root(&self, name: Symbol) -> Option<&Value> {
        self.roots.get(&name)
    }

    pub fn roots(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.roots.iter().map(|(k, v)| (*k, v))
    }

    /// The environment binding every persistent root, exactly as
    /// [`Database::env`](crate::Database::env) builds it (same iteration
    /// order, so executions bind identically).
    pub fn env(&self) -> Env {
        Env::from_bindings(self.roots.iter().map(|(k, v)| (*k, v.clone())))
    }

    /// Number of members of an extent.
    pub fn extent_len(&self, extent: impl Into<Symbol>) -> usize {
        self.roots
            .get(&extent.into())
            .and_then(|v| v.len().ok())
            .unwrap_or(0)
    }

    /// Is `name` the extent of some class?
    pub fn is_extent(&self, name: Symbol) -> bool {
        self.extent_of.values().any(|e| *e == name)
    }

    /// Number of objects in the pinned heap.
    pub fn object_count(&self) -> usize {
        self.heap.len()
    }

    /// Read the pinned state of an object.
    pub fn state(&self, oid: Oid) -> EvalResult<&Value> {
        self.heap.get(oid)
    }

    /// Read a field of an object's pinned record state.
    pub fn field(&self, oid: Oid, name: impl Into<Symbol>) -> EvalResult<Value> {
        let name = name.into();
        self.state(oid)?
            .field(name)
            .cloned()
            .ok_or_else(|| EvalError::Other(format!("object has no field `{name}`")))
    }

    /// Type-check a query against this snapshot's schema.
    pub fn check(&self, e: &Expr) -> TypeResult<Type> {
        let mut tc = TypeChecker::with_schema(&self.schema);
        tc.check(&TypeEnv::new(), e)
    }

    /// Evaluate a *read-only* query against the pinned state. Statements
    /// whose effect summary writes the heap (`:=` updates, `new`
    /// allocations) are refused with an error naming the offending
    /// effect — they need the `&mut Database` writer path, both so their
    /// effects actually commit and so the OIDs they mint are not dangling
    /// references into a discarded local heap.
    pub fn query(&self, e: &Expr) -> EvalResult<Value> {
        let summary = EffectSummary::of(e);
        if summary.effects.mutates || summary.effects.allocates {
            return Err(EvalError::Other(format!(
                "statement has heap effects ({summary}) — snapshots are read-only; \
                 run it against the database writer instead"
            )));
        }
        self.eval_unchecked(e, &self.env())
    }

    /// Evaluate `e` under `env` against the pinned heap without an effect
    /// check — the executors' entry point, used after planning already
    /// proved purity. Local heap effects, were any to happen, would be
    /// discarded with the evaluator's copy-on-write heap clone.
    pub fn eval_unchecked(&self, e: &Expr, env: &Env) -> EvalResult<Value> {
        let mut ev = Evaluator::with_heap(self.heap.clone());
        ev.eval(env, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::travel::{self, TravelScale};
    use monoid_calculus::monoid::Monoid;

    fn sum_beds() -> Expr {
        Expr::comp(
            Monoid::Sum,
            Expr::var("r").proj("bed#"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        )
    }

    #[test]
    fn snapshot_pins_the_epoch_across_writer_mutations() {
        let mut db = travel::generate(TravelScale::tiny(), 42);
        let snap = db.snapshot();
        assert_eq!(snap.epoch(), db.mutation_epoch());
        assert_eq!(snap.instance_id(), db.instance_id());
        let before = snap.query(&sum_beds()).unwrap();

        // Writer commits new epochs; the snapshot keeps answering from
        // its pinned state. Rooms are plain records with no identity, so
        // the mutation assigns through the hotel objects, giving every
        // hotel a single bed#=99 room.
        let update = Expr::comp(
            Monoid::All,
            Expr::var("h").assign(Expr::record(vec![
                ("name", Expr::var("h").proj("name")),
                ("address", Expr::var("h").proj("address")),
                ("facilities", Expr::var("h").proj("facilities")),
                ("employees", Expr::var("h").proj("employees")),
                (
                    "rooms",
                    Expr::list_of(vec![Expr::record(vec![
                        ("bed#", Expr::int(99)),
                        ("price", Expr::int(1)),
                    ])]),
                ),
            ])),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        db.query(&update).unwrap();
        assert!(db.mutation_epoch() > snap.epoch());
        assert_eq!(snap.query(&sum_beds()).unwrap(), before);
        assert_ne!(db.query(&sum_beds()).unwrap(), before);
    }

    #[test]
    fn snapshot_is_o1_and_refuses_writes() {
        let db = travel::generate(TravelScale::tiny(), 42);
        let snap = db.snapshot();
        assert!(snap.heap().shares_storage_with(db.heap()), "no copy taken");
        let alloc = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("x", Expr::new_obj(Expr::int(1)))],
        );
        let err = snap.query(&alloc).unwrap_err();
        assert!(err.to_string().contains("read-only"), "{err}");
    }

    #[test]
    fn snapshot_env_matches_database_env() {
        let mut db = travel::generate(TravelScale::tiny(), 42);
        let snap = db.snapshot();
        let q = sum_beds();
        assert_eq!(snap.query(&q).unwrap(), db.query(&q).unwrap());
    }
}
