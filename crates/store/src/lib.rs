//! # monoid-store
//!
//! The object database substrate underneath the monoid calculus system:
//!
//! * [`database`] — schemas, class extents, the OID heap, persistent roots,
//!   and query entry points ([`Database::query`] threads the heap through
//!   evaluation so update programs mutate in place).
//! * [`travel`] — the paper's travel-agency schema (Cities / Hotels / Rooms
//!   / Employees / Clients) with a deterministic, seeded generator at
//!   configurable scale; city 0 is always `"Portland"` so the paper's
//!   queries run verbatim.
//! * [`company`] — a second sample database with a class *hierarchy*
//!   (`Manager <: Employee <: Person`), exercising OQL's subtype features.
//! * [`snapshot`] — immutable `O(1)` database snapshots
//!   ([`Database::snapshot`]) for concurrent, snapshot-isolated reads;
//!   stamped with `(instance_id, mutation_epoch)`.
//! * [`codec`] — self-contained binary snapshots of values and whole
//!   databases.
//!
//! The paper evaluates against an O2-style OODB that was never distributed;
//! this crate is the schema-identical substitute (DESIGN.md §5).

pub mod codec;
pub mod company;
pub mod database;
pub mod snapshot;
pub mod travel;

pub use database::Database;
pub use snapshot::Snapshot;
pub use travel::TravelScale;
