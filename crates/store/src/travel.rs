//! The paper's travel-agency database.
//!
//! Fegaras & Maier's running examples query a travel-agency schema:
//! cities with hotels (`c.hotels`), hotels with names, addresses,
//! facilities, employees and rooms (`h.rooms`), rooms with a number of beds
//! (`r.bed#`) and a price, and clients. The §4.3 update program inserts a
//! hotel into a city and bumps its `hotel#` counter. The authors' actual
//! data was never distributed, so this module provides a schema-identical,
//! deterministic, seeded generator at configurable scale (see DESIGN.md §5
//! "Substitutions") — city 0 is always `"Portland"` so the paper's queries
//! run verbatim.

use crate::database::Database;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::types::{ClassDef, Schema, Type};
use monoid_calculus::value::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Class and extent names of the travel schema.
pub mod names {
    pub const CITY: &str = "City";
    pub const CITIES: &str = "Cities";
    pub const HOTEL: &str = "Hotel";
    pub const HOTELS: &str = "Hotels";
    pub const EMPLOYEE: &str = "Employee";
    pub const EMPLOYEES: &str = "Employees";
    pub const CLIENT: &str = "Client";
    pub const CLIENTS: &str = "Clients";
}

/// How much data to generate. All distributions are deterministic in the
/// seed, so every run (and every benchmark baseline) sees identical data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TravelScale {
    pub cities: usize,
    pub hotels_per_city: usize,
    pub rooms_per_hotel: usize,
    pub employees_per_hotel: usize,
    pub clients: usize,
}

impl TravelScale {
    /// A handful of objects — fast unit tests.
    pub fn tiny() -> TravelScale {
        TravelScale {
            cities: 3,
            hotels_per_city: 2,
            rooms_per_hotel: 3,
            employees_per_hotel: 2,
            clients: 5,
        }
    }

    /// A small database — integration tests.
    pub fn small() -> TravelScale {
        TravelScale {
            cities: 10,
            hotels_per_city: 5,
            rooms_per_hotel: 8,
            employees_per_hotel: 3,
            clients: 50,
        }
    }

    /// Scale the hotel count (the benchmark sweep dimension) while keeping
    /// the rest proportionate.
    pub fn with_hotels(total_hotels: usize) -> TravelScale {
        let cities = (total_hotels / 10).max(1);
        TravelScale {
            cities,
            hotels_per_city: total_hotels.div_ceil(cities),
            rooms_per_hotel: 5,
            employees_per_hotel: 2,
            clients: total_hotels / 2,
        }
    }

    pub fn total_hotels(&self) -> usize {
        self.cities * self.hotels_per_city
    }
}

/// The travel-agency schema (paper §3/§4.3).
pub fn schema() -> Schema {
    let s = |n: &str| Symbol::new(n);
    let mut schema = Schema::new();
    schema.add_class(ClassDef {
        name: s(names::EMPLOYEE),
        state: Type::record(vec![
            (s("name"), Type::Str),
            (s("salary"), Type::Int),
        ]),
        extent: Some(s(names::EMPLOYEES)),
        superclass: None,
    });
    schema.add_class(ClassDef {
        name: s(names::HOTEL),
        state: Type::record(vec![
            (s("name"), Type::Str),
            (s("address"), Type::Str),
            (s("facilities"), Type::set(Type::Str)),
            (s("employees"), Type::list(Type::Class(s(names::EMPLOYEE)))),
            (s("rooms"), Type::list(room_type())),
        ]),
        extent: Some(s(names::HOTELS)),
        superclass: None,
    });
    schema.add_class(ClassDef {
        name: s(names::CITY),
        state: Type::record(vec![
            (s("name"), Type::Str),
            (s("hotels"), Type::list(Type::Class(s(names::HOTEL)))),
            (s("hotel#"), Type::Int),
        ]),
        extent: Some(s(names::CITIES)),
        superclass: None,
    });
    schema.add_class(ClassDef {
        name: s(names::CLIENT),
        state: Type::record(vec![
            (s("name"), Type::Str),
            (s("age"), Type::Int),
            (s("budget"), Type::Float),
            (s("preferred"), Type::list(Type::Str)),
        ]),
        extent: Some(s(names::CLIENTS)),
        superclass: None,
    });
    schema
}

/// The (anonymous record) type of a room: `⟨bed#: int, price: float⟩`.
pub fn room_type() -> Type {
    Type::record(vec![
        (Symbol::new("bed#"), Type::Int),
        (Symbol::new("price"), Type::Float),
    ])
}

const FACILITIES: &[&str] = &["pool", "gym", "sauna", "restaurant", "parking", "wifi"];
const CITY_NAMES: &[&str] = &[
    "Portland", "Seattle", "Boston", "Austin", "Denver", "Chicago", "Houston", "Phoenix",
    "Atlanta", "Detroit",
];

/// Generate a travel database at the given scale, deterministically from
/// `seed`. City 0 is always `"Portland"`.
pub fn generate(scale: TravelScale, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(schema());
    let city_c = Symbol::new(names::CITY);
    let hotel_c = Symbol::new(names::HOTEL);
    let employee_c = Symbol::new(names::EMPLOYEE);
    let client_c = Symbol::new(names::CLIENT);

    #[allow(clippy::needless_range_loop)] // ci names cities and picks CITY_NAMES
    for ci in 0..scale.cities {
        let mut hotel_objs = Vec::with_capacity(scale.hotels_per_city);
        for hi in 0..scale.hotels_per_city {
            // employees
            let mut employee_objs = Vec::with_capacity(scale.employees_per_hotel);
            for ei in 0..scale.employees_per_hotel {
                let oid = db
                    .insert(
                        employee_c,
                        Value::record_from(vec![
                            ("name", Value::str(&format!("emp_{ci}_{hi}_{ei}"))),
                            ("salary", Value::Int(rng.random_range(20_000..90_000))),
                        ]),
                    )
                    .expect("insert employee");
                employee_objs.push(Value::Obj(oid));
            }
            // rooms (plain records — no identity needed)
            let rooms: Vec<Value> = (0..scale.rooms_per_hotel)
                .map(|_| {
                    Value::record_from(vec![
                        ("bed#", Value::Int(rng.random_range(1..=4))),
                        (
                            "price",
                            Value::Float(f64::from(rng.random_range(40..400))),
                        ),
                    ])
                })
                .collect();
            // facilities: a random subset
            let facilities: Vec<Value> = FACILITIES
                .iter()
                .filter(|_| rng.random_bool(0.5))
                .map(|f| Value::str(f))
                .collect();
            let oid = db
                .insert(
                    hotel_c,
                    Value::record_from(vec![
                        ("name", Value::str(&format!("hotel_{ci}_{hi}"))),
                        ("address", Value::str(&format!("{hi} Main St, city {ci}"))),
                        ("facilities", Value::set_from(facilities)),
                        ("employees", Value::list(employee_objs)),
                        ("rooms", Value::list(rooms)),
                    ]),
                )
                .expect("insert hotel");
            hotel_objs.push(Value::Obj(oid));
        }
        let city_name = if ci < CITY_NAMES.len() {
            CITY_NAMES[ci].to_string()
        } else {
            format!("city_{ci}")
        };
        let hotel_count = hotel_objs.len() as i64;
        db.insert(
            city_c,
            Value::record_from(vec![
                ("name", Value::str(&city_name)),
                ("hotels", Value::list(hotel_objs)),
                ("hotel#", Value::Int(hotel_count)),
            ]),
        )
        .expect("insert city");
    }

    for ki in 0..scale.clients {
        let n_pref = rng.random_range(0..3usize);
        let preferred: Vec<Value> = (0..n_pref)
            .map(|_| {
                let ci = rng.random_range(0..scale.cities.max(1));
                let name = if ci < CITY_NAMES.len() {
                    CITY_NAMES[ci].to_string()
                } else {
                    format!("city_{ci}")
                };
                Value::str(&name)
            })
            .collect();
        db.insert(
            client_c,
            Value::record_from(vec![
                ("name", Value::str(&format!("client_{ki}"))),
                ("age", Value::Int(rng.random_range(18..90))),
                ("budget", Value::Float(f64::from(rng.random_range(50..500)))),
                ("preferred", Value::list(preferred)),
            ]),
        )
        .expect("insert client");
    }

    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(TravelScale::tiny(), 7);
        let b = generate(TravelScale::tiny(), 7);
        assert_eq!(a.object_count(), b.object_count());
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("e").proj("salary"),
            vec![Expr::gen("e", Expr::var("Employees"))],
        );
        let mut a = a;
        let mut b = b;
        assert_eq!(a.query(&q).unwrap(), b.query(&q).unwrap());
        let c = generate(TravelScale::tiny(), 8);
        let mut c = c;
        // Different seed ⇒ (almost surely) different payroll.
        assert_ne!(a.query(&q).unwrap(), c.query(&q).unwrap());
    }

    #[test]
    fn extent_sizes_match_scale() {
        let scale = TravelScale::tiny();
        let db = generate(scale, 1);
        assert_eq!(db.extent_len(names::CITIES), scale.cities);
        assert_eq!(db.extent_len(names::HOTELS), scale.total_hotels());
        assert_eq!(db.extent_len(names::CLIENTS), scale.clients);
        assert_eq!(
            db.extent_len(names::EMPLOYEES),
            scale.total_hotels() * scale.employees_per_hotel
        );
    }

    #[test]
    fn portland_exists_and_paper_query_runs() {
        let mut db = generate(TravelScale::tiny(), 42);
        // The paper's normalized Portland query:
        // bag{ h.name | c ← Cities, c.name = "Portland",
        //               h ← c.hotels, r ← h.rooms, r.bed# = 3 }
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
                Expr::pred(Expr::var("r").proj("bed#").eq(Expr::int(3))),
            ],
        );
        // Type-checks against the schema and runs.
        db.check(&q).unwrap();
        let result = db.query(&q).unwrap();
        assert!(matches!(result, Value::Bag(_)));
    }

    #[test]
    fn with_hotels_hits_target() {
        let s = TravelScale::with_hotels(100);
        assert!(s.total_hotels() >= 100);
        assert!(s.total_hotels() < 120);
    }
}
