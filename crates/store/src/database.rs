//! The object database: a schema, an object heap, named persistent roots
//! (class extents among them), and query entry points.
//!
//! This is the substrate the paper assumes: "persistent roots" that OQL
//! names resolve against, objects with identity whose state lives in a
//! heap, and class extents one can iterate. Queries are calculus
//! expressions evaluated against the database's heap with the roots in
//! scope; the heap is threaded through evaluation so update programs
//! (paper §4.2/§4.3) mutate the database in place.

use monoid_calculus::error::{EvalError, EvalResult, TypeResult};
use monoid_calculus::eval::Evaluator;
use monoid_calculus::expr::Expr;
use monoid_calculus::heap::Heap;
use monoid_calculus::metrics::{self, Counter, Gauge, Histogram};
use monoid_calculus::symbol::Symbol;
use monoid_calculus::typecheck::{TypeChecker, TypeEnv};
use monoid_calculus::types::{Schema, Type};
use monoid_calculus::value::{Env, Oid, Value};
use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// The store's series in the process-wide metrics registry, resolved
/// once. Counters are cumulative across every `Database` instance in
/// the process — fleet accounting, not per-database accounting.
struct StoreMetrics {
    /// Objects allocated through [`Database::insert`].
    inserts: Arc<Counter>,
    /// Object states read through [`Database::state`] (and `field`).
    state_reads: Arc<Counter>,
    /// Extents made scannable: one count per extent bound into a query
    /// environment by [`Database::env`], plus direct extent reads via
    /// [`Database::root`].
    extent_scans: Arc<Counter>,
    /// Queries evaluated via [`Database::query`]/`query_counted`.
    queries: Arc<Counter>,
    /// Queries that returned an error.
    query_errors: Arc<Counter>,
    /// End-to-end `Database::query` latency distribution.
    query_nanos: Arc<Histogram>,
    /// Heap size of the most recently mutated database (a level).
    heap_objects: Arc<Gauge>,
}

fn store_metrics() -> &'static StoreMetrics {
    static METRICS: OnceLock<StoreMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metrics::global();
        StoreMetrics {
            inserts: r.counter("store_objects_inserted_total"),
            state_reads: r.counter("store_state_reads_total"),
            extent_scans: r.counter("store_extent_scans_total"),
            queries: r.counter("store_queries_total"),
            query_errors: r.counter("store_query_errors_total"),
            query_nanos: r.histogram("store_query_nanos"),
            heap_objects: r.gauge("store_heap_objects"),
        }
    })
}

/// An object database.
///
/// Schema, roots, and the heap's storage all live behind `Arc`s, so
/// [`Database::snapshot`] is O(1): it hands out an immutable
/// [`crate::Snapshot`] sharing the current state. Mutations go through
/// `Arc::make_mut` — free while no snapshot is outstanding, one
/// copy-on-write unshare when one is — so writers never block readers
/// and readers never observe a torn state.
#[derive(Debug, Default)]
pub struct Database {
    schema: Arc<Schema>,
    heap: Heap,
    /// Named persistent roots: extents (bags of objects) and any other
    /// top-level values.
    roots: Arc<BTreeMap<Symbol, Value>>,
    /// Which class each extent member list belongs to, for `insert`.
    extent_of: Arc<BTreeMap<Symbol, Symbol>>,
    /// Bumped on every root mutation (`insert` extent growth, `set_root`).
    /// Heap mutations are tracked by the heap's own version counter; the
    /// two together form [`Database::mutation_epoch`].
    roots_epoch: u64,
    /// Process-unique identity (see [`Database::instance_id`]); `0` for
    /// `Database::default()`, which is never cached against.
    instance: u64,
}

/// Clones get a *fresh* instance id: a clone and its original mutate
/// independently afterwards, so their epochs would collide under a shared
/// id and stale gathered statistics could be served for the wrong data.
impl Clone for Database {
    fn clone(&self) -> Database {
        Database {
            schema: Arc::clone(&self.schema),
            heap: self.heap.clone(),
            roots: Arc::clone(&self.roots),
            extent_of: Arc::clone(&self.extent_of),
            roots_epoch: self.roots_epoch,
            instance: next_instance(),
        }
    }
}

fn next_instance() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Database {
    /// An empty database over `schema`. Every class extent declared in the
    /// schema starts as an empty bag.
    pub fn new(schema: Schema) -> Database {
        let mut roots = BTreeMap::new();
        let mut extent_of = BTreeMap::new();
        for class in schema.classes() {
            if let Some(extent) = class.extent {
                roots.insert(extent, Value::bag_from(Vec::new()));
                extent_of.insert(class.name, extent);
            }
        }
        Database {
            schema: Arc::new(schema),
            heap: Heap::new(),
            roots: Arc::new(roots),
            extent_of: Arc::new(extent_of),
            roots_epoch: 0,
            instance: next_instance(),
        }
    }

    /// An immutable, `O(1)` snapshot of this database's current state:
    /// the Arc'd heap, roots, and schema, stamped with
    /// `(instance_id, mutation_epoch)`. Any number of reader threads can
    /// execute against the snapshot concurrently while this database
    /// keeps mutating — a mutation after the snapshot copy-on-writes the
    /// shared storage, so the snapshot keeps seeing exactly the state it
    /// was taken at (see [`crate::Snapshot`]).
    pub fn snapshot(&self) -> crate::Snapshot {
        crate::Snapshot::new(
            Arc::clone(&self.schema),
            self.heap.clone(),
            Arc::clone(&self.roots),
            Arc::clone(&self.extent_of),
            self.instance,
            self.mutation_epoch(),
        )
    }

    /// A process-unique identity for this database value. Paired with
    /// [`Database::mutation_epoch`] it keys caches of derived data
    /// (gathered statistics): equal `(instance_id, mutation_epoch)` means
    /// the same data, byte for byte. `0` (from `Database::default()`)
    /// means "anonymous — do not cache".
    pub fn instance_id(&self) -> u64 {
        self.instance
    }

    /// A counter that strictly increases across every mutation of the
    /// database — object allocation, state update (including updates made
    /// by query evaluation), extent growth, and root rebinding. Two equal
    /// epochs mean no mutation happened in between; secondary indexes are
    /// stamped with the epoch at build time so lookup rewriting can refuse
    /// (or rebuild) indexes that no longer reflect the data.
    pub fn mutation_epoch(&self) -> u64 {
        self.heap.version() + self.roots_epoch
    }

    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The schema behind its shared handle (snapshots and servers hold
    /// clones of this instead of copying the schema).
    pub fn schema_arc(&self) -> Arc<Schema> {
        Arc::clone(&self.schema)
    }

    pub fn heap(&self) -> &Heap {
        &self.heap
    }

    /// Direct heap access for bulk loaders.
    pub fn heap_mut(&mut self) -> &mut Heap {
        &mut self.heap
    }

    /// Allocate an object of `class` with the given record `state` and add
    /// it to the class's extent (if it has one). Returns the new identity.
    pub fn insert(&mut self, class: Symbol, state: Value) -> EvalResult<Oid> {
        let oid = self.heap.alloc(state);
        let m = store_metrics();
        m.inserts.inc();
        m.heap_objects.set(self.heap.len() as i64);
        if let Some(extent) = self.extent_of.get(&class).copied() {
            let obj = Value::Obj(oid);
            let current = self
                .roots
                .get(&extent)
                .cloned()
                .unwrap_or_else(|| Value::bag_from(Vec::new()));
            let mut elems = current.elements()?;
            elems.push(obj);
            Arc::make_mut(&mut self.roots).insert(extent, Value::bag_from(elems));
            self.roots_epoch += 1;
        }
        Ok(oid)
    }

    /// Set (or create) a named persistent root.
    pub fn set_root(&mut self, name: impl Into<Symbol>, value: Value) {
        Arc::make_mut(&mut self.roots).insert(name.into(), value);
        self.roots_epoch += 1;
    }

    pub fn root(&self, name: Symbol) -> Option<&Value> {
        if self.is_extent(name) {
            store_metrics().extent_scans.inc();
        }
        self.roots.get(&name)
    }

    /// Is `name` the extent of some class?
    fn is_extent(&self, name: Symbol) -> bool {
        self.extent_of.values().any(|e| *e == name)
    }

    pub fn roots(&self) -> impl Iterator<Item = (Symbol, &Value)> {
        self.roots.iter().map(|(k, v)| (*k, v))
    }

    /// The environment binding every persistent root, for evaluation.
    /// Counts each extent bound into scope as a (potential) extent scan
    /// — this is the point where a query gains access to the extents.
    pub fn env(&self) -> Env {
        let extents = self.extent_of.values().filter(|e| self.roots.contains_key(e)).count();
        store_metrics().extent_scans.add(extents as u64);
        Env::from_bindings(self.roots.iter().map(|(k, v)| (*k, v.clone())))
    }

    /// Type-check a query against this database's schema.
    pub fn check(&self, e: &Expr) -> TypeResult<Type> {
        let mut tc = TypeChecker::with_schema(&self.schema);
        tc.check(&TypeEnv::new(), e)
    }

    /// Evaluate a query. The heap is moved into the evaluator and back, so
    /// update programs mutate the database in place without copying.
    /// Records query count, latency, and errors in the process-wide
    /// metrics registry.
    pub fn query(&mut self, e: &Expr) -> EvalResult<Value> {
        self.query_counted(e).map(|(v, _)| v)
    }

    /// Evaluate a query and report the number of evaluation steps taken —
    /// an implementation-independent cost measure used by the benchmarks.
    pub fn query_counted(&mut self, e: &Expr) -> EvalResult<(Value, u64)> {
        let m = store_metrics();
        m.queries.inc();
        let started = Instant::now();
        let heap = std::mem::take(&mut self.heap);
        let mut ev = Evaluator::with_heap(heap);
        let env = self.env();
        let result = ev.eval(&env, e);
        let steps = ev.steps_used();
        self.heap = ev.heap;
        m.query_nanos.observe_nanos(started.elapsed().as_nanos());
        m.heap_objects.set(self.heap.len() as i64);
        if result.is_err() {
            m.query_errors.inc();
        }
        result.map(|v| (v, steps))
    }

    /// Read the current state of an object.
    pub fn state(&self, oid: Oid) -> EvalResult<&Value> {
        store_metrics().state_reads.inc();
        self.heap.get(oid)
    }

    /// Read a field of an object's record state (convenience for tests and
    /// loaders).
    pub fn field(&self, oid: Oid, name: impl Into<Symbol>) -> EvalResult<Value> {
        let name = name.into();
        self.state(oid)?
            .field(name)
            .cloned()
            .ok_or_else(|| EvalError::Other(format!("object has no field `{name}`")))
    }

    /// Number of objects in the heap.
    pub fn object_count(&self) -> usize {
        self.heap.len()
    }

    /// Number of members of an extent.
    pub fn extent_len(&self, extent: impl Into<Symbol>) -> usize {
        self.roots
            .get(&extent.into())
            .and_then(|v| v.len().ok())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::monoid::Monoid;
    use monoid_calculus::types::ClassDef;

    fn tiny_schema() -> Schema {
        let mut s = Schema::new();
        s.add_class(ClassDef {
            name: Symbol::new("Point"),
            state: Type::record(vec![
                (Symbol::new("x"), Type::Int),
                (Symbol::new("y"), Type::Int),
            ]),
            extent: Some(Symbol::new("Points")),
            superclass: None,
        });
        s
    }

    #[test]
    fn insert_populates_extent() {
        let mut db = Database::new(tiny_schema());
        let class = Symbol::new("Point");
        for i in 0..3 {
            db.insert(
                class,
                Value::record_from(vec![("x", Value::Int(i)), ("y", Value::Int(-i))]),
            )
            .unwrap();
        }
        assert_eq!(db.extent_len("Points"), 3);
        assert_eq!(db.object_count(), 3);
    }

    #[test]
    fn query_over_extent() {
        let mut db = Database::new(tiny_schema());
        let class = Symbol::new("Point");
        for i in 1..=4 {
            db.insert(
                class,
                Value::record_from(vec![("x", Value::Int(i)), ("y", Value::Int(0))]),
            )
            .unwrap();
        }
        // sum{ p.x | p ← Points, p.x > 2 } = 7
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("p").proj("x"),
            vec![
                Expr::gen("p", Expr::var("Points")),
                Expr::pred(Expr::var("p").proj("x").gt(Expr::int(2))),
            ],
        );
        assert_eq!(db.query(&q).unwrap(), Value::Int(7));
        // And the query type-checks against the schema.
        assert_eq!(db.check(&q).unwrap(), Type::Int);
    }

    #[test]
    fn updates_persist_across_queries() {
        let mut db = Database::new(tiny_schema());
        let class = Symbol::new("Point");
        let oid = db
            .insert(class, Value::record_from(vec![("x", Value::Int(1)), ("y", Value::Int(2))]))
            .unwrap();
        // all{ p := ⟨x=10, y=20⟩ | p ← Points }
        let update = Expr::comp(
            Monoid::All,
            Expr::var("p").assign(Expr::record(vec![
                ("x", Expr::int(10)),
                ("y", Expr::int(20)),
            ])),
            vec![Expr::gen("p", Expr::var("Points"))],
        );
        assert_eq!(db.query(&update).unwrap(), Value::Bool(true));
        assert_eq!(db.field(oid, "x").unwrap(), Value::Int(10));
    }

    #[test]
    fn mutation_epoch_advances_on_every_mutation_kind() {
        let mut db = Database::new(tiny_schema());
        let e0 = db.mutation_epoch();
        // Insert: heap alloc + extent growth.
        let oid = db
            .insert(
                Symbol::new("Point"),
                Value::record_from(vec![("x", Value::Int(1)), ("y", Value::Int(2))]),
            )
            .unwrap();
        let e1 = db.mutation_epoch();
        assert!(e1 > e0);
        // Root rebinding.
        db.set_root("marker", Value::Int(7));
        let e2 = db.mutation_epoch();
        assert!(e2 > e1);
        // Heap update through query evaluation (`:=`).
        let update = Expr::comp(
            Monoid::All,
            Expr::var("p").assign(Expr::record(vec![
                ("x", Expr::int(10)),
                ("y", Expr::int(20)),
            ])),
            vec![Expr::gen("p", Expr::var("Points"))],
        );
        db.query(&update).unwrap();
        let e3 = db.mutation_epoch();
        assert!(e3 > e2, "heap mutation inside a query advances the epoch");
        // Read-only operations do not.
        let _ = db.state(oid).unwrap();
        let sum = Expr::comp(
            Monoid::Sum,
            Expr::var("p").proj("x"),
            vec![Expr::gen("p", Expr::var("Points"))],
        );
        db.query(&sum).unwrap();
        assert_eq!(db.mutation_epoch(), e3);
    }

    #[test]
    fn roots_are_visible_to_queries() {
        let mut db = Database::new(Schema::new());
        db.set_root("answer", Value::Int(42));
        let q = Expr::var("answer").add(Expr::int(0));
        assert_eq!(db.query(&q).unwrap(), Value::Int(42));
    }

    #[test]
    fn unknown_root_is_an_error() {
        let mut db = Database::new(Schema::new());
        assert!(db.query(&Expr::var("nothing")).is_err());
    }

    #[test]
    fn store_operations_feed_the_metrics_registry() {
        // Other tests in this binary also hit the global registry
        // concurrently, so assert deltas as lower bounds.
        let before = metrics::global().snapshot();
        let mut db = Database::new(tiny_schema());
        let class = Symbol::new("Point");
        let oid = db
            .insert(class, Value::record_from(vec![("x", Value::Int(1)), ("y", Value::Int(2))]))
            .unwrap();
        let _ = db.state(oid).unwrap();
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("p").proj("x"),
            vec![Expr::gen("p", Expr::var("Points"))],
        );
        db.query(&q).unwrap();
        assert!(db.query(&Expr::var("missing")).is_err());
        let d = metrics::global().snapshot().diff(&before);
        assert!(d.counter("store_objects_inserted_total") >= 1);
        assert!(d.counter("store_state_reads_total") >= 1);
        assert!(d.counter("store_queries_total") >= 2);
        assert!(d.counter("store_query_errors_total") >= 1);
        // Both queries bound the Points extent into scope.
        assert!(d.counter("store_extent_scans_total") >= 2);
        let lat = d.histogram_with("store_query_nanos", &[]).unwrap();
        assert!(lat.count >= 2, "two queries timed, saw {}", lat.count);
        assert!(metrics::global().snapshot().gauge("store_heap_objects").is_some());
    }
}
