//! A second sample database: a company with a class *hierarchy* —
//! `Manager <: Employee <: Person` — exercising the subtype features the
//! paper lists among OQL's challenges ("a subtype hierarchy", §1).
//!
//! Inherited fields are flattened into subclass states (see
//! `Schema::class_state`), subclass extents are disjoint from superclass
//! extents here (each object lives in exactly one extent, ODMG's
//! most-specific-class convention), and a `Staff` root unions the extents
//! for queries that range over the whole hierarchy.

use crate::database::Database;
use monoid_calculus::symbol::Symbol;
use monoid_calculus::types::{ClassDef, Schema, Type};
use monoid_calculus::value::Value;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Class and root names.
pub mod names {
    pub const PERSON: &str = "Person";
    pub const PERSONS: &str = "Persons";
    pub const EMPLOYEE: &str = "CompanyEmployee";
    pub const EMPLOYEES: &str = "CompanyEmployees";
    pub const MANAGER: &str = "Manager";
    pub const MANAGERS: &str = "Managers";
    /// A root holding *all* staff (employees + managers), typed at the
    /// superclass.
    pub const STAFF: &str = "Staff";
}

/// The hierarchy schema.
pub fn schema() -> Schema {
    let s = |n: &str| Symbol::new(n);
    let mut schema = Schema::new();
    schema.add_class(ClassDef {
        name: s(names::PERSON),
        state: Type::record(vec![(s("name"), Type::Str), (s("age"), Type::Int)]),
        extent: Some(s(names::PERSONS)),
        superclass: None,
    });
    schema.add_class(ClassDef {
        name: s(names::EMPLOYEE),
        state: Type::record(vec![
            (s("salary"), Type::Int),
            (s("dept"), Type::Str),
        ]),
        extent: Some(s(names::EMPLOYEES)),
        superclass: Some(s(names::PERSON)),
    });
    schema.add_class(ClassDef {
        name: s(names::MANAGER),
        state: Type::record(vec![(s(
            "reports",
        ), Type::list(Type::Class(s(names::EMPLOYEE))))]),
        extent: Some(s(names::MANAGERS)),
        superclass: Some(s(names::EMPLOYEE)),
    });
    // Staff: bag of Employee-typed objects (managers are employees).
    schema.add_name(s(names::STAFF), Type::bag(Type::Class(s(names::EMPLOYEE))));
    schema
}

const DEPTS: &[&str] = &["engineering", "sales", "support", "finance"];

/// Generate a company: `managers` managers with `reports_per_manager`
/// direct reports each, plus `extra_people` plain persons.
pub fn generate(
    managers: usize,
    reports_per_manager: usize,
    extra_people: usize,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new(schema());
    let person_c = Symbol::new(names::PERSON);
    let employee_c = Symbol::new(names::EMPLOYEE);
    let manager_c = Symbol::new(names::MANAGER);

    let mut staff = Vec::new();
    for mi in 0..managers {
        let mut reports = Vec::with_capacity(reports_per_manager);
        for ri in 0..reports_per_manager {
            let oid = db
                .insert(
                    employee_c,
                    Value::record_from(vec![
                        ("name", Value::str(&format!("emp_{mi}_{ri}"))),
                        ("age", Value::Int(rng.random_range(21..65))),
                        ("salary", Value::Int(rng.random_range(40_000..120_000))),
                        (
                            "dept",
                            Value::str(DEPTS[rng.random_range(0..DEPTS.len())]),
                        ),
                    ]),
                )
                .expect("insert employee");
            reports.push(Value::Obj(oid));
        }
        let moid = db
            .insert(
                manager_c,
                Value::record_from(vec![
                    ("name", Value::str(&format!("mgr_{mi}"))),
                    ("age", Value::Int(rng.random_range(30..65))),
                    ("salary", Value::Int(rng.random_range(90_000..200_000))),
                    ("dept", Value::str(DEPTS[mi % DEPTS.len()])),
                    ("reports", Value::list(reports.clone())),
                ]),
            )
            .expect("insert manager");
        staff.push(Value::Obj(moid));
        staff.extend(reports);
    }
    for pi in 0..extra_people {
        db.insert(
            person_c,
            Value::record_from(vec![
                ("name", Value::str(&format!("person_{pi}"))),
                ("age", Value::Int(rng.random_range(1..95))),
            ]),
        )
        .expect("insert person");
    }
    db.set_root(names::STAFF, Value::bag_from(staff));
    db
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::expr::Expr;
    use monoid_calculus::monoid::Monoid;
    use monoid_calculus::typecheck::TypeChecker;
    use monoid_calculus::types::Type;

    #[test]
    fn inherited_fields_type_check_through_subclasses() {
        let schema = schema();
        // Manager inherits name (Person) and salary (Employee).
        let state = schema.class_state(Symbol::new(names::MANAGER)).unwrap();
        assert!(state.field(Symbol::new("name")).is_some());
        assert!(state.field(Symbol::new("salary")).is_some());
        assert!(state.field(Symbol::new("reports")).is_some());
        // And m.name type-checks on a Manager-typed generator.
        let q = Expr::comp(
            Monoid::Bag,
            Expr::var("m").proj("name"),
            vec![Expr::gen("m", Expr::var(names::MANAGERS))],
        );
        let mut tc = TypeChecker::with_schema(&schema);
        let t = tc
            .check(&monoid_calculus::typecheck::TypeEnv::new(), &q)
            .unwrap();
        assert_eq!(t, Type::bag(Type::Str));
    }

    #[test]
    fn queries_over_superclass_typed_root() {
        let mut db = generate(3, 4, 5, 11);
        // Staff is typed at Employee; salary (Employee field) works even
        // though some members are Managers.
        let q = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen("s", Expr::var(names::STAFF)),
                Expr::pred(Expr::var("s").proj("salary").gt(Expr::int(0))),
            ],
        );
        db.check(&q).unwrap();
        assert_eq!(
            db.query(&q).unwrap(),
            Value::Int(3 * 4 + 3) // reports + managers
        );
    }

    #[test]
    fn navigating_manager_reports() {
        let mut db = generate(2, 3, 0, 11);
        // sum of report salaries per the whole company.
        let q = Expr::comp(
            Monoid::Sum,
            Expr::var("r").proj("salary"),
            vec![
                Expr::gen("m", Expr::var(names::MANAGERS)),
                Expr::gen("r", Expr::var("m").proj("reports")),
            ],
        );
        db.check(&q).unwrap();
        let Value::Int(total) = db.query(&q).unwrap() else { panic!() };
        assert!(total >= 6 * 40_000);
    }

    #[test]
    fn extents_are_most_specific_class() {
        let db = generate(2, 3, 4, 11);
        assert_eq!(db.extent_len(names::MANAGERS), 2);
        assert_eq!(db.extent_len(names::EMPLOYEES), 6);
        assert_eq!(db.extent_len(names::PERSONS), 4);
        // Staff = managers + employees.
        assert_eq!(
            db.root(Symbol::new(names::STAFF)).unwrap().len().unwrap(),
            8
        );
    }

    #[test]
    fn subclass_unifies_with_superclass_in_comparisons() {
        let schema = schema();
        let mut tc = TypeChecker::with_schema(&schema);
        let t = tc
            .unify(
                &Type::Class(Symbol::new(names::MANAGER)),
                &Type::Class(Symbol::new(names::EMPLOYEE)),
                "test",
            )
            .unwrap();
        assert_eq!(t, Type::Class(Symbol::new(names::EMPLOYEE)));
        // Unrelated classes do not unify.
        assert!(tc
            .unify(
                &Type::Class(Symbol::new(names::PERSON)),
                &Type::Class(Symbol::new("City")),
                "test",
            )
            .is_err());
    }
}
