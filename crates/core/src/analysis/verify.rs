//! The stage invariant verifier (normalization stage).
//!
//! Every Table-3 rule is *supposed* to preserve typing, scoping, and the
//! C/I legality restriction — the paper's manipulability claim depends on
//! it. [`check_rewrite`] machine-checks those invariants after each rule
//! firing, so a buggy rewrite is caught at the step that introduced the
//! violation (with the rule name attached) instead of surfacing as a wrong
//! answer three stages later.
//!
//! All checks are **differential**: a violation only fails the check if it
//! is present in the term *after* the rewrite but not *before*. This keeps
//! the verifier sound on inputs that were already questionable (hand-built
//! test terms, deliberately-illegal probes): the normalizer is only
//! responsible for not making things worse.
//!
//! Verification is on by default in debug builds and off in release;
//! `MONOID_VERIFY=1` forces it on (and `MONOID_VERIFY=0` off) in either.
//! Failures increment `analysis_verify_failures_total{stage}`.

use crate::expr::{Expr, Qual};
use crate::monoid::Monoid;
use crate::subst::free_vars;
use crate::symbol::Symbol;
use crate::typecheck::infer;
use crate::types::Type;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::OnceLock;

/// A stage-tagged invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Which verifier stage tripped, e.g. `normalize/scoping`,
    /// `normalize/legality`, `normalize/typing`, `plan/build`.
    pub stage: &'static str,
    /// The normalize rule that fired, when the stage is per-rewrite.
    pub rule: Option<&'static str>,
    pub message: String,
}

impl VerifyError {
    pub fn new(stage: &'static str, message: impl Into<String>) -> VerifyError {
        VerifyError { stage, rule: None, message: message.into() }
    }

    fn with_rule(mut self, rule: &'static str) -> VerifyError {
        self.rule = Some(rule);
        self
    }
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] ", self.stage)?;
        if let Some(rule) = self.rule {
            write!(f, "after rule `{rule}`: ")?;
        }
        write!(f, "{}", self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Is stage verification enabled? Defaults to `cfg(debug_assertions)`;
/// `MONOID_VERIFY=1`/`true` forces it on, `MONOID_VERIFY=0`/`false` off.
/// Resolved once per process.
pub fn verify_enabled() -> bool {
    static ENABLED: OnceLock<bool> = OnceLock::new();
    *ENABLED.get_or_init(|| match std::env::var("MONOID_VERIFY") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => true,
        Ok(v) if v == "0" || v.eq_ignore_ascii_case("false") => false,
        _ => cfg!(debug_assertions),
    })
}

/// Count a verifier failure into the process-wide metrics registry.
/// Public so downstream verifiers (the plan verifier in `monoid-algebra`)
/// feed the same `analysis_verify_failures_total{stage}` family.
pub fn record_failure(stage: &'static str) {
    crate::metrics::global()
        .counter_with("analysis_verify_failures_total", &[("stage", stage)])
        .inc();
}

/// Check that the rewrite `before ⇒ after` (attributed to `rule`)
/// preserved the stage invariants. Differential: see the module docs.
pub fn check_rewrite(
    rule: &'static str,
    before: &Expr,
    after: &Expr,
) -> Result<(), VerifyError> {
    let result = check_rewrite_inner(before, after).map_err(|e| e.with_rule(rule));
    if let Err(e) = &result {
        record_failure(e.stage);
    }
    result
}

fn check_rewrite_inner(before: &Expr, after: &Expr) -> Result<(), VerifyError> {
    // 1. Scoping: a rewrite may drop free variables (e.g. N11 collapses a
    //    comprehension to zero) but must never introduce one.
    let fv_before = free_vars(before);
    for v in free_vars(after) {
        if !fv_before.contains(&v) {
            return Err(VerifyError::new(
                "normalize/scoping",
                format!("rewrite introduced free variable `{}`", v.as_str()),
            ));
        }
    }

    // 2. C/I legality: no new illegal generator/hom may appear.
    let illegal_before = legality_violations(before);
    for v in legality_violations(after) {
        if !illegal_before.contains(&v) {
            return Err(VerifyError::new("normalize/legality", v));
        }
    }

    // 3. Well-formedness: no new duplicate record labels or duplicate
    //    binders within one qualifier list.
    let wf_before = well_formedness_violations(before);
    for v in well_formedness_violations(after) {
        if !wf_before.contains(&v) {
            return Err(VerifyError::new("normalize/well-formed", v));
        }
    }

    // 4. Type preservation: if the input inferred, the output must too,
    //    and ground result types must agree. (Inference variables get
    //    fresh ids per run, so only ground types are comparable.)
    if let Ok(t_before) = infer(before) {
        match infer(after) {
            Err(e) => {
                return Err(VerifyError::new(
                    "normalize/typing",
                    format!("rewrite broke typing: {e}"),
                ));
            }
            Ok(t_after) => {
                if is_ground(&t_before)
                    && is_ground(&t_after)
                    && !types_compatible(&t_before, &t_after)
                {
                    return Err(VerifyError::new(
                        "normalize/typing",
                        format!("rewrite changed type: `{t_before}` → `{t_after}`"),
                    ));
                }
            }
        }
    }

    Ok(())
}

/// Are two ground types interchangeable for the purposes of rewrite
/// verification? Strict equality is too strong: `Null` unifies with
/// anything (it is the zero of `max`/`min`), and `zero_sum` infers `Int`
/// even when the surrounding aggregation is over floats.
fn types_compatible(a: &Type, b: &Type) -> bool {
    match (a, b) {
        (Type::Null, _) | (_, Type::Null) => true,
        (Type::Int | Type::Float, Type::Int | Type::Float) => true,
        (Type::Record(x), Type::Record(y)) => {
            x.len() == y.len()
                && x.iter()
                    .zip(y)
                    .all(|((na, ta), (nb, tb))| na == nb && types_compatible(ta, tb))
        }
        (Type::Tuple(x), Type::Tuple(y)) => {
            x.len() == y.len() && x.iter().zip(y).all(|(ta, tb)| types_compatible(ta, tb))
        }
        (Type::Coll(ka, ea), Type::Coll(kb, eb)) => ka == kb && types_compatible(ea, eb),
        (Type::Vector(x), Type::Vector(y)) | (Type::Obj(x), Type::Obj(y)) => {
            types_compatible(x, y)
        }
        (Type::Fn(a1, r1), Type::Fn(a2, r2)) => {
            types_compatible(a1, a2) && types_compatible(r1, r2)
        }
        _ => a == b,
    }
}

/// Does `t` contain no unsolved inference variables?
fn is_ground(t: &Type) -> bool {
    match t {
        Type::Bool | Type::Int | Type::Float | Type::Str | Type::Null | Type::Class(_) => true,
        Type::Var(_) => false,
        Type::Record(fields) => fields.iter().all(|(_, ft)| is_ground(ft)),
        Type::Tuple(items) => items.iter().all(is_ground),
        Type::Coll(_, inner) | Type::Vector(inner) | Type::Obj(inner) => is_ground(inner),
        Type::Fn(a, b) => is_ground(a) && is_ground(b),
    }
}

/// The monoid of `e`'s value, when statically evident from its shape.
/// `None` for variables, projections, and anything else whose collection
/// kind only the type checker knows.
pub fn source_monoid(e: &Expr) -> Option<Monoid> {
    use crate::expr::UnOp;
    match e {
        Expr::Zero(m) | Expr::Unit(m, _) | Expr::Merge(m, _, _) | Expr::CollLit(m, _) => {
            Some(m.clone())
        }
        Expr::Comp { monoid, .. } | Expr::Hom { monoid, .. } => Some(monoid.clone()),
        Expr::UnOp(UnOp::ToBag, _) => Some(Monoid::Bag),
        Expr::UnOp(UnOp::ToList, _) => Some(Monoid::List),
        Expr::UnOp(UnOp::ToSet, _) => Some(Monoid::Set),
        Expr::If(_, t, f) => {
            let mt = source_monoid(t)?;
            let mf = source_monoid(f)?;
            (mt == mf).then_some(mt)
        }
        _ => None,
    }
}

/// Every C/I legality violation in `e` whose source monoid is statically
/// evident, as stable description strings (a `BTreeSet` so the
/// differential comparison is order-independent; descriptions deliberately
/// omit binder names, which α-renaming may change mid-derivation).
pub fn legality_violations(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    e.visit(&mut |node| match node {
        Expr::Comp { monoid, quals, .. } => {
            for q in quals {
                if let Qual::Gen(_, src) = q {
                    if let Some(sm) = source_monoid(src) {
                        if !sm.hom_legal_to(monoid) {
                            out.insert(format!(
                                "generator iterates a {sm} source inside a {monoid} \
                                 comprehension ({} ⋠ {})",
                                sm.props(),
                                monoid.props(),
                            ));
                        }
                    }
                }
            }
        }
        Expr::Hom { monoid, source, .. } => {
            if let Some(sm) = source_monoid(source) {
                if !sm.hom_legal_to(monoid) {
                    out.insert(format!(
                        "hom[{sm}→{monoid}] is illegal ({} ⋠ {})",
                        sm.props(),
                        monoid.props(),
                    ));
                }
            }
        }
        _ => {}
    });
    out
}

/// Structural well-formedness violations: duplicate record labels and
/// duplicate binders within a single qualifier list.
pub fn well_formedness_violations(e: &Expr) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    e.visit(&mut |node| match node {
        Expr::Record(fields) => {
            let mut seen: BTreeSet<Symbol> = BTreeSet::new();
            for (name, _) in fields {
                if !seen.insert(*name) {
                    out.insert(format!("record has duplicate label `{}`", name.as_str()));
                }
            }
        }
        Expr::Comp { quals, .. } | Expr::VecComp { quals, .. } => {
            // Re-binding the same name later in the list is legal shadowing
            // (and linted as MC003); what is malformed is one VecGen
            // binding elem and index to the same symbol.
            for q in quals {
                if let Qual::VecGen { elem, index, .. } = q {
                    if elem == index {
                        out.insert(format!(
                            "vector generator binds `{}` as both element and index",
                            elem.as_str()
                        ));
                    }
                }
            }
        }
        _ => {}
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_rewrite_passes() {
        // N10: drop a `true` predicate — no invariant is disturbed.
        let before = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::var("xs")), Expr::pred(Expr::bool(true))],
        );
        let after = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::var("xs"))],
        );
        assert!(check_rewrite("true-predicate", &before, &after).is_ok());
    }

    #[test]
    fn introduced_free_variable_is_caught() {
        let before = Expr::int(1).add(Expr::int(2));
        let after = Expr::int(1).add(Expr::var("oops"));
        let err = check_rewrite("beta", &before, &after).unwrap_err();
        assert_eq!(err.stage, "normalize/scoping");
        assert_eq!(err.rule, Some("beta"));
        assert!(err.message.contains("oops"));
    }

    #[test]
    fn deliberately_illegal_rewrite_is_caught_with_stage_tag() {
        // A bogus "rewrite" that turns a legal bag-over-list comprehension
        // into one that iterates a *set* literal inside a *list*
        // comprehension — set ⋠ list, the paper's central restriction.
        let before = Expr::comp(
            Monoid::List,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::list_of(vec![Expr::int(1)]))],
        );
        let after = Expr::comp(
            Monoid::List,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1)]))],
        );
        let err = check_rewrite("merge-generator", &before, &after).unwrap_err();
        assert_eq!(err.stage, "normalize/legality");
        assert_eq!(err.rule, Some("merge-generator"));
        assert!(err.message.contains("set"), "message names the source monoid: {err}");
    }

    #[test]
    fn differential_check_tolerates_preexisting_violations() {
        // The illegal generator exists before AND after: the rewrite (which
        // only touched the head) did not make things worse, so it passes.
        let mk = |head: Expr| {
            Expr::comp(
                Monoid::List,
                head,
                vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1)]))],
            )
        };
        let before = mk(Expr::var("x").add(Expr::int(0)));
        let after = mk(Expr::var("x"));
        assert!(check_rewrite("beta", &before, &after).is_ok());
    }

    #[test]
    fn type_breaking_rewrite_is_caught() {
        let before = Expr::int(1).add(Expr::int(2));
        let after = Expr::int(1).add(Expr::bool(true));
        let err = check_rewrite("proj", &before, &after).unwrap_err();
        assert_eq!(err.stage, "normalize/typing");
    }

    #[test]
    fn type_changing_rewrite_is_caught() {
        let before = Expr::int(1).add(Expr::int(2));
        let after = Expr::str("three");
        let err = check_rewrite("proj", &before, &after).unwrap_err();
        assert_eq!(err.stage, "normalize/typing");
        assert!(err.message.contains("changed type"));
    }

    #[test]
    fn duplicate_record_label_is_caught() {
        let before = Expr::record(vec![("a", Expr::int(1)), ("b", Expr::int(2))]);
        let after = Expr::record(vec![("a", Expr::int(1)), ("a", Expr::int(2))]);
        let err = check_rewrite("proj", &before, &after).unwrap_err();
        assert_eq!(err.stage, "normalize/well-formed");
    }

    #[test]
    fn source_monoid_sees_through_shapes() {
        assert_eq!(source_monoid(&Expr::set_of(vec![])), Some(Monoid::Set));
        assert_eq!(
            source_monoid(&Expr::merge(Monoid::Bag, Expr::var("a"), Expr::var("b"))),
            Some(Monoid::Bag)
        );
        assert_eq!(source_monoid(&Expr::var("xs")), None);
    }
}
