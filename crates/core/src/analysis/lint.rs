//! The lint pass: structured diagnostics with stable codes.
//!
//! | code  | meaning |
//! |-------|---------|
//! | MC001 | unused generator variable |
//! | MC002 | constant / unsatisfiable predicate |
//! | MC003 | shadowed binding |
//! | MC004 | duplicate generator under an idempotent merge |
//! | MC005 | comprehension that cannot parallelize (with the reason) |
//! | MC006 | hom/generator legality near-miss, with a fix hint |
//!
//! Lints run over the *translated, pre-normalization* calculus term — that
//! is the shape closest to what the user wrote, and the shape the OQL
//! span map ([`SpanMap`]) keys on. Binders synthesized by the translator
//! or normalizer carry a `%` in their name ([`Symbol::fresh`]) and are
//! never linted.
//!
//! Every emitted diagnostic increments
//! `analysis_diagnostics_total{code}` in the process-wide registry.

use super::effects::effects_of;
use super::verify::source_monoid;
use super::Span;
use crate::expr::{BinOp, Expr, Literal, Qual};
use crate::monoid::Monoid;
use crate::normalize::is_pure;
use crate::symbol::Symbol;
use std::fmt;

/// Diagnostic severity, ordered: `Info < Warning < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    Info,
    Warning,
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable diagnostic codes. Codes are append-only across releases;
/// tools may match on [`Code::as_str`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// MC001: a generator binds a variable never used afterwards.
    UnusedGenerator,
    /// MC002: a predicate is constant or unsatisfiable.
    ConstantPredicate,
    /// MC003: a binder shadows an enclosing binding of the same name.
    ShadowedBinding,
    /// MC004: duplicate generator source under an idempotent merge.
    DuplicateGenerator,
    /// MC005: the query cannot be evaluated in parallel, with the reason.
    NotParallelizable,
    /// MC006: a hom/generator violates the C/I restriction; a coercion
    /// would fix it.
    IllegalHom,
    /// MC007: an independent generator with no join predicate linking it
    /// to the earlier generators — a cross product.
    CrossProduct,
    /// MC008: a predicate is statically empty under the gathered domains.
    StaticallyEmpty,
    /// MC009: the query falls back from the fused engine, with the
    /// certificate's reason.
    FusedFallback,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::UnusedGenerator => "MC001",
            Code::ConstantPredicate => "MC002",
            Code::ShadowedBinding => "MC003",
            Code::DuplicateGenerator => "MC004",
            Code::NotParallelizable => "MC005",
            Code::IllegalHom => "MC006",
            Code::CrossProduct => "MC007",
            Code::StaticallyEmpty => "MC008",
            Code::FusedFallback => "MC009",
        }
    }

    pub fn default_severity(self) -> Severity {
        match self {
            Code::UnusedGenerator | Code::ConstantPredicate | Code::ShadowedBinding
            | Code::DuplicateGenerator | Code::CrossProduct | Code::StaticallyEmpty => {
                Severity::Warning
            }
            Code::NotParallelizable | Code::FusedFallback => Severity::Info,
            Code::IllegalHom => Severity::Error,
        }
    }

    pub fn all() -> &'static [Code] {
        &[
            Code::UnusedGenerator,
            Code::ConstantPredicate,
            Code::ShadowedBinding,
            Code::DuplicateGenerator,
            Code::NotParallelizable,
            Code::IllegalHom,
            Code::CrossProduct,
            Code::StaticallyEmpty,
            Code::FusedFallback,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// One structured diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub code: Code,
    pub severity: Severity,
    /// Best-effort source position; `None` for synthesized terms or when
    /// no span map was supplied.
    pub span: Option<Span>,
    pub message: String,
    pub note: Option<String>,
}

impl Diagnostic {
    fn new(code: Code, message: String) -> Diagnostic {
        Diagnostic {
            code,
            severity: code.default_severity(),
            span: None,
            message,
            note: None,
        }
    }

    fn at(mut self, span: Option<Span>) -> Diagnostic {
        self.span = span;
        self
    }

    fn note(mut self, note: String) -> Diagnostic {
        self.note = Some(note);
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.code.as_str())?;
        if let Some(span) = self.span {
            write!(f, " {span}")?;
        }
        write!(f, ": {}", self.message)?;
        if let Some(note) = &self.note {
            write!(f, " (note: {note})")?;
        }
        Ok(())
    }
}

/// Best-effort map from calculus subterms (and binder symbols) back to
/// OQL source positions. Lookup is structural (`Expr: PartialEq`) over a
/// small vector — span maps hold one entry per surface construct, so
/// linear scan is fine.
#[derive(Debug, Clone, Default)]
pub struct SpanMap {
    exprs: Vec<(Expr, Span)>,
    vars: Vec<(Symbol, Span)>,
}

impl SpanMap {
    pub fn new() -> SpanMap {
        SpanMap::default()
    }

    pub fn record_expr(&mut self, e: &Expr, span: Span) {
        self.exprs.push((e.clone(), span));
    }

    pub fn record_var(&mut self, v: Symbol, span: Span) {
        self.vars.push((v, span));
    }

    /// The position of the first recorded subterm structurally equal to
    /// `e`, if any.
    pub fn expr_span(&self, e: &Expr) -> Option<Span> {
        self.exprs.iter().find(|(k, _)| k == e).map(|(_, s)| *s)
    }

    pub fn var_span(&self, v: Symbol) -> Option<Span> {
        self.vars.iter().find(|(k, _)| *k == v).map(|(_, s)| *s)
    }

    pub fn is_empty(&self) -> bool {
        self.exprs.is_empty() && self.vars.is_empty()
    }
}

/// Lint `e` with no source spans.
pub fn lint(e: &Expr) -> Vec<Diagnostic> {
    lint_with_spans(e, &SpanMap::default())
}

/// Lint `e`, attaching source positions from `spans` where available.
pub fn lint_with_spans(e: &Expr, spans: &SpanMap) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mut scope: Vec<Symbol> = Vec::new();
    walk(e, &mut scope, spans, &mut diags);
    parallel_lint(e, spans, &mut diags);
    record_metrics(&diags);
    diags
}

/// Was this name invented by `Symbol::fresh` (or deliberately
/// underscore-silenced)? Fresh names carry `%`, which cannot appear in a
/// parsed identifier.
pub(super) fn synthesized(v: Symbol) -> bool {
    v.as_str().contains('%') || v.as_str().starts_with('_')
}

fn shadow_check(v: Symbol, scope: &[Symbol], spans: &SpanMap, diags: &mut Vec<Diagnostic>) {
    if !synthesized(v) && scope.contains(&v) {
        diags.push(
            Diagnostic::new(
                Code::ShadowedBinding,
                format!("binding `{}` shadows an enclosing binding of the same name", v.as_str()),
            )
            .at(spans.var_span(v)),
        );
    }
}

fn walk(e: &Expr, scope: &mut Vec<Symbol>, spans: &SpanMap, diags: &mut Vec<Diagnostic>) {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) | Expr::Zero(_) => {}
        Expr::Record(fields) => {
            for (_, fe) in fields {
                walk(fe, scope, spans, diags);
            }
        }
        Expr::Tuple(items) | Expr::CollLit(_, items) | Expr::VecLit(items) => {
            for i in items {
                walk(i, scope, spans, diags);
            }
        }
        Expr::Proj(inner, _)
        | Expr::TupleProj(inner, _)
        | Expr::UnOp(_, inner)
        | Expr::Unit(_, inner)
        | Expr::New(inner)
        | Expr::Deref(inner) => walk(inner, scope, spans, diags),
        Expr::BinOp(_, a, b)
        | Expr::Apply(a, b)
        | Expr::Merge(_, a, b)
        | Expr::VecIndex(a, b)
        | Expr::Assign(a, b) => {
            walk(a, scope, spans, diags);
            walk(b, scope, spans, diags);
        }
        Expr::If(c, t, f) => {
            walk(c, scope, spans, diags);
            walk(t, scope, spans, diags);
            walk(f, scope, spans, diags);
        }
        Expr::Lambda(param, body) => {
            shadow_check(*param, scope, spans, diags);
            scope.push(*param);
            walk(body, scope, spans, diags);
            scope.pop();
        }
        Expr::Let(v, def, body) => {
            walk(def, scope, spans, diags);
            shadow_check(*v, scope, spans, diags);
            scope.push(*v);
            walk(body, scope, spans, diags);
            scope.pop();
        }
        Expr::Hom { monoid, var, body, source } => {
            walk(source, scope, spans, diags);
            hom_legality(monoid, source, spans, diags);
            shadow_check(*var, scope, spans, diags);
            scope.push(*var);
            walk(body, scope, spans, diags);
            scope.pop();
        }
        Expr::Comp { monoid, head, quals } => {
            lint_comp(monoid, head, quals, None, scope, spans, diags);
        }
        Expr::VecComp { size, value, index, quals, .. } => {
            walk(size, scope, spans, diags);
            // Vector comprehensions share the qualifier checks but have no
            // single output monoid to test generator legality against.
            lint_quals_and_heads(quals, &[value, index], scope, spans, diags, None);
        }
    }
}

/// All the per-comprehension lints: MC001/MC002/MC003/MC004/MC006.
fn lint_comp(
    monoid: &Monoid,
    head: &Expr,
    quals: &[Qual],
    _extra: Option<&Expr>,
    scope: &mut Vec<Symbol>,
    spans: &SpanMap,
    diags: &mut Vec<Diagnostic>,
) {
    lint_quals_and_heads(quals, &[head], scope, spans, diags, Some(monoid));

    // MC001 / MC004: a generator variable unused by everything after it.
    for (i, q) in quals.iter().enumerate() {
        let Qual::Gen(v, src) = q else { continue };
        if synthesized(*v) {
            continue;
        }
        // Scoping-correct usage test: is `v` free in the residual
        // comprehension made of the remaining qualifiers and the head?
        let rest = Expr::Comp {
            monoid: monoid.clone(),
            head: Box::new(head.clone()),
            quals: quals[i + 1..].to_vec(),
        };
        if crate::subst::free_vars(&rest).contains(v) {
            continue;
        }
        let duplicate_of = monoid.props().idempotent.then(|| {
            quals[..i].iter().find_map(|prev| match prev {
                Qual::Gen(pv, psrc) if psrc == src && is_pure(src) => Some(*pv),
                _ => None,
            })
        });
        match duplicate_of.flatten() {
            Some(pv) => diags.push(
                Diagnostic::new(
                    Code::DuplicateGenerator,
                    format!(
                        "generator `{}` duplicates the source of `{}`; under the idempotent \
                         `{monoid}` merge it contributes nothing",
                        v.as_str(),
                        pv.as_str()
                    ),
                )
                .at(spans.var_span(*v))
                .note("remove the duplicate generator".into()),
            ),
            None => diags.push(
                Diagnostic::new(
                    Code::UnusedGenerator,
                    format!("generator variable `{}` is never used", v.as_str()),
                )
                .at(spans.var_span(*v))
                .note(format!(
                    "it still drives iteration (multiplicity); rename to `_{}` to silence",
                    v.as_str()
                )),
            ),
        }
    }
}

/// Shared qualifier walk: recurse into sources/predicates with the right
/// scope, check MC002/MC003/MC006 per qualifier, then walk the head(s).
fn lint_quals_and_heads(
    quals: &[Qual],
    heads: &[&Expr],
    scope: &mut Vec<Symbol>,
    spans: &SpanMap,
    diags: &mut Vec<Diagnostic>,
    monoid: Option<&Monoid>,
) {
    let depth = scope.len();
    for q in quals {
        match q {
            Qual::Gen(v, src) => {
                walk(src, scope, spans, diags);
                if let Some(m) = monoid {
                    gen_legality(*v, m, src, spans, diags);
                }
                shadow_check(*v, scope, spans, diags);
                scope.push(*v);
            }
            Qual::Bind(v, src) => {
                walk(src, scope, spans, diags);
                shadow_check(*v, scope, spans, diags);
                scope.push(*v);
            }
            Qual::VecGen { elem, index, source } => {
                walk(source, scope, spans, diags);
                shadow_check(*elem, scope, spans, diags);
                shadow_check(*index, scope, spans, diags);
                scope.push(*elem);
                scope.push(*index);
            }
            Qual::Pred(p) => {
                walk(p, scope, spans, diags);
                constant_predicate(p, spans, diags);
            }
        }
    }
    for h in heads {
        walk(h, scope, spans, diags);
    }
    scope.truncate(depth);
}

/// Does the term mention a late-bound `$param`? Parameterized predicates
/// are never constant — their truth depends on the per-call binding.
fn mentions_param(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |n| found |= matches!(n, Expr::Param(_)));
    found
}

/// MC002: predicates that are constant (literal booleans, trivially
/// true/false comparisons of a pure expression with itself). Predicates
/// that compare against a `$param` are exempt: the binding varies per
/// execution, so nothing about them is constant.
fn constant_predicate(p: &Expr, spans: &SpanMap, diags: &mut Vec<Diagnostic>) {
    if mentions_param(p) {
        return;
    }
    let verdict = match p {
        Expr::Lit(Literal::Bool(b)) => Some(*b),
        Expr::BinOp(op, a, b) if a == b && is_pure(a) => match op {
            BinOp::Eq | BinOp::Le | BinOp::Ge => Some(true),
            BinOp::Ne | BinOp::Lt | BinOp::Gt => Some(false),
            _ => None,
        },
        _ => None,
    };
    let Some(truth) = verdict else { return };
    let mut d = Diagnostic::new(
        Code::ConstantPredicate,
        format!(
            "predicate is always {}",
            if truth { "true" } else { "false" }
        ),
    )
    .at(spans.expr_span(p));
    if !truth {
        d = d.note("the comprehension is unsatisfiable and always yields zero".into());
    }
    diags.push(d);
}

/// MC006 for `hom[N→M]` with a statically-evident illegal `N`.
fn hom_legality(target: &Monoid, source: &Expr, spans: &SpanMap, diags: &mut Vec<Diagnostic>) {
    let Some(sm) = source_monoid(source) else { return };
    if sm.hom_legal_to(target) {
        return;
    }
    diags.push(
        Diagnostic::new(
            Code::IllegalHom,
            format!(
                "hom[{sm}→{target}] violates the C/I restriction ({} ⋠ {})",
                sm.props(),
                target.props()
            ),
        )
        .at(spans.expr_span(source))
        .note(legality_hint(&sm, target)),
    );
}

/// MC006 for a generator whose statically-evident source monoid is not
/// `≤` the output monoid.
fn gen_legality(
    v: Symbol,
    target: &Monoid,
    source: &Expr,
    spans: &SpanMap,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(sm) = source_monoid(source) else { return };
    if sm.hom_legal_to(target) {
        return;
    }
    diags.push(
        Diagnostic::new(
            Code::IllegalHom,
            format!(
                "generator `{} ← …` iterates a {sm} source inside a {target} comprehension \
                 ({} ⋠ {})",
                v.as_str(),
                sm.props(),
                target.props()
            ),
        )
        .at(spans.expr_span(source).or_else(|| spans.var_span(v)))
        .note(legality_hint(&sm, target)),
    );
}

/// The fix hint for a C/I near-miss, mirroring the translator's
/// documented coercions.
fn legality_hint(source: &Monoid, target: &Monoid) -> String {
    let sp = source.props();
    let tp = target.props();
    if sp.idempotent && !tp.idempotent {
        format!(
            "wrap the source in the deterministic coercion `to_bag(…)`, or choose an \
             idempotent target (e.g. `set`, `sorted`) instead of `{target}`"
        )
    } else {
        format!(
            "choose a commutative target (e.g. `bag`, `sorted`) instead of `{target}`, or \
             impose an explicit order on the source with `to_list(…)`"
        )
    }
}

/// MC005: can this query run under partitioned parallel reduction? One
/// diagnostic per obstacle, each stating the reason.
fn parallel_lint(root: &Expr, spans: &SpanMap, diags: &mut Vec<Diagnostic>) {
    let eff = effects_of(root);
    let mut obstacles: Vec<String> = Vec::new();
    if eff.mutates {
        obstacles.push(
            "it mutates the heap (`:=`); partitioned workers would race on object state".into(),
        );
    }
    if let Expr::Comp { quals, .. } = root {
        let has_gen = quals
            .iter()
            .any(|q| matches!(q, Qual::Gen(..) | Qual::VecGen { .. }));
        if !has_gen {
            obstacles.push("it has no generators, so there is nothing to partition".into());
        }
    }
    for reason in obstacles {
        diags.push(
            Diagnostic::new(
                Code::NotParallelizable,
                format!("query cannot be evaluated in parallel: {reason}"),
            )
            .at(spans.expr_span(root)),
        );
    }
}

/// Bump `analysis_diagnostics_total{code}` for each emitted diagnostic.
/// Handles are resolved once per process.
pub(super) fn record_metrics(diags: &[Diagnostic]) {
    use crate::metrics::{global, Counter};
    use std::sync::{Arc, OnceLock};
    static HANDLES: OnceLock<Vec<Arc<Counter>>> = OnceLock::new();
    let handles = HANDLES.get_or_init(|| {
        let r = global();
        Code::all()
            .iter()
            .map(|c| r.counter_with("analysis_diagnostics_total", &[("code", c.as_str())]))
            .collect()
    });
    for d in diags {
        let idx = Code::all().iter().position(|c| *c == d.code).expect("known code");
        handles[idx].inc();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes(diags: &[Diagnostic]) -> Vec<&'static str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn clean_query_lints_clean() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::pred(Expr::var("h").proj("city").eq(Expr::str("Portland"))),
            ],
        );
        assert!(lint(&e).is_empty(), "got {:?}", lint(&e));
    }

    #[test]
    fn mc001_unused_generator() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("x", Expr::var("xs"))],
        );
        let diags = lint(&e);
        assert_eq!(codes(&diags), vec!["MC001"]);
        assert!(diags[0].message.contains('x'));
    }

    #[test]
    fn mc001_skips_synthesized_and_silenced_names() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![
                Expr::gen(Symbol::fresh("x"), Expr::var("xs")),
                Expr::gen("_y", Expr::var("ys")),
            ],
        );
        assert!(lint(&e).is_empty());
    }

    #[test]
    fn mc002_constant_and_unsatisfiable_predicates() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::pred(Expr::bool(true)),
                Expr::pred(Expr::var("x").ne(Expr::var("x"))),
            ],
        );
        let diags = lint(&e);
        assert_eq!(codes(&diags), vec!["MC002", "MC002"]);
        assert!(diags[0].message.contains("always true"));
        assert!(diags[1].message.contains("always false"));
        assert!(diags[1].note.as_deref().unwrap_or("").contains("unsatisfiable"));
    }

    #[test]
    fn mc003_shadowed_binding() {
        // set{ set{ x | x ← ys } | x ← xs } — inner x shadows outer.
        let inner = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::var("ys"))],
        );
        let e = Expr::comp(Monoid::Set, inner, vec![Expr::gen("x", Expr::var("xs"))]);
        let diags = lint(&e);
        // The inner binder shadows the outer one — which also makes the
        // outer generator variable unused everywhere.
        assert_eq!(codes(&diags), vec!["MC003", "MC001"]);
    }

    #[test]
    fn mc004_duplicate_generator_under_idempotent_merge() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::gen("y", Expr::var("xs")),
            ],
        );
        let diags = lint(&e);
        assert_eq!(codes(&diags), vec!["MC004"]);
        // Same shape under a non-idempotent monoid: multiplicity matters,
        // so it is merely unused (MC001).
        let e2 = Expr::comp(
            Monoid::Bag,
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::gen("y", Expr::var("xs")),
            ],
        );
        assert_eq!(codes(&lint(&e2)), vec!["MC001"]);
    }

    #[test]
    fn mc005_mutation_blocks_parallelism() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("x").assign(Expr::int(1)),
            vec![Expr::gen("x", Expr::var("xs"))],
        );
        let diags = lint(&e);
        assert!(codes(&diags).contains(&"MC005"), "got {diags:?}");
        let d = diags.iter().find(|d| d.code == Code::NotParallelizable).unwrap();
        assert!(d.message.contains(":="), "reason names the mutation: {d}");
        assert_eq!(d.severity, Severity::Info);
    }

    #[test]
    fn mc006_illegal_generator_gets_fix_hint() {
        // list{ x | x ← {1} } — set into list, the canonical violation.
        let e = Expr::comp(
            Monoid::List,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::set_of(vec![Expr::int(1)]))],
        );
        let diags = lint(&e);
        assert_eq!(codes(&diags), vec!["MC006"]);
        assert_eq!(diags[0].severity, Severity::Error);
        assert!(diags[0].note.as_deref().unwrap().contains("to_bag"));
    }

    #[test]
    fn spans_attach_when_available() {
        let src = Expr::var("xs");
        let e = Expr::comp(Monoid::Sum, Expr::int(1), vec![Expr::gen("x", src)]);
        let mut spans = SpanMap::new();
        spans.record_var(Symbol::new("x"), Span::new(12, 1, 13));
        let diags = lint_with_spans(&e, &spans);
        assert_eq!(diags[0].code, Code::UnusedGenerator);
        assert_eq!(diags[0].span, Some(Span::new(12, 1, 13)));
        assert!(diags[0].to_string().contains("1:13"));
    }

    #[test]
    fn diagnostics_feed_the_metrics_registry() {
        let before = crate::metrics::global()
            .snapshot()
            .counter_with("analysis_diagnostics_total", &[("code", "MC001")]);
        let e = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("zz", Expr::var("xs"))],
        );
        let _ = lint(&e);
        let after = crate::metrics::global()
            .snapshot()
            .counter_with("analysis_diagnostics_total", &[("code", "MC001")]);
        assert_eq!(after, before + 1);
    }
}
