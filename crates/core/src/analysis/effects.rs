//! Effect inference: a bottom-up pass that classifies every subterm on a
//! small effect lattice.
//!
//! The lattice is a product of four boolean flags ordered by implication
//! (`pure` at the bottom, everything set at the top); joining two effects
//! is field-wise `or`. The flags are exactly the hazards the rest of the
//! pipeline cares about:
//!
//! * **allocates** — contains `new(e)`: evaluating it grows the heap, so a
//!   hash-join build side containing it cannot be shared across threads
//!   without OID reconciliation.
//! * **mutates** — contains `e₁ := e₂`: evaluating it writes the heap, so
//!   partitioned parallel evaluation would race.
//! * **reads_heap** — contains `!e`: result depends on heap state, so the
//!   term cannot be freely duplicated/deleted/reordered (same bar as
//!   [`crate::normalize::is_pure`]).
//! * **short_circuits** — contains a `some`/`all` reduction: executors may
//!   stop early, which the parallel engine turns into a cross-worker stop
//!   flag.
//!
//! [`EffectSummary::of`] pairs the root effect with the term's free
//! variables; at a query root the free variables are precisely the named
//! extents the query reads, so `reads_extents()` falls out for free.

use crate::expr::{Expr, Qual};
use crate::monoid::Monoid;
use crate::subst::free_vars;
use crate::symbol::Symbol;
use std::collections::BTreeSet;
use std::fmt;

/// One point of the effect lattice. `join` is field-wise `or`; the bottom
/// element is [`Effects::PURE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Effects {
    /// Contains `new(e)` — evaluation allocates heap objects.
    pub allocates: bool,
    /// Contains `e₁ := e₂` — evaluation writes the heap.
    pub mutates: bool,
    /// Contains `!e` — evaluation reads object state from the heap.
    pub reads_heap: bool,
    /// Contains a `some`/`all` reduction — evaluation may stop early.
    pub short_circuits: bool,
}

impl Effects {
    /// The bottom of the lattice: no effects at all.
    pub const PURE: Effects = Effects {
        allocates: false,
        mutates: false,
        reads_heap: false,
        short_circuits: false,
    };

    /// Least upper bound: field-wise `or`.
    pub fn join(self, other: Effects) -> Effects {
        Effects {
            allocates: self.allocates || other.allocates,
            mutates: self.mutates || other.mutates,
            reads_heap: self.reads_heap || other.reads_heap,
            short_circuits: self.short_circuits || other.short_circuits,
        }
    }

    /// Heap-independent: no allocation, no mutation, no dereference.
    /// Matches [`crate::normalize::is_pure`] exactly (short-circuiting is
    /// not an effect in that sense — a pure `some{…}` is still pure).
    pub fn is_pure(self) -> bool {
        !self.allocates && !self.mutates && !self.reads_heap
    }

    /// Safe to evaluate under partitioned parallelism: workers may
    /// allocate (reconciled afterwards) and read, but never write.
    pub fn parallel_safe(self) -> bool {
        !self.mutates
    }
}

impl fmt::Display for Effects {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<&str> = Vec::new();
        if self.allocates {
            parts.push("allocates");
        }
        if self.mutates {
            parts.push("mutates");
        }
        if self.reads_heap {
            parts.push("reads-heap");
        }
        if self.short_circuits {
            parts.push("short-circuits");
        }
        if parts.is_empty() {
            write!(f, "pure")
        } else {
            write!(f, "{}", parts.join("+"))
        }
    }
}

/// Does this monoid's reduction admit early exit?
pub fn monoid_short_circuits(m: &Monoid) -> bool {
    matches!(m, Monoid::Some | Monoid::All)
}

/// The direct (node-local) effect of `e`, ignoring children.
fn node_effect(e: &Expr) -> Effects {
    let mut eff = Effects::PURE;
    match e {
        Expr::New(_) => eff.allocates = true,
        Expr::Assign(..) => eff.mutates = true,
        Expr::Deref(_) => eff.reads_heap = true,
        Expr::Comp { monoid, .. } | Expr::Hom { monoid, .. } => {
            eff.short_circuits = monoid_short_circuits(monoid);
        }
        _ => {}
    }
    eff
}

/// The effect of `e`: the join of its node-local effect with all its
/// subterms' effects. Single bottom-up pass, no allocation.
pub fn effects_of(e: &Expr) -> Effects {
    let mut eff = Effects::PURE;
    e.visit(&mut |node| eff = eff.join(node_effect(node)));
    eff
}

/// Per-subterm effects in **pre-order** (the same order [`Expr::visit`]
/// calls its callback), so `annotate(e)[0] == effects_of(e)` and the slot
/// of any node found by a `visit`-based search lines up with its effect.
pub fn annotate(e: &Expr) -> Vec<Effects> {
    let mut out = Vec::with_capacity(e.size());
    annotate_into(e, &mut out);
    out
}

fn annotate_into(e: &Expr, out: &mut Vec<Effects>) -> Effects {
    let slot = out.len();
    out.push(Effects::PURE);
    let mut eff = node_effect(e);
    // Children in exactly Expr::visit's order.
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) | Expr::Zero(_) => {}
        Expr::Record(fields) => {
            for (_, fe) in fields {
                eff = eff.join(annotate_into(fe, out));
            }
        }
        Expr::Tuple(items) | Expr::CollLit(_, items) | Expr::VecLit(items) => {
            for i in items {
                eff = eff.join(annotate_into(i, out));
            }
        }
        Expr::Proj(inner, _)
        | Expr::TupleProj(inner, _)
        | Expr::UnOp(_, inner)
        | Expr::Lambda(_, inner)
        | Expr::Unit(_, inner)
        | Expr::New(inner)
        | Expr::Deref(inner) => eff = eff.join(annotate_into(inner, out)),
        Expr::BinOp(_, a, b)
        | Expr::Apply(a, b)
        | Expr::Merge(_, a, b)
        | Expr::VecIndex(a, b)
        | Expr::Assign(a, b)
        | Expr::Let(_, a, b) => {
            eff = eff.join(annotate_into(a, out));
            eff = eff.join(annotate_into(b, out));
        }
        Expr::If(c, t, f) => {
            eff = eff.join(annotate_into(c, out));
            eff = eff.join(annotate_into(t, out));
            eff = eff.join(annotate_into(f, out));
        }
        Expr::Hom { body, source, .. } => {
            eff = eff.join(annotate_into(body, out));
            eff = eff.join(annotate_into(source, out));
        }
        Expr::Comp { head, quals, .. } => {
            eff = eff.join(annotate_into(head, out));
            eff = eff.join(annotate_quals(quals, out));
        }
        Expr::VecComp { size, value, index, quals, .. } => {
            eff = eff.join(annotate_into(size, out));
            eff = eff.join(annotate_into(value, out));
            eff = eff.join(annotate_into(index, out));
            eff = eff.join(annotate_quals(quals, out));
        }
    }
    out[slot] = eff;
    eff
}

fn annotate_quals(quals: &[Qual], out: &mut Vec<Effects>) -> Effects {
    let mut eff = Effects::PURE;
    for q in quals {
        let src = match q {
            Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => e,
            Qual::VecGen { source, .. } => source,
        };
        eff = eff.join(annotate_into(src, out));
    }
    eff
}

/// The root-level effect classification of a query term, plus its free
/// variables. At a query root the free variables are exactly the extent
/// names the query reads (everything else is bound by a qualifier).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EffectSummary {
    pub effects: Effects,
    /// Free variables in deterministic (sorted) order.
    pub free: BTreeSet<Symbol>,
}

impl EffectSummary {
    pub fn of(e: &Expr) -> EffectSummary {
        EffectSummary {
            effects: effects_of(e),
            free: free_vars(e).into_iter().collect(),
        }
    }

    pub fn is_pure(&self) -> bool {
        self.effects.is_pure()
    }

    pub fn parallel_safe(&self) -> bool {
        self.effects.parallel_safe()
    }

    /// Does the term reference any named extent (free variable)?
    pub fn reads_extents(&self) -> bool {
        !self.free.is_empty()
    }
}

impl fmt::Display for EffectSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.effects)?;
        if self.reads_extents() {
            let names: Vec<&str> = self.free.iter().map(crate::symbol::Symbol::as_str).collect();
            write!(f, " reads[{}]", names.join(","))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize;

    #[test]
    fn pure_comprehension_is_pure() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2)]))],
        );
        let eff = effects_of(&e);
        assert!(eff.is_pure());
        assert!(eff.parallel_safe());
        assert!(!eff.short_circuits);
    }

    #[test]
    fn assignment_marks_mutation() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("x").assign(Expr::int(1)),
            vec![Expr::gen("x", Expr::var("xs"))],
        );
        let eff = effects_of(&e);
        assert!(eff.mutates);
        assert!(!eff.parallel_safe());
        assert!(!eff.is_pure());
    }

    #[test]
    fn allocation_and_deref_are_distinct_flags() {
        let alloc = Expr::new_obj(Expr::int(1));
        assert!(effects_of(&alloc).allocates);
        assert!(!effects_of(&alloc).mutates);
        let read = Expr::var("o").deref();
        assert!(effects_of(&read).reads_heap);
        assert!(!effects_of(&read).allocates);
    }

    #[test]
    fn quantifiers_short_circuit() {
        let e = Expr::comp(
            Monoid::Some,
            Expr::var("x").gt(Expr::int(0)),
            vec![Expr::gen("x", Expr::var("xs"))],
        );
        assert!(effects_of(&e).short_circuits);
        // …and the flag propagates upward through an enclosing term.
        let outer = Expr::if_(e, Expr::int(1), Expr::int(0));
        assert!(effects_of(&outer).short_circuits);
    }

    #[test]
    fn is_pure_agrees_with_normalizer() {
        let cases = vec![
            Expr::comp(
                Monoid::Set,
                Expr::var("x"),
                vec![Expr::gen("x", Expr::var("xs"))],
            ),
            Expr::new_obj(Expr::int(1)),
            Expr::var("o").deref(),
            Expr::var("o").assign(Expr::int(2)),
            Expr::let_("v", Expr::int(1), Expr::var("v").add(Expr::int(2))),
        ];
        for e in cases {
            assert_eq!(
                effects_of(&e).is_pure(),
                normalize::is_pure(&e),
                "effects_of/is_pure disagree on {e:?}"
            );
        }
    }

    #[test]
    fn annotate_aligns_with_visit_preorder() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::new_obj(Expr::var("x")),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::pred(Expr::var("x").deref().gt(Expr::int(0))),
            ],
        );
        let effs = annotate(&e);
        assert_eq!(effs.len(), e.size());
        assert_eq!(effs[0], effects_of(&e));
        // Cross-check every slot against a fresh bottom-up computation.
        let mut nodes: Vec<Expr> = Vec::new();
        e.visit(&mut |n| nodes.push(n.clone()));
        for (i, n) in nodes.iter().enumerate() {
            assert_eq!(effs[i], effects_of(n), "slot {i} ({n:?})");
        }
    }

    #[test]
    fn summary_reports_extents() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("h").proj("name"),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let s = EffectSummary::of(&e);
        assert!(s.reads_extents());
        assert_eq!(s.free.len(), 1);
        assert!(s.free.contains(&Symbol::new("Hotels")));
        assert!(s.is_pure());
    }
}
