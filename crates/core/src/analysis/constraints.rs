//! The fact domain of the abstract interpreter ([`super::infer`]): closed
//! intervals over non-negative reals, a sound selectivity algebra on
//! `[0, 1]` fractions, and the statistics catalog the algebra layer fills
//! from a live database (`Stats::gather` in `monoid-algebra`).
//!
//! The split matters for crate layering: the *shapes* of the facts live
//! here in the core (so the interpreter can reason over canonical
//! comprehensions without a store dependency), while the *numbers* are
//! gathered by whoever owns a `Database` and handed in as a [`Catalog`].
//! An empty catalog is always a sound input — every lookup misses and the
//! interpreter falls back to `[0, ∞)` / `[0, 1]` top elements.

use crate::symbol::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// A closed interval `[lo, hi]` over the non-negative reals; `hi` may be
/// `+∞`. Used both for cardinalities (absolute row counts) and, through
/// the `*_sel` combinators, for predicate selectivities in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

impl Interval {
    /// The selectivity top element: nothing is known, any fraction of the
    /// rows may survive.
    pub const ANY_FRACTION: Interval = Interval { lo: 0.0, hi: 1.0 };
    /// The cardinality top element.
    pub const UNBOUNDED: Interval = Interval { lo: 0.0, hi: f64::INFINITY };
    /// The always-true selectivity / the one-row cardinality.
    pub const ONE: Interval = Interval { lo: 1.0, hi: 1.0 };
    /// The always-false selectivity / the empty cardinality.
    pub const ZERO: Interval = Interval { lo: 0.0, hi: 0.0 };

    pub fn new(lo: f64, hi: f64) -> Interval {
        let lo = lo.max(0.0);
        Interval { lo, hi: hi.max(lo) }
    }

    pub fn point(x: f64) -> Interval {
        Interval::new(x, x)
    }

    pub fn contains(&self, x: f64) -> bool {
        x >= self.lo && x <= self.hi
    }

    pub fn is_empty(&self) -> bool {
        self.hi <= 0.0
    }

    /// Interval product (both operands non-negative). `0 × ∞` resolves to
    /// `0`: a generator over an empty extent yields no rows no matter how
    /// unbounded the other factor is.
    pub fn product(self, o: Interval) -> Interval {
        fn m(a: f64, b: f64) -> f64 {
            if a == 0.0 || b == 0.0 {
                0.0
            } else {
                a * b
            }
        }
        Interval::new(m(self.lo, o.lo), m(self.hi, o.hi))
    }

    /// Midpoint, for costing. An unbounded interval has no midpoint; fall
    /// back to `default` (clamped into the interval).
    pub fn midpoint(&self, default: f64) -> f64 {
        if self.hi.is_finite() {
            (self.lo + self.hi) / 2.0
        } else {
            default.max(self.lo)
        }
    }

    /// Geometric midpoint `√(lo·hi)` (with `lo` clamped to ≥ 1), the
    /// estimate that minimizes the worst-case *q-error* over the interval:
    /// whichever endpoint the true count lands on, the ratio is at most
    /// `√(hi/lo)`. Used for short-circuiting reductions, whose observed
    /// row count stops anywhere in `[1, hi]`.
    pub fn geometric_midpoint(&self) -> f64 {
        let lo = self.lo.max(1.0);
        if self.hi.is_finite() {
            (lo * self.hi.max(lo)).sqrt()
        } else {
            lo
        }
    }

    // ---- the sound selectivity algebra over [0, 1] fractions ----
    //
    // If the fraction of rows satisfying `A` lies in `[la, ha]` and the
    // fraction satisfying `B` in `[lb, hb]`, then by inclusion–exclusion:

    /// `A ∧ B` ∈ `[max(0, la + lb − 1), min(ha, hb)]`.
    pub fn and_sel(self, o: Interval) -> Interval {
        Interval::new((self.lo + o.lo - 1.0).max(0.0), self.hi.min(o.hi))
    }

    /// `A ∨ B` ∈ `[max(la, lb), min(1, ha + hb)]`.
    pub fn or_sel(self, o: Interval) -> Interval {
        Interval::new(self.lo.max(o.lo), (self.hi + o.hi).min(1.0))
    }

    /// `¬A` ∈ `[1 − ha, 1 − la]`.
    pub fn not_sel(self) -> Interval {
        Interval::new((1.0 - self.hi).max(0.0), (1.0 - self.lo).min(1.0))
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi.is_finite() {
            write!(f, "[{}, {}]", self.lo, self.hi)
        } else {
            write!(f, "[{}, ∞)", self.lo)
        }
    }
}

/// Per-attribute statistics of the (scalar-valued) fields of one
/// collection's element records.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AttrFacts {
    /// Rows observed carrying this attribute.
    pub count: u64,
    /// Distinct values observed.
    pub distinct: u64,
    /// The highest multiplicity of any single value — the sound
    /// "at most this many rows share a value" bound.
    pub max_freq: u64,
    /// Numeric domain, when every observed value was a number.
    pub min: Option<f64>,
    pub max: Option<f64>,
}

impl AttrFacts {
    /// Is this attribute a key of its collection (every observed value
    /// distinct)?
    pub fn unique(&self) -> bool {
        self.count > 0 && self.distinct == self.count
    }
}

/// Facts about one named extent (a database root that is a collection).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExtentFacts {
    pub size: u64,
    /// Were the extent's elements pairwise distinct when gathered? True
    /// for OID extents built by the store — the basis of the generator
    /// key certificate.
    pub distinct_elements: bool,
    pub attrs: BTreeMap<Symbol, AttrFacts>,
}

/// Facts about one named record field whose values are collections —
/// the fan-out statistics that bound dependent generators (`h ← c.hotels`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FieldFacts {
    /// Occurrences of the field with a collection value.
    pub occurrences: u64,
    pub min_fanout: u64,
    pub max_fanout: u64,
    /// Total elements across occurrences (`avg = total / occurrences`).
    pub total: u64,
    /// Attribute statistics of the element records of this collection.
    pub attrs: BTreeMap<Symbol, AttrFacts>,
}

impl FieldFacts {
    pub fn avg_fanout(&self) -> f64 {
        self.total as f64 / (self.occurrences.max(1)) as f64
    }
}

/// The statistics catalog: everything the abstract interpreter knows
/// about the data, keyed by extent name and by field name. Field facts
/// are keyed by field *name* alone (not per class), so their bounds cover
/// every occurrence of that name in the store — coarser, but sound.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Catalog {
    pub extents: BTreeMap<Symbol, ExtentFacts>,
    pub fields: BTreeMap<Symbol, FieldFacts>,
}

impl Catalog {
    pub fn extent(&self, name: Symbol) -> Option<&ExtentFacts> {
        self.extents.get(&name)
    }

    pub fn field(&self, name: Symbol) -> Option<&FieldFacts> {
        self.fields.get(&name)
    }

    /// Attribute facts for `attr` of the elements of the collection named
    /// `of` (an extent or a field), whichever is known.
    pub fn attr(&self, of: Symbol, attr: Symbol) -> Option<&AttrFacts> {
        self.extents
            .get(&of)
            .and_then(|e| e.attrs.get(&attr))
            .or_else(|| self.fields.get(&of).and_then(|f| f.attrs.get(&attr)))
    }

    pub fn is_empty(&self) -> bool {
        self.extents.is_empty() && self.fields.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interval_product_handles_zero_times_infinity() {
        let z = Interval::ZERO.product(Interval::UNBOUNDED);
        assert_eq!(z, Interval::ZERO);
        let p = Interval::point(3.0).product(Interval::new(2.0, 4.0));
        assert_eq!(p, Interval::new(6.0, 12.0));
    }

    #[test]
    fn selectivity_algebra_is_sound_on_point_fractions() {
        // A = 0.6, B = 0.5 ⇒ A∧B ∈ [0.1, 0.5], A∨B ∈ [0.6, 1].
        let a = Interval::point(0.6);
        let b = Interval::point(0.5);
        let and = a.and_sel(b);
        assert!((and.lo - 0.1).abs() < 1e-9 && (and.hi - 0.5).abs() < 1e-9);
        let or = a.or_sel(b);
        assert!((or.lo - 0.6).abs() < 1e-9 && (or.hi - 1.0).abs() < 1e-9);
        let not = a.not_sel();
        assert!((not.lo - 0.4).abs() < 1e-9 && (not.hi - 0.4).abs() < 1e-9);
    }

    #[test]
    fn geometric_midpoint_minimizes_worst_case_q_error() {
        let i = Interval::new(1.0, 100.0);
        let g = i.geometric_midpoint();
        assert!((g - 10.0).abs() < 1e-9);
        // Worst-case ratio at either endpoint is the same: 10×.
        assert!((g / i.lo - i.hi / g).abs() < 1e-9);
    }

    #[test]
    fn attr_uniqueness_requires_full_distinctness() {
        let mut a = AttrFacts { count: 5, distinct: 5, max_freq: 1, min: None, max: None };
        assert!(a.unique());
        a.distinct = 4;
        assert!(!a.unique());
        assert!(!AttrFacts::default().unique());
    }
}
