//! Constraint and cardinality inference: a bottom-up abstract
//! interpretation over canonical comprehensions.
//!
//! The paper's normal form is simple enough to *reason about*, not just
//! execute: generators range over extents and paths, predicates are
//! pushed-down boolean terms, and the whole qualifier list is
//! dependency-ordered. This module exploits that shape to derive, without
//! running anything:
//!
//! * **cardinality intervals** — a sound `[lo, hi]` bound on the number
//!   of rows that reach the reduction ([`QueryFacts::rows`]);
//! * **key / uniqueness certificates** — a generator over an extent of
//!   distinct OIDs, or a predicate equating a bound variable's unique
//!   attribute to a term not involving it, pins *at most one* element per
//!   valuation of the other variables ([`KeyCert`]);
//! * **functional dependencies** — every `v ≡ e` bind determines `v`
//!   from the generator variables free in `e` ([`FunDep`]);
//! * **engine certificates** — a static fused-eligibility and
//!   parallel-safety verdict mirroring the planner + fused compiler,
//!   with a source-spanned refusal reason ([`EngineCert`]). Under
//!   `MONOID_VERIFY` the algebra layer asserts the runtime decision
//!   matches this certificate, turning silent fallbacks into detectable
//!   analysis bugs.
//!
//! The row-interval upper bound uses *absolute-count elimination* rather
//! than selectivity multiplication: each generator contributes its size
//! bound, and a key certificate replaces that contribution with the
//! certified cap (1, or the attribute's maximum value frequency).
//! Elimination respects determinant ordering — a variable is only
//! eliminated when the term that determines it mentions only surviving
//! variables — which keeps mutually-referential equalities sound. The
//! fraction-valued [`QueryFacts::selectivity`] interval is estimate-grade
//! (it feeds the optimizer's costing), while `rows` is the certified
//! bound the soundness property tests check.

use super::constraints::{Catalog, Interval};
use super::effects::{effects_of, monoid_short_circuits};
use super::lint::{lint_with_spans, Code, Diagnostic, SpanMap};
use super::Span;
use crate::expr::{BinOp, Expr, Literal, Qual, UnOp};
use crate::monoid::Monoid;
use crate::subst::free_vars;
use crate::symbol::Symbol;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A uniqueness certificate: at most one element of `collection` can be
/// bound to `var` per valuation of the other variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyCert {
    pub var: Symbol,
    /// The extent or field name whose elements `var` ranges over.
    pub collection: Symbol,
    /// `None`: the collection's elements are themselves pairwise distinct
    /// (an OID extent). `Some(attr)`: a predicate equates `var.attr`, a
    /// unique attribute, to a term not involving `var`.
    pub attr: Option<Symbol>,
    pub reason: String,
}

/// A functional dependency contributed by a `v ≡ e` bind: `var` is
/// determined by the generator variables in `determinants`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunDep {
    pub var: Symbol,
    pub determinants: Vec<Symbol>,
}

/// Per-generator facts.
#[derive(Debug, Clone, PartialEq)]
pub struct GenFacts {
    pub var: Symbol,
    /// Contribution of this generator to the row count, per outer row.
    pub rows: Interval,
    /// The extent or field name the source ranges, when recognizable.
    pub collection: Option<Symbol>,
    /// Certified cap after key elimination (`1` or a max-frequency), if a
    /// certificate applied to this generator.
    pub capped_at: Option<f64>,
}

/// A static engine verdict: either the engine will take this query, or
/// the certificate names the first reason (with a source span) why not.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    Eligible,
    Refused { reason: String, span: Option<Span> },
}

impl Verdict {
    pub fn is_eligible(&self) -> bool {
        matches!(self, Verdict::Eligible)
    }

    pub fn reason(&self) -> Option<&str> {
        match self {
            Verdict::Eligible => None,
            Verdict::Refused { reason, .. } => Some(reason),
        }
    }

    pub fn span(&self) -> Option<Span> {
        match self {
            Verdict::Eligible => None,
            Verdict::Refused { span, .. } => *span,
        }
    }

    fn refused(reason: String, span: Option<Span>) -> Verdict {
        Verdict::Refused { reason, span }
    }
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Verdict::Eligible => write!(f, "eligible"),
            Verdict::Refused { reason, .. } => write!(f, "refused: {reason}"),
        }
    }
}

/// The static engine certificates: computed from the calculus *before*
/// plan build, and asserted against the runtime decisions under
/// `MONOID_VERIFY`.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineCert {
    /// Would the fused single-fold engine take this query?
    pub fused: Verdict,
    /// Is partitioned parallel reduction safe (no heap mutation)?
    pub parallel: Verdict,
}

/// Everything the abstract interpreter derives about one comprehension.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryFacts {
    /// Sound bound on the rows reaching the reduction. Short-circuiting
    /// monoids (`some`/`all`) force `lo = 0`: the fold may stop anywhere.
    pub rows: Interval,
    /// Estimate-grade combined predicate selectivity (fraction algebra).
    pub selectivity: Interval,
    pub gens: Vec<GenFacts>,
    pub keys: Vec<KeyCert>,
    pub deps: Vec<FunDep>,
    pub engine: EngineCert,
}

// ---------------------------------------------------------------------------
// Engine certificates: a faithful mirror of plan_with_options + fused::compile
// ---------------------------------------------------------------------------

/// Compute the engine certificates for `e` (any term; non-comprehensions
/// are refused with the same classification the planner would emit).
pub fn engine_certificate(e: &Expr, spans: &SpanMap) -> EngineCert {
    let eff = effects_of(e);
    let parallel = if eff.mutates {
        Verdict::refused(
            "the query mutates the heap (`:=`); partitioned workers would race on object state"
                .into(),
            spans.expr_span(e),
        )
    } else {
        Verdict::Eligible
    };
    EngineCert { fused: fused_verdict(e, spans), parallel }
}

/// The first subterm of `e` outside the fused compiler's expression
/// subset (literals, variables, parameters, records, tuples, projections,
/// binary/unary operators, `if`, deref), or `None` if all of `e` compiles.
fn first_unfusible(e: &Expr) -> Option<&Expr> {
    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) => None,
        Expr::Record(fields) => fields.iter().find_map(|(_, f)| first_unfusible(f)),
        Expr::Tuple(items) => items.iter().find_map(first_unfusible),
        Expr::Proj(inner, _)
        | Expr::TupleProj(inner, _)
        | Expr::UnOp(_, inner)
        | Expr::Deref(inner) => first_unfusible(inner),
        Expr::BinOp(_, a, b) => first_unfusible(a).or_else(|| first_unfusible(b)),
        Expr::If(c, t, f) => first_unfusible(c)
            .or_else(|| first_unfusible(t))
            .or_else(|| first_unfusible(f)),
        other => Some(other),
    }
}

/// A short human name for the form that refused fusion.
fn describe(e: &Expr) -> &'static str {
    match e {
        Expr::Lambda(..) => "a lambda",
        Expr::Comp { .. } => "a nested comprehension",
        Expr::VecComp { .. } => "a nested vector comprehension",
        Expr::Let(..) => "a `let` binding",
        Expr::CollLit(..) => "a collection literal",
        Expr::VecLit(..) => "a vector literal",
        Expr::VecIndex(..) => "vector indexing",
        Expr::Merge(..) => "a monoid merge",
        Expr::Zero(..) => "a monoid zero",
        Expr::Unit(..) => "a singleton injection",
        Expr::Hom { .. } => "a homomorphism",
        Expr::Apply(..) => "a function application",
        Expr::New(..) => "an allocation (`new`)",
        Expr::Assign(..) => "an assignment (`:=`)",
        _ => "an unsupported form",
    }
}

/// Mirror of the planner + fused compiler: would this term, once planned
/// with default options, run on the fused engine? The walk replicates the
/// planner's bind-placement loop exactly, so the dependency structure
/// (and therefore the join/unnest classification) agrees with
/// `plan_with_options`, and the expression subset agrees with
/// `fused::compile`. The first generator's source is exempt — the fused
/// engine evaluates it with the full evaluator.
fn fused_verdict(e: &Expr, spans: &SpanMap) -> Verdict {
    let Expr::Comp { monoid, head, quals } = e else {
        return Verdict::refused(
            "not a comprehension (evaluated directly)".into(),
            spans.expr_span(e),
        );
    };
    if matches!(monoid, Monoid::VecOf(_)) {
        return Verdict::refused(
            "vector monoid reductions accumulate through indexed slots".into(),
            spans.expr_span(e),
        );
    }
    let eff = effects_of(e);
    if eff.mutates {
        return Verdict::refused(
            "the query mutates the heap (`:=`)".into(),
            spans.expr_span(e),
        );
    }
    if eff.allocates {
        return Verdict::refused(
            "the query allocates objects (`new`)".into(),
            spans.expr_span(e),
        );
    }
    if eff.reads_heap {
        return Verdict::refused(
            "the query dereferences objects (`!`); the planner evaluates it directly".into(),
            spans.expr_span(e),
        );
    }

    let mut gens: Vec<(Symbol, &Expr)> = Vec::new();
    let mut binds: Vec<(Symbol, &Expr)> = Vec::new();
    let mut preds: Vec<&Expr> = Vec::new();
    for q in quals {
        match q {
            Qual::Gen(v, src) => gens.push((*v, src)),
            Qual::Bind(v, be) => binds.push((*v, be)),
            Qual::Pred(p) => preds.push(p),
            Qual::VecGen { .. } => {
                return Verdict::refused(
                    "vector generators are evaluated directly".into(),
                    spans.expr_span(e),
                )
            }
        }
    }
    if gens.is_empty() {
        return Verdict::refused(
            "no generators (evaluated directly)".into(),
            spans.expr_span(e),
        );
    }

    // Replicate the planner's placement loop: `bound` grows by generator
    // variables and by binds whose free variables (including globals!) are
    // all bound — exactly the test `plan_with_options` uses.
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut pending_binds: Vec<(Symbol, &Expr)> = binds.clone();
    for (i, (var, src)) in gens.iter().enumerate() {
        if i > 0 {
            let depends = free_vars(src).iter().any(|v| bound.contains(v));
            if !depends {
                return Verdict::refused(
                    format!(
                        "independent generator `{}` requires a join, which is outside the \
                         fused subset",
                        var.as_str()
                    ),
                    spans.var_span(*var).or_else(|| spans.expr_span(src)),
                );
            }
            if let Some(off) = first_unfusible(src) {
                return Verdict::refused(
                    format!(
                        "the path of generator `{}` uses {}, outside the fused expression \
                         subset",
                        var.as_str(),
                        describe(off)
                    ),
                    spans.expr_span(off).or_else(|| spans.var_span(*var)),
                );
            }
        }
        bound.insert(*var);
        loop {
            let mut progressed = false;
            pending_binds.retain(|(bv, be)| {
                if free_vars(be).iter().all(|v| bound.contains(v)) {
                    bound.insert(*bv);
                    progressed = true;
                    false
                } else {
                    true
                }
            });
            if !progressed {
                break;
            }
        }
    }
    for (bv, be) in &binds {
        if let Some(off) = first_unfusible(be) {
            return Verdict::refused(
                format!(
                    "the binding `{} ≡ …` uses {}, outside the fused expression subset",
                    bv.as_str(),
                    describe(off)
                ),
                spans.expr_span(off).or_else(|| spans.var_span(*bv)),
            );
        }
    }
    for p in &preds {
        if let Some(off) = first_unfusible(p) {
            return Verdict::refused(
                format!(
                    "a predicate uses {}, outside the fused expression subset",
                    describe(off)
                ),
                spans.expr_span(off).or_else(|| spans.expr_span(p)),
            );
        }
    }
    if let Some(off) = first_unfusible(head) {
        return Verdict::refused(
            format!(
                "the head uses {}, outside the fused expression subset",
                describe(off)
            ),
            spans.expr_span(off).or_else(|| spans.expr_span(head)),
        );
    }
    Verdict::Eligible
}

// ---------------------------------------------------------------------------
// Cardinality and constraint inference
// ---------------------------------------------------------------------------

/// The context the interpreter threads through the qualifier walk.
struct Ctx<'a> {
    catalog: &'a Catalog,
    /// Generator variables in qualifier order.
    gens: Vec<GenFacts>,
    gen_vars: HashSet<Symbol>,
    /// All locally-bound variables (generators + binds), to keep free
    /// extent names distinct from bound ones.
    local: HashSet<Symbol>,
    /// `v → (base, attr)` for `v ≡ base.attr` binds: domain facts
    /// propagate through the alias.
    aliases: HashMap<Symbol, (Symbol, Symbol)>,
    /// Bind var → the generator variables it (transitively) depends on.
    bind_deps: HashMap<Symbol, HashSet<Symbol>>,
}

impl Ctx<'_> {
    fn gen_index(&self, v: Symbol) -> Option<usize> {
        self.gens.iter().position(|g| g.var == v)
    }

    fn collection_of(&self, v: Symbol) -> Option<Symbol> {
        self.gen_index(v).and_then(|i| self.gens[i].collection)
    }

    /// Resolve `e` to a `(generator var, attribute)` path: `v.attr`
    /// directly, or a bind alias `b ≡ v.attr`.
    fn attr_path(&self, e: &Expr) -> Option<(Symbol, Symbol)> {
        match e {
            Expr::Proj(inner, attr) => match inner.as_ref() {
                Expr::Var(v) if self.gen_vars.contains(v) => Some((*v, *attr)),
                _ => None,
            },
            Expr::Var(v) => self.aliases.get(v).copied(),
            _ => None,
        }
    }

    /// The generator variables `e` (transitively) depends on.
    fn gen_needs(&self, e: &Expr) -> HashSet<Symbol> {
        let mut out = HashSet::new();
        for v in free_vars(e) {
            if self.gen_vars.contains(&v) {
                out.insert(v);
            } else if let Some(deps) = self.bind_deps.get(&v) {
                out.extend(deps.iter().copied());
            }
        }
        out
    }
}

/// A pending cap: generator `gen` contributes at most `factor` rows per
/// valuation of the variables in `needs` — usable only while those
/// variables survive elimination.
struct Det {
    gen: usize,
    factor: f64,
    needs: HashSet<Symbol>,
}

/// Classify a generator source: its per-outer-row cardinality interval,
/// the collection name it ranges (for attribute lookups), and an OID key
/// certificate when the catalog knows the elements are distinct.
fn source_facts(
    src: &Expr,
    var: Symbol,
    ctx: &Ctx<'_>,
) -> (Interval, Option<Symbol>, Option<KeyCert>) {
    match src {
        Expr::Var(name) if !ctx.local.contains(name) => match ctx.catalog.extent(*name) {
            Some(ext) => {
                let cert = ext.distinct_elements.then(|| KeyCert {
                    var,
                    collection: *name,
                    attr: None,
                    reason: format!(
                        "`{}` ranges extent `{}`, whose elements are pairwise-distinct \
                         object identities",
                        var.as_str(),
                        name.as_str()
                    ),
                });
                (Interval::point(ext.size as f64), Some(*name), cert)
            }
            None => (Interval::UNBOUNDED, Some(*name), None),
        },
        Expr::Var(name) => match ctx.aliases.get(name) {
            // `v ≡ u.attr; x ← v` iterates the aliased collection.
            Some((_, attr)) => (field_interval(ctx.catalog, *attr), Some(*attr), None),
            None => (Interval::UNBOUNDED, None, None),
        },
        Expr::Proj(_, field) => (field_interval(ctx.catalog, *field), Some(*field), None),
        Expr::CollLit(m, items) => {
            let n = items.len() as f64;
            if m.props().idempotent && !items.is_empty() {
                (Interval::new(1.0, n), None, None)
            } else {
                (Interval::point(n), None, None)
            }
        }
        Expr::Unit(..) => (Interval::ONE, None, None),
        Expr::UnOp(UnOp::ToBag | UnOp::ToList, inner) => source_facts(inner, var, ctx),
        _ => (Interval::UNBOUNDED, None, None),
    }
}

fn field_interval(catalog: &Catalog, field: Symbol) -> Interval {
    match catalog.field(field) {
        Some(f) => Interval::new(f.min_fanout as f64, f.max_fanout as f64),
        None => Interval::UNBOUNDED,
    }
}

fn numeric_literal(e: &Expr) -> Option<f64> {
    match e {
        Expr::Lit(Literal::Int(i)) => Some(*i as f64),
        Expr::Lit(Literal::Float(x)) => Some(*x),
        _ => None,
    }
}

fn mentions_param(e: &Expr) -> bool {
    let mut found = false;
    e.visit(&mut |n| found |= matches!(n, Expr::Param(_)));
    found
}

/// Flatten a top-level conjunction.
fn conjuncts(p: &Expr) -> Vec<&Expr> {
    match p {
        Expr::BinOp(BinOp::And, a, b) => {
            let mut out = conjuncts(a);
            out.extend(conjuncts(b));
            out
        }
        _ => vec![p],
    }
}

/// Estimate-grade selectivity interval of a predicate (sound fraction
/// algebra over conjunction/disjunction/negation; key equalities take
/// `[0, 1/|extent|]`, range predicates compare against gathered domains).
fn selectivity(p: &Expr, ctx: &Ctx<'_>) -> Interval {
    match p {
        Expr::BinOp(BinOp::And, a, b) => selectivity(a, ctx).and_sel(selectivity(b, ctx)),
        Expr::BinOp(BinOp::Or, a, b) => selectivity(a, ctx).or_sel(selectivity(b, ctx)),
        Expr::UnOp(UnOp::Not, inner) => selectivity(inner, ctx).not_sel(),
        Expr::Lit(Literal::Bool(b)) => {
            if *b {
                Interval::ONE
            } else {
                Interval::ZERO
            }
        }
        Expr::BinOp(op, a, b) if a == b && crate::normalize::is_pure(a) => match op {
            BinOp::Eq | BinOp::Le | BinOp::Ge => Interval::ONE,
            BinOp::Ne | BinOp::Lt | BinOp::Gt => Interval::ZERO,
            _ => Interval::ANY_FRACTION,
        },
        Expr::BinOp(BinOp::Eq, a, b) => eq_selectivity(a, b, ctx)
            .or_else(|| eq_selectivity(b, a, ctx))
            .unwrap_or(Interval::ANY_FRACTION),
        Expr::BinOp(op, a, b) if op.is_comparison() => {
            range_selectivity(*op, a, b, ctx).unwrap_or(Interval::ANY_FRACTION)
        }
        _ => Interval::ANY_FRACTION,
    }
}

/// Selectivity of `path = rhs` when `path` resolves to a bound variable's
/// attribute with gathered statistics.
fn eq_selectivity(path: &Expr, rhs: &Expr, ctx: &Ctx<'_>) -> Option<Interval> {
    let (v, attr) = ctx.attr_path(path)?;
    if free_vars(rhs).contains(&v) {
        return None;
    }
    let coll = ctx.collection_of(v)?;
    let facts = ctx.catalog.attr(coll, attr)?;
    if facts.count == 0 {
        return None;
    }
    // Out-of-domain constants are statically empty.
    if let (Some(x), Some(mn), Some(mx)) = (numeric_literal(rhs), facts.min, facts.max) {
        if x < mn || x > mx {
            return Some(Interval::ZERO);
        }
    }
    Some(Interval::new(0.0, facts.max_freq as f64 / facts.count as f64))
}

/// Selectivity of `path <op> literal` (either orientation) against the
/// attribute's gathered numeric domain. Returns `ZERO`/`ONE` only when
/// the whole domain falls on one side of the constant.
fn range_selectivity(op: BinOp, a: &Expr, b: &Expr, ctx: &Ctx<'_>) -> Option<Interval> {
    let (path, lit, op) = if let Some(x) = numeric_literal(b) {
        (a, x, op)
    } else if let Some(x) = numeric_literal(a) {
        // `c < path` ≡ `path > c`, etc.
        let flipped = match op {
            BinOp::Lt => BinOp::Gt,
            BinOp::Le => BinOp::Ge,
            BinOp::Gt => BinOp::Lt,
            BinOp::Ge => BinOp::Le,
            other => other,
        };
        (b, x, flipped)
    } else {
        return None;
    };
    let (v, attr) = ctx.attr_path(path)?;
    let coll = ctx.collection_of(v)?;
    let facts = ctx.catalog.attr(coll, attr)?;
    let (mn, mx) = (facts.min?, facts.max?);
    let verdict = match op {
        BinOp::Lt => {
            if mx < lit {
                Some(true)
            } else if mn >= lit {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Le => {
            if mx <= lit {
                Some(true)
            } else if mn > lit {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Gt => {
            if mn > lit {
                Some(true)
            } else if mx <= lit {
                Some(false)
            } else {
                None
            }
        }
        BinOp::Ge => {
            if mn >= lit {
                Some(true)
            } else if mx < lit {
                Some(false)
            } else {
                None
            }
        }
        _ => None,
    };
    Some(match verdict {
        Some(true) => Interval::ONE,
        Some(false) => Interval::ZERO,
        None => Interval::ANY_FRACTION,
    })
}

/// Accumulated per-attribute constraints within one conjunction, used for
/// the statically-empty check. Bounds start from the gathered domain (if
/// any) and tighten as conjuncts arrive; `eq` holds the pinned literal.
#[derive(Default)]
struct AttrConstraint {
    eq: Option<Literal>,
    lo: Option<(f64, bool)>, // (bound, strict)
    hi: Option<(f64, bool)>,
    contradictory: bool,
}

impl AttrConstraint {
    fn seeded(facts: Option<&super::constraints::AttrFacts>) -> AttrConstraint {
        let mut c = AttrConstraint::default();
        if let Some(f) = facts {
            c.lo = f.min.map(|x| (x, false));
            c.hi = f.max.map(|x| (x, false));
        }
        c
    }

    fn add_eq(&mut self, lit: &Literal) {
        match &self.eq {
            Some(prev) if prev != lit => self.contradictory = true,
            _ => self.eq = Some(lit.clone()),
        }
        if let Some(x) = lit_num(lit) {
            self.check_num(x);
        }
    }

    fn add_lower(&mut self, x: f64, strict: bool) {
        match self.lo {
            Some((cur, cs)) if cur > x || (cur == x && cs) => {}
            _ => self.lo = Some((x, strict)),
        }
        self.recheck();
    }

    fn add_upper(&mut self, x: f64, strict: bool) {
        match self.hi {
            Some((cur, cs)) if cur < x || (cur == x && cs) => {}
            _ => self.hi = Some((x, strict)),
        }
        self.recheck();
    }

    fn check_num(&mut self, x: f64) {
        if let Some((lo, strict)) = self.lo {
            if x < lo || (x == lo && strict) {
                self.contradictory = true;
            }
        }
        if let Some((hi, strict)) = self.hi {
            if x > hi || (x == hi && strict) {
                self.contradictory = true;
            }
        }
    }

    fn recheck(&mut self) {
        if let (Some((lo, ls)), Some((hi, hs))) = (self.lo, self.hi) {
            if lo > hi || (lo == hi && (ls || hs)) {
                self.contradictory = true;
            }
        }
        if let Some(lit) = self.eq.clone() {
            if let Some(x) = lit_num(&lit) {
                self.check_num(x);
            }
        }
    }
}

fn lit_num(l: &Literal) -> Option<f64> {
    match l {
        Literal::Int(i) => Some(*i as f64),
        Literal::Float(x) => Some(*x),
        _ => None,
    }
}

/// If the conjunction of `p`'s top-level conjuncts is unsatisfiable over
/// some bound attribute (two different pinned constants, a constant
/// outside the gathered domain, or an empty range), name the attribute.
/// Predicates mentioning `$params` are exempt — their constants vary per
/// execution.
fn statically_empty_reason(p: &Expr, ctx: &Ctx<'_>) -> Option<String> {
    if mentions_param(p) {
        return None;
    }
    let mut constraints: HashMap<(Symbol, Symbol), AttrConstraint> = HashMap::new();
    let mut constrained = false;
    for c in conjuncts(p) {
        let (path, rhs, op) = match c {
            Expr::BinOp(op, a, b)
                if op.is_comparison() && ctx.attr_path(a).is_some() && numeric_or_lit(b) =>
            {
                (a, b.as_ref(), *op)
            }
            Expr::BinOp(op, a, b)
                if op.is_comparison() && ctx.attr_path(b).is_some() && numeric_or_lit(a) =>
            {
                let flipped = match op {
                    BinOp::Lt => BinOp::Gt,
                    BinOp::Le => BinOp::Ge,
                    BinOp::Gt => BinOp::Lt,
                    BinOp::Ge => BinOp::Le,
                    other => *other,
                };
                (b, a.as_ref(), flipped)
            }
            _ => continue,
        };
        let (v, attr) = ctx.attr_path(path).expect("checked above");
        let Expr::Lit(lit) = rhs else { continue };
        let entry = constraints.entry((v, attr)).or_insert_with(|| {
            AttrConstraint::seeded(
                ctx.collection_of(v)
                    .and_then(|coll| ctx.catalog.attr(coll, attr)),
            )
        });
        match op {
            BinOp::Eq => entry.add_eq(lit),
            BinOp::Lt => {
                if let Some(x) = lit_num(lit) {
                    entry.add_upper(x, true);
                }
            }
            BinOp::Le => {
                if let Some(x) = lit_num(lit) {
                    entry.add_upper(x, false);
                }
            }
            BinOp::Gt => {
                if let Some(x) = lit_num(lit) {
                    entry.add_lower(x, true);
                }
            }
            BinOp::Ge => {
                if let Some(x) = lit_num(lit) {
                    entry.add_lower(x, false);
                }
            }
            _ => continue,
        }
        constrained = true;
    }
    if !constrained {
        return None;
    }
    constraints.iter().find(|(_, c)| c.contradictory).map(|((v, attr), _)| {
        format!(
            "no value of `{}.{}` satisfies these conjuncts under the gathered domain",
            v.as_str(),
            attr.as_str()
        )
    })
}

fn numeric_or_lit(e: &Expr) -> bool {
    matches!(e, Expr::Lit(_))
}

/// Run the abstract interpreter over `e`.
pub fn infer(e: &Expr, catalog: &Catalog, spans: &SpanMap) -> QueryFacts {
    let engine = engine_certificate(e, spans);
    let Expr::Comp { monoid, head: _, quals } = e else {
        return QueryFacts {
            rows: Interval::UNBOUNDED,
            selectivity: Interval::ONE,
            gens: Vec::new(),
            keys: Vec::new(),
            deps: Vec::new(),
            engine,
        };
    };

    let mut ctx = Ctx {
        catalog,
        gens: Vec::new(),
        gen_vars: HashSet::new(),
        local: HashSet::new(),
        aliases: HashMap::new(),
        bind_deps: HashMap::new(),
    };
    let mut keys: Vec<KeyCert> = Vec::new();
    let mut deps: Vec<FunDep> = Vec::new();
    let mut dets: Vec<Det> = Vec::new();
    let mut sel = Interval::ONE;
    let mut pred_lo = 1.0f64;
    let mut empty = false;

    for q in quals {
        match q {
            Qual::Gen(v, src) => {
                let (rows, collection, cert) = source_facts(src, *v, &ctx);
                if let Some(c) = cert {
                    keys.push(c);
                }
                ctx.gens.push(GenFacts { var: *v, rows, collection, capped_at: None });
                ctx.gen_vars.insert(*v);
                ctx.local.insert(*v);
            }
            Qual::Bind(v, be) => {
                let needs = ctx.gen_needs(be);
                let mut determinants: Vec<Symbol> = needs.iter().copied().collect();
                determinants.sort_by(|a, b| a.as_str().cmp(b.as_str()));
                deps.push(FunDep { var: *v, determinants });
                if let Some(path) = ctx.attr_path(be) {
                    ctx.aliases.insert(*v, path);
                }
                ctx.bind_deps.insert(*v, needs);
                ctx.local.insert(*v);
            }
            Qual::Pred(p) => {
                let mut s = selectivity(p, &ctx);
                if statically_empty_reason(p, &ctx).is_some() {
                    s = Interval::ZERO;
                }
                if s.is_empty() {
                    empty = true;
                }
                sel = sel.and_sel(s);
                pred_lo *= s.lo.min(1.0);

                // Key-based caps: each top-level conjunct `v.attr = rhs`
                // with `attr` unique (or bounded-frequency) pins `v`.
                for c in conjuncts(p) {
                    for (path, rhs) in [
                        (c_lhs(c), c_rhs(c)),
                        (c_rhs(c), c_lhs(c)),
                    ] {
                        let (Some(path), Some(rhs)) = (path, rhs) else { continue };
                        let Some((v, attr)) = ctx.attr_path(path) else { continue };
                        if free_vars(rhs).contains(&v) {
                            continue;
                        }
                        let Some(gi) = ctx.gen_index(v) else { continue };
                        let Some(coll) = ctx.gens[gi].collection else { continue };
                        let Some(facts) = ctx.catalog.attr(coll, attr) else { continue };
                        if facts.count == 0 {
                            continue;
                        }
                        let factor = if facts.unique() {
                            keys.push(KeyCert {
                                var: v,
                                collection: coll,
                                attr: Some(attr),
                                reason: format!(
                                    "`{}.{}` is unique in `{}`; the equality pins at most \
                                     one element",
                                    v.as_str(),
                                    attr.as_str(),
                                    coll.as_str()
                                ),
                            });
                            1.0
                        } else {
                            facts.max_freq as f64
                        };
                        dets.push(Det { gen: gi, factor, needs: ctx.gen_needs(rhs) });
                    }
                }
            }
            Qual::VecGen { .. } => {
                return QueryFacts {
                    rows: Interval::UNBOUNDED,
                    selectivity: Interval::ONE,
                    gens: ctx.gens,
                    keys,
                    deps,
                    engine,
                };
            }
        }
    }

    // Cap elimination: repeatedly retire the generator with the smallest
    // qualifying factor. A determination qualifies only while none of its
    // determinant variables has itself been eliminated — that ordering is
    // what keeps mutually-referential equalities (v₁.a = v₂.id ∧ v₂.b =
    // v₁.id) from unsoundly capping both sides.
    let mut eliminated_vars: HashSet<Symbol> = HashSet::new();
    let mut caps: HashMap<usize, f64> = HashMap::new();
    loop {
        let mut best: Option<(usize, f64)> = None;
        for d in &dets {
            if caps.contains_key(&d.gen) || d.needs.iter().any(|v| eliminated_vars.contains(v)) {
                continue;
            }
            match best {
                Some((_, f)) if f <= d.factor => {}
                _ => best = Some((d.gen, d.factor)),
            }
        }
        let Some((gi, factor)) = best else { break };
        caps.insert(gi, factor);
        eliminated_vars.insert(ctx.gens[gi].var);
    }
    for (gi, factor) in &caps {
        ctx.gens[*gi].capped_at = Some(*factor);
    }

    let mut hi = 1.0f64;
    let mut lo = 1.0f64;
    for (i, g) in ctx.gens.iter().enumerate() {
        let gh = match caps.get(&i) {
            Some(f) => f.min(g.rows.hi),
            None => g.rows.hi,
        };
        hi = if gh == 0.0 || hi == 0.0 { 0.0 } else { hi * gh };
        lo *= g.rows.lo;
    }
    lo *= pred_lo;
    if empty {
        hi = 0.0;
        lo = 0.0;
    }
    if monoid_short_circuits(monoid) {
        // The fold may absorb after any element; only the upper bound
        // survives.
        lo = 0.0;
    }
    if ctx.gens.is_empty() {
        // No generators: the head is evaluated exactly once.
        return QueryFacts {
            rows: Interval::ONE,
            selectivity: sel,
            gens: ctx.gens,
            keys,
            deps,
            engine,
        };
    }

    QueryFacts {
        rows: Interval::new(lo, hi),
        selectivity: sel,
        gens: ctx.gens,
        keys,
        deps,
        engine,
    }
}

fn c_lhs(c: &Expr) -> Option<&Expr> {
    match c {
        Expr::BinOp(BinOp::Eq, a, _) => Some(a),
        _ => None,
    }
}

fn c_rhs(c: &Expr) -> Option<&Expr> {
    match c {
        Expr::BinOp(BinOp::Eq, _, b) => Some(b),
        _ => None,
    }
}

// ---------------------------------------------------------------------------
// Inference-backed lints: MC007 / MC008 / MC009
// ---------------------------------------------------------------------------

/// The full lint pass: the span-aware structural lints (MC001–MC006) plus
/// the inference-backed lints (MC007–MC009), sharing one catalog. The
/// umbrella `analyze()` and `oqlint` run this; callers without statistics
/// pass an empty catalog (all inference lookups miss soundly).
pub fn lint_full(e: &Expr, spans: &SpanMap, catalog: &Catalog) -> Vec<Diagnostic> {
    let mut diags = lint_with_spans(e, spans);
    let extra = infer_lints(e, spans, catalog);
    super::lint::record_metrics(&extra);
    diags.extend(extra);
    diags
}

/// MC007/MC008 on every comprehension subterm, MC009 on the root.
fn infer_lints(e: &Expr, spans: &SpanMap, catalog: &Catalog) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    e.visit(&mut |node| {
        if let Expr::Comp { monoid, head, quals } = node {
            comp_lints(monoid, head, quals, catalog, spans, &mut diags);
        }
    });
    // MC009 only for the root term: nested comprehensions run inside the
    // evaluator anyway, so a per-subterm fallback note would be noise.
    if matches!(e, Expr::Comp { .. }) {
        let cert = engine_certificate(e, spans);
        if let Verdict::Refused { reason, span } = &cert.fused {
            diags.push(Diagnostic {
                code: Code::FusedFallback,
                severity: Code::FusedFallback.default_severity(),
                span: span.or_else(|| spans.expr_span(e)),
                message: format!("query falls back to the plan-walk engine: {reason}"),
                note: Some(
                    "the fused engine compiles linear scan/filter/bind/unnest chains only"
                        .into(),
                ),
            });
        }
    }
    diags
}

/// MC007 (cross product) and MC008 (statically empty) for one
/// comprehension.
fn comp_lints(
    monoid: &Monoid,
    head: &Expr,
    quals: &[Qual],
    catalog: &Catalog,
    spans: &SpanMap,
    diags: &mut Vec<Diagnostic>,
) {
    // Rebuild the inference context for this comprehension.
    let comp = Expr::Comp {
        monoid: monoid.clone(),
        head: Box::new(head.clone()),
        quals: quals.to_vec(),
    };
    let facts = infer(&comp, catalog, spans);

    // MC007: an independent generator (a join) with no predicate linking
    // it to anything bound earlier — a cross product. Suppressed when the
    // variable is unused (MC001/MC004 already cover that) and for
    // synthesized binders.
    let mut bound: HashSet<Symbol> = HashSet::new();
    let mut gen_seen = 0usize;
    for (i, q) in quals.iter().enumerate() {
        match q {
            Qual::Gen(v, src) => {
                let independent =
                    gen_seen > 0 && !free_vars(src).iter().any(|x| bound.contains(x));
                if independent && !super::lint::synthesized(*v) {
                    let before: HashSet<Symbol> = bound.clone();
                    let linked = quals.iter().any(|other| match other {
                        Qual::Pred(p) => {
                            let fv = free_vars(p);
                            fv.contains(v) && fv.iter().any(|x| before.contains(x))
                        }
                        _ => false,
                    });
                    let rest = Expr::Comp {
                        monoid: monoid.clone(),
                        head: Box::new(head.clone()),
                        quals: quals[i + 1..].to_vec(),
                    };
                    let used = free_vars(&rest).contains(v);
                    if !linked && used {
                        diags.push(Diagnostic {
                            code: Code::CrossProduct,
                            severity: Code::CrossProduct.default_severity(),
                            span: spans.var_span(*v),
                            message: format!(
                                "cross product: no join predicate links generator `{}` to \
                                 the earlier generators",
                                v.as_str()
                            ),
                            note: Some(
                                "add a predicate relating it to an earlier variable, or \
                                 derive it from one (a dependent path)"
                                    .into(),
                            ),
                        });
                    }
                }
                bound.insert(*v);
                gen_seen += 1;
            }
            Qual::Bind(v, _) => {
                bound.insert(*v);
            }
            _ => {}
        }
    }

    // MC008: a predicate that is statically empty under the gathered
    // domains (or plainly contradictory conjuncts). Runs per predicate so
    // the span lands on the offending term.
    let ctx = facts_ctx(&facts, catalog);
    for q in quals {
        let Qual::Pred(p) = q else { continue };
        if let Some(reason) = statically_empty_reason(p, &ctx) {
            diags.push(Diagnostic {
                code: Code::StaticallyEmpty,
                severity: Code::StaticallyEmpty.default_severity(),
                span: spans.expr_span(p),
                message: format!("predicate selectivity is 0: {reason}"),
                note: Some("the comprehension is statically empty and always yields zero".into()),
            });
        }
    }
}

/// Rebuild a minimal `Ctx` from already-computed facts (for the per-pred
/// MC008 pass).
fn facts_ctx<'a>(facts: &QueryFacts, catalog: &'a Catalog) -> Ctx<'a> {
    let mut ctx = Ctx {
        catalog,
        gens: facts.gens.clone(),
        gen_vars: facts.gens.iter().map(|g| g.var).collect(),
        local: facts.gens.iter().map(|g| g.var).collect(),
        aliases: HashMap::new(),
        bind_deps: HashMap::new(),
    };
    for d in &facts.deps {
        ctx.local.insert(d.var);
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::monoid::Monoid;
    use crate::analysis::constraints::{AttrFacts, ExtentFacts, FieldFacts};

    fn travel_catalog() -> Catalog {
        let mut cat = Catalog::default();
        let mut cities = ExtentFacts { size: 3, distinct_elements: true, ..Default::default() };
        cities.attrs.insert(
            Symbol::new("name"),
            AttrFacts { count: 3, distinct: 3, max_freq: 1, min: None, max: None },
        );
        cat.extents.insert(Symbol::new("Cities"), cities);
        let mut hotels = ExtentFacts { size: 6, distinct_elements: true, ..Default::default() };
        hotels.attrs.insert(
            Symbol::new("stars"),
            AttrFacts { count: 6, distinct: 3, max_freq: 2, min: Some(1.0), max: Some(5.0) },
        );
        cat.extents.insert(Symbol::new("Hotels"), hotels);
        cat.fields.insert(
            Symbol::new("rooms"),
            FieldFacts { occurrences: 6, min_fanout: 2, max_fanout: 4, total: 18,
                         attrs: Default::default() },
        );
        cat
    }

    fn portland() -> Expr {
        Expr::comp(
            Monoid::Bag,
            Expr::var("c").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("Portland"))),
            ],
        )
    }

    #[test]
    fn unique_attribute_equality_caps_the_generator() {
        let facts = infer(&portland(), &travel_catalog(), &SpanMap::default());
        assert!(facts.rows.contains(1.0));
        assert!(facts.rows.hi <= 1.0, "rows {:?}", facts.rows);
        // Two certificates: the extent's OID key and the pinned unique
        // attribute.
        assert_eq!(facts.keys.len(), 2);
        assert!(facts.keys.iter().any(|k| k.attr == Some(Symbol::new("name"))));
    }

    #[test]
    fn max_frequency_bounds_non_unique_equalities() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("h"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::pred(Expr::var("h").proj("stars").eq(Expr::int(3))),
            ],
        );
        let facts = infer(&e, &travel_catalog(), &SpanMap::default());
        assert_eq!(facts.rows.hi, 2.0, "max_freq caps the scan: {:?}", facts.rows);
    }

    #[test]
    fn fanout_intervals_bound_dependent_generators() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("r"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::gen("r", Expr::var("h").proj("rooms")),
            ],
        );
        let facts = infer(&e, &travel_catalog(), &SpanMap::default());
        assert_eq!(facts.rows, Interval::new(12.0, 24.0));
    }

    #[test]
    fn short_circuiting_monoids_zero_the_lower_bound() {
        let e = Expr::comp(
            Monoid::Some,
            Expr::bool(true),
            vec![Expr::gen("h", Expr::var("Hotels"))],
        );
        let facts = infer(&e, &travel_catalog(), &SpanMap::default());
        assert_eq!(facts.rows, Interval::new(0.0, 6.0));
    }

    #[test]
    fn out_of_domain_constants_are_statically_empty() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("h"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::pred(Expr::var("h").proj("stars").eq(Expr::int(9))),
            ],
        );
        let facts = infer(&e, &travel_catalog(), &SpanMap::default());
        assert_eq!(facts.rows, Interval::ZERO);
        let diags = lint_full(&e, &SpanMap::default(), &travel_catalog());
        assert!(diags.iter().any(|d| d.code == Code::StaticallyEmpty), "{diags:?}");
    }

    #[test]
    fn contradictory_conjuncts_are_statically_empty_without_a_catalog() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("h"),
            vec![
                Expr::gen("h", Expr::var("Hotels")),
                Expr::pred(
                    Expr::var("h")
                        .proj("stars")
                        .gt(Expr::int(4))
                        .and(Expr::var("h").proj("stars").lt(Expr::int(2))),
                ),
            ],
        );
        let diags = lint_full(&e, &SpanMap::default(), &Catalog::default());
        assert!(diags.iter().any(|d| d.code == Code::StaticallyEmpty), "{diags:?}");
    }

    #[test]
    fn mutually_referential_keys_do_not_double_eliminate() {
        // v1.name = v2.name ∧ v2.name = v1.name over two unique columns:
        // only one side may be eliminated; the other still contributes its
        // extent size.
        let mut cat = travel_catalog();
        cat.extents.get_mut(&Symbol::new("Hotels")).unwrap().attrs.insert(
            Symbol::new("name"),
            AttrFacts { count: 6, distinct: 6, max_freq: 1, min: None, max: None },
        );
        let e = Expr::comp(
            Monoid::Bag,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Cities")),
                Expr::gen("b", Expr::var("Hotels")),
                Expr::pred(
                    Expr::var("a")
                        .proj("name")
                        .eq(Expr::var("b").proj("name"))
                        .and(Expr::var("b").proj("name").eq(Expr::var("a").proj("name"))),
                ),
            ],
        );
        let facts = infer(&e, &cat, &SpanMap::default());
        // One generator survives (3 or 6), the other is capped at 1.
        assert!(facts.rows.hi >= 3.0, "{:?}", facts.rows);
        assert!(facts.rows.hi <= 6.0, "{:?}", facts.rows);
    }

    #[test]
    fn cross_products_are_flagged_only_when_used_and_unlinked() {
        let used_unlinked = Expr::comp(
            Monoid::Bag,
            Expr::var("a").proj("name").eq(Expr::var("b").proj("name")),
            vec![
                Expr::gen("a", Expr::var("Cities")),
                Expr::gen("b", Expr::var("Hotels")),
            ],
        );
        let diags = lint_full(&used_unlinked, &SpanMap::default(), &Catalog::default());
        assert!(diags.iter().any(|d| d.code == Code::CrossProduct), "{diags:?}");

        // A join predicate linking the sides suppresses MC007.
        let linked = Expr::comp(
            Monoid::Bag,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Cities")),
                Expr::gen("b", Expr::var("Hotels")),
                Expr::pred(Expr::var("a").proj("name").eq(Expr::var("b").proj("city"))),
            ],
        );
        let diags = lint_full(&linked, &SpanMap::default(), &Catalog::default());
        assert!(!diags.iter().any(|d| d.code == Code::CrossProduct), "{diags:?}");

        // Unused independent generators are MC001's business, not MC007's.
        let unused = Expr::comp(
            Monoid::Bag,
            Expr::var("a").proj("name"),
            vec![
                Expr::gen("a", Expr::var("Cities")),
                Expr::gen("b", Expr::var("Hotels")),
            ],
        );
        let diags = lint_full(&unused, &SpanMap::default(), &Catalog::default());
        assert!(!diags.iter().any(|d| d.code == Code::CrossProduct), "{diags:?}");
    }

    #[test]
    fn engine_certificate_matches_the_fused_subset() {
        let linear = portland();
        let cert = engine_certificate(&linear, &SpanMap::default());
        assert!(cert.fused.is_eligible());
        assert!(cert.parallel.is_eligible());

        let join = Expr::comp(
            Monoid::Bag,
            Expr::int(1),
            vec![
                Expr::gen("a", Expr::var("Cities")),
                Expr::gen("b", Expr::var("Hotels")),
            ],
        );
        let cert = engine_certificate(&join, &SpanMap::default());
        assert!(!cert.fused.is_eligible());
        assert!(cert.fused.reason().unwrap().contains("join"), "{:?}", cert.fused);

        let lambda_head = Expr::comp(
            Monoid::Bag,
            Expr::lambda("x", Expr::var("x")),
            vec![Expr::gen("a", Expr::var("Cities"))],
        );
        let cert = engine_certificate(&lambda_head, &SpanMap::default());
        assert!(cert.fused.reason().unwrap().contains("lambda"), "{:?}", cert.fused);

        let mutating = Expr::comp(
            Monoid::Bag,
            Expr::var("a").assign(Expr::int(1)),
            vec![Expr::gen("a", Expr::var("Cities"))],
        );
        let cert = engine_certificate(&mutating, &SpanMap::default());
        assert!(!cert.fused.is_eligible());
        assert!(!cert.parallel.is_eligible());
    }

    #[test]
    fn bind_placement_mirrors_the_planner_for_out_of_order_binds() {
        // x ← xs, y ← f(b), b ≡ g(x): the planner places `b` right after
        // `x`, so `y` is a *dependent* generator (unnest), not a join.
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("y"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::gen("y", Expr::var("b").proj("kids")),
                Expr::bind("b", Expr::var("x").proj("child")),
            ],
        );
        let cert = engine_certificate(&e, &SpanMap::default());
        assert!(cert.fused.is_eligible(), "{:?}", cert.fused);
    }

    #[test]
    fn fun_deps_record_bind_determinants() {
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("n"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::bind("n", Expr::var("c").proj("name")),
            ],
        );
        let facts = infer(&e, &Catalog::default(), &SpanMap::default());
        assert_eq!(
            facts.deps,
            vec![FunDep { var: Symbol::new("n"), determinants: vec![Symbol::new("c")] }]
        );
    }
}
