//! Static analysis over calculus terms.
//!
//! The paper's effectiveness standard rests on *manipulability*: every
//! Table-3 rewrite must preserve typing and the C/I legality restriction.
//! Until now those invariants were checked once at the front door; this
//! module re-checks them continuously and classifies queries *before*
//! they run:
//!
//! * [`effects`] — a bottom-up effect-inference pass over [`Expr`]
//!   (allocates / mutates / reads-heap / short-circuits, plus free
//!   variables). The optimizer and the parallel engine consult the
//!   resulting [`EffectSummary`] to decide parallelization and build-side
//!   sharing statically instead of scanning plans at runtime.
//! * [`verify`] — the stage invariant verifier: [`verify::check_rewrite`]
//!   re-checks scoping, C/I legality, type preservation, and
//!   well-formedness after every normalize rule firing (on under
//!   `cfg(debug_assertions)`, forced by `MONOID_VERIFY=1`).
//! * [`lint`] — structured diagnostics with stable codes (MC001–MC006),
//!   surfaced by the umbrella `analyze` API and the `oqlint` binary.
//!
//! Analyzer activity feeds the process-wide metrics registry:
//! `analysis_diagnostics_total{code}` and
//! `analysis_verify_failures_total{stage}`.
//!
//! [`Expr`]: crate::expr::Expr
//! [`EffectSummary`]: effects::EffectSummary

use std::fmt;

pub mod constraints;
pub mod effects;
pub mod infer;
pub mod lint;
pub mod verify;

pub use constraints::{AttrFacts, Catalog, ExtentFacts, FieldFacts, Interval};
pub use effects::{effects_of, Effects, EffectSummary};
pub use infer::{
    engine_certificate, infer, lint_full, EngineCert, FunDep, GenFacts, KeyCert, QueryFacts,
    Verdict,
};
pub use lint::{lint, lint_with_spans, Code, Diagnostic, Severity, SpanMap};
pub use verify::{check_rewrite, record_failure, verify_enabled, VerifyError};

/// A source position in the original query text (byte offset plus 1-based
/// line/column). Spans are threaded best-effort from the OQL front end:
/// synthesized terms (coercions, fresh binders, desugarings) have none.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub offset: usize,
    pub line: u32,
    pub col: u32,
}

impl Span {
    pub fn new(offset: usize, line: u32, col: u32) -> Span {
        Span { offset, line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Everything the static analyzer has to say about one query: its effect
/// summary and the lint diagnostics, ready to render for humans
/// ([`AnalysisReport::render`]) or machines ([`AnalysisReport::to_json`]).
/// Front ends attach source spans by building one with
/// [`AnalysisReport::with_spans`].
#[derive(Debug, Clone)]
pub struct AnalysisReport {
    /// The query's inferred effects and free variables.
    pub effects: EffectSummary,
    /// Lint findings, in source order where spans are known.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Analyze `e` with no source spans.
    pub fn of(e: &crate::expr::Expr) -> AnalysisReport {
        AnalysisReport::with_spans(e, &SpanMap::default())
    }

    /// Analyze `e`, anchoring diagnostics to `spans` where possible.
    /// Inference lookups run against an empty catalog (sound: every miss
    /// widens to top); use [`AnalysisReport::with_catalog`] when gathered
    /// statistics are available.
    pub fn with_spans(e: &crate::expr::Expr, spans: &SpanMap) -> AnalysisReport {
        AnalysisReport::with_catalog(e, spans, &Catalog::default())
    }

    /// Analyze `e` with spans and a gathered statistics catalog, enabling
    /// the inference-backed lints (MC007–MC009) to use domain facts.
    pub fn with_catalog(
        e: &crate::expr::Expr,
        spans: &SpanMap,
        catalog: &Catalog,
    ) -> AnalysisReport {
        AnalysisReport {
            effects: EffectSummary::of(e),
            diagnostics: lint_full(e, spans, catalog),
        }
    }

    /// The most severe diagnostic level present, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Human-readable report: one header line with the effect summary,
    /// then one line per diagnostic.
    pub fn render(&self) -> String {
        let mut out = format!("effects: {}\n", self.effects);
        if self.diagnostics.is_empty() {
            out.push_str("no diagnostics\n");
        } else {
            for d in &self.diagnostics {
                out.push_str(&d.to_string());
                out.push('\n');
            }
        }
        out
    }

    /// The report as JSON (strings escaped through [`crate::json`]).
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let diags = Json::Arr(
            self.diagnostics
                .iter()
                .map(|d| {
                    Json::obj(vec![
                        ("code", Json::str(d.code.as_str())),
                        ("severity", Json::str(d.severity.to_string())),
                        (
                            "span",
                            match d.span {
                                Some(s) => Json::str(s.to_string()),
                                None => Json::Null,
                            },
                        ),
                        ("message", Json::str(d.message.clone())),
                        (
                            "note",
                            d.note.clone().map(Json::Str).unwrap_or(Json::Null),
                        ),
                    ])
                })
                .collect(),
        );
        Json::obj(vec![
            ("effects", Json::str(self.effects.to_string())),
            ("parallel_safe", Json::Bool(self.effects.parallel_safe())),
            ("diagnostics", diags),
        ])
    }
}
