//! The normalization algorithm — Table 3 of the paper (§3.1).
//!
//! The paper's manipulability claim rests on a small pattern-based rewrite
//! system that puts any composition of monoid comprehensions into a
//! *canonical form*: a comprehension whose generators range over simple
//! paths (variables, field projections of variables, named extents, or
//! literal collections) with all nesting in generator position flattened
//! away. Canonical forms maximize opportunities for pipelining — they map
//! directly onto scan/unnest/join pipelines in the algebra crate.
//!
//! ## The rules
//!
//! Numbered as in our Table 3 reading (the paper's §3.1 derivation of the
//! Portland-hotels query cites "rules 4 and 5", which are exactly our N4
//! and N5):
//!
//! | rule | scheme |
//! |------|--------|
//! | N1 `Beta`          | `(λv. e) u ⇒ e[u/v]` |
//! | N2 `Proj`          | `⟨…, A=e, …⟩.A ⇒ e` (and tuple projection) |
//! | N3 `ZeroGen`       | `M{ e \| q, v ← zero_N, s } ⇒ zero_M` |
//! | N4 `SingletonGen`  | `M{ e \| q, v ← unit_N(u), s } ⇒ M{ e \| q, v ≡ u, s }` |
//! | N5 `FlattenGen`    | `M{ e \| q, v ← N{ e' \| r }, s } ⇒ M{ e \| q, r, v ≡ e', s }` |
//! | N6 `ExistsFilter`  | `M{ e \| q, some{ p \| r }, s } ⇒ M{ e \| q, r, p, s }` — idempotent `M` only |
//! | N7 `BindInline`    | `M{ e \| q, v ≡ u, s } ⇒ M{ e[u/v] \| q, s[u/v] }` |
//! | N8 `MergeGen`      | `M{ e \| q, v ← e₁ ⊕ e₂, s } ⇒ M{e\|q,v←e₁,s} ⊕_M M{e\|q,v←e₂,s}` |
//! | N9 `AndSplit`      | `M{ e \| q, p₁ ∧ p₂, s } ⇒ M{ e \| q, p₁, p₂, s }` |
//! | N10 `TruePred`     | `M{ e \| q, true, s } ⇒ M{ e \| q, s }` |
//! | N11 `FalsePred`    | `M{ e \| q, false, s } ⇒ zero_M` |
//! | N12 `LetInline`    | `let v = u in e ⇒ e[u/v]` |
//! | N13 `HomToComp`    | `hom[→M](λv. b)(u) ⇒ M{ w \| v ← u, w ← b }` (collection `M`) / `M{ b \| v ← u }` (primitive `M`) |
//! | N14 `IfPredSplit`  | `M{ e \| q, if c then p₁ else p₂, s } ⇒ M{e\|q,c,p₁,s} ⊕_M M{e\|q,¬c,p₂,s}` |
//!
//! Every rule is meaning-preserving on well-typed terms; this is verified
//! by property tests (`eval(normalize(e)) == eval(e)` over random
//! well-typed terms — see `tests/` and the proptest suite in this module).
//!
//! Side conditions (beyond the paper's statement, which leaves them
//! implicit):
//! * N5/N8 require the *inner* monoid to be freely generated (list, bag,
//!   set) — `sorted`/`oset` comprehensions reorder or deduplicate, so
//!   iterating one is not iterating its qualifiers;
//! * N6 requires a CI output monoid (idempotence absorbs duplicate
//!   witnesses; commutativity keeps every spliced generator type-legal);
//! * N8/N14 additionally require a commutative output monoid when any
//!   generator precedes the rewritten qualifier, because the split groups
//!   results by branch: `⊕_q (A_q ⊕ B_q) = (⊕_q A_q) ⊕ (⊕_q B_q)` is the
//!   binary interchange law, which needs commutativity.
//!
//! ## Side effects
//!
//! The paper's §4.2 extension adds `new`/`!`/`:=`, which make some rewrites
//! observably different (e.g. N7 would duplicate a `new(1)` bound once).
//! Rules that *duplicate*, *delete*, or *reorder* subterms are therefore
//! gated on purity of the affected parts ([`is_pure`]); impure terms simply
//! normalize less aggressively. This is strictly more careful than the
//! paper, which treats the update sublanguage separately from
//! normalization.

use crate::expr::{BinOp, Expr, Qual};
use crate::monoid::Monoid;
use crate::pretty::pretty;
use crate::subst::{free_vars, rename_tail, subst};
use crate::symbol::Symbol;
use std::collections::HashSet;
use std::fmt;

/// The rewrite rules of the normalizer. See the module docs for schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Rule {
    Beta,
    Proj,
    ZeroGen,
    SingletonGen,
    FlattenGen,
    ExistsFilter,
    BindInline,
    MergeGen,
    AndSplit,
    TruePred,
    FalsePred,
    LetInline,
    HomToComp,
    IfPredSplit,
}

impl Rule {
    /// How many rules there are (N1…N14) — sizes per-rule count arrays.
    pub const COUNT: usize = 14;

    /// Our Table-3 numbering (N1…N14).
    pub fn number(self) -> u8 {
        match self {
            Rule::Beta => 1,
            Rule::Proj => 2,
            Rule::ZeroGen => 3,
            Rule::SingletonGen => 4,
            Rule::FlattenGen => 5,
            Rule::ExistsFilter => 6,
            Rule::BindInline => 7,
            Rule::MergeGen => 8,
            Rule::AndSplit => 9,
            Rule::TruePred => 10,
            Rule::FalsePred => 11,
            Rule::LetInline => 12,
            Rule::HomToComp => 13,
            Rule::IfPredSplit => 14,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Rule::Beta => "beta",
            Rule::Proj => "record-projection",
            Rule::ZeroGen => "zero-generator",
            Rule::SingletonGen => "singleton-generator",
            Rule::FlattenGen => "flatten-generator",
            Rule::ExistsFilter => "exists-filter",
            Rule::BindInline => "bind-inline",
            Rule::MergeGen => "merge-generator",
            Rule::AndSplit => "and-split",
            Rule::TruePred => "true-predicate",
            Rule::FalsePred => "false-predicate",
            Rule::LetInline => "let-inline",
            Rule::HomToComp => "hom-to-comprehension",
            Rule::IfPredSplit => "if-predicate-split",
        }
    }

    pub fn all() -> &'static [Rule] {
        &[
            Rule::Beta,
            Rule::Proj,
            Rule::ZeroGen,
            Rule::SingletonGen,
            Rule::FlattenGen,
            Rule::ExistsFilter,
            Rule::BindInline,
            Rule::MergeGen,
            Rule::AndSplit,
            Rule::TruePred,
            Rule::FalsePred,
            Rule::LetInline,
            Rule::HomToComp,
            Rule::IfPredSplit,
        ]
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{} ({})", self.number(), self.name())
    }
}

/// One step of a normalization derivation: the rule applied and the whole
/// expression after the step (in paper notation).
#[derive(Debug, Clone)]
pub struct TraceStep {
    pub rule: Rule,
    pub after: String,
}

/// Statistics of a normalization run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NormalizeStats {
    pub steps: usize,
    /// How many times each rule fired, keyed by [`Rule::number`]
    /// (slot `number − 1`; use [`NormalizeStats::fired`] / `rule_counts`
    /// for keyed access).
    pub per_rule: [u64; Rule::COUNT],
    /// AST sizes before and after.
    pub size_before: usize,
    pub size_after: usize,
    /// Wall-clock time the rewrite loop took, for lifecycle traces.
    pub elapsed_nanos: u128,
}

impl NormalizeStats {
    /// How many times `rule` fired.
    pub fn fired(&self, rule: Rule) -> u64 {
        self.per_rule[rule.number() as usize - 1]
    }

    /// `(rule, count)` pairs in `Rule::all()` order (the shape the old
    /// `rule_counts` field held).
    pub fn rule_counts(&self) -> impl Iterator<Item = (Rule, u64)> + '_ {
        Rule::all().iter().map(|r| (*r, self.fired(*r)))
    }

    /// One line per fired rule, e.g. `N9 and-split ×2` — the rendering
    /// E7 and `QueryProfile::render` embed.
    pub fn render_rules(&self) -> String {
        self.rule_counts()
            .filter(|(_, n)| *n > 0)
            .map(|(r, n)| format!("N{} {} ×{n}", r.number(), r.name()))
            .collect::<Vec<_>>()
            .join(", ")
    }
}

/// Hard bound on rewrite steps; normalization of any reasonable query takes
/// a handful, so hitting this indicates an adversarial or diverging input.
const MAX_STEPS: usize = 100_000;

/// Is `e` free of heap effects (`new`, `:=`) and heap reads (`!`)?
/// Rules that duplicate, delete, or reorder subterms require purity.
pub fn is_pure(e: &Expr) -> bool {
    let mut pure = true;
    e.visit(&mut |node| {
        if matches!(node, Expr::New(_) | Expr::Assign(..) | Expr::Deref(_)) {
            pure = false;
        }
    });
    pure
}

/// Is `m` a *freely generated* collection monoid — one whose value is
/// literally the merge-tree of its units (list, bag, set)? Rules N5 and N8
/// are valid only for these: `sorted`/`sortedbag` comprehensions *reorder*
/// their elements and `oset` drops non-adjacent duplicates, so iterating
/// such a comprehension is not the same as iterating its qualifiers.
/// (Table 1 notes `M[n]` is "not freely generated" for the same reason.)
fn freely_generated(m: &Monoid) -> bool {
    matches!(m, Monoid::List | Monoid::Bag | Monoid::Set)
}

fn quals_pure(quals: &[Qual]) -> bool {
    quals.iter().all(|q| match q {
        Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => is_pure(e),
        Qual::VecGen { source, .. } => is_pure(source),
    })
}

/// Normalize to canonical form. Returns the normalized expression.
pub fn normalize(e: &Expr) -> Expr {
    normalize_traced(e).0
}

/// Normalize, returning the derivation trace and statistics alongside.
/// Per-rule firing counts are also accumulated into the process-wide
/// metrics registry (`normalize_rule_fired_total{rule=…}`), so a fleet
/// of queries leaves an aggregate account of which rewrites carry the
/// normalization load.
pub fn normalize_traced(e: &Expr) -> (Expr, Vec<TraceStep>, NormalizeStats) {
    let started = std::time::Instant::now();
    let mut current = e.clone();
    let mut trace = Vec::new();
    let mut per_rule = [0u64; Rule::COUNT];
    let size_before = e.size();
    let mut steps = 0;
    let verifying = crate::analysis::verify::verify_enabled();
    while let Some((rule, next)) = rewrite_once(&current) {
        steps += 1;
        if steps > MAX_STEPS {
            // Give up gracefully: the term is still meaning-equivalent.
            break;
        }
        if verifying {
            // Stage invariant verifier: every rule firing must preserve
            // scoping, C/I legality, well-formedness, and typing. On in
            // debug builds; MONOID_VERIFY=1 forces it (docs/analysis.md).
            if let Err(err) = crate::analysis::verify::check_rewrite(rule.name(), &current, &next)
            {
                panic!("normalization invariant violated at step {steps}: {err}");
            }
        }
        per_rule[rule.number() as usize - 1] += 1;
        trace.push(TraceStep { rule, after: pretty(&next) });
        current = next;
    }
    record_rule_metrics(&per_rule, steps);
    let stats = NormalizeStats {
        steps,
        per_rule,
        size_before,
        size_after: current.size(),
        elapsed_nanos: started.elapsed().as_nanos(),
    };
    (current, trace, stats)
}

/// Feed one run's firing counts into [`crate::metrics::global`]. Counter
/// handles are resolved once per process and cached; a normalization
/// run then costs one atomic add per *fired* rule plus one for runs.
fn record_rule_metrics(per_rule: &[u64; Rule::COUNT], steps: usize) {
    use crate::metrics::{global, Counter};
    use std::sync::{Arc, OnceLock};
    struct Handles {
        runs: Arc<Counter>,
        total_steps: Arc<Counter>,
        rules: Vec<Arc<Counter>>,
    }
    static HANDLES: OnceLock<Handles> = OnceLock::new();
    let h = HANDLES.get_or_init(|| {
        let r = global();
        Handles {
            runs: r.counter("normalize_runs_total"),
            total_steps: r.counter("normalize_steps_total"),
            rules: Rule::all()
                .iter()
                .map(|rule| r.counter_with("normalize_rule_fired_total", &[("rule", rule.name())]))
                .collect(),
        }
    });
    h.runs.inc();
    h.total_steps.add(steps as u64);
    for (i, n) in per_rule.iter().enumerate() {
        if *n > 0 {
            h.rules[i].add(*n);
        }
    }
}

/// Is `e` in canonical form (no rule applies anywhere)?
pub fn is_canonical(e: &Expr) -> bool {
    rewrite_once(e).is_none()
}

/// Try to rewrite: first at the root, then leftmost-innermost in children.
fn rewrite_once(e: &Expr) -> Option<(Rule, Expr)> {
    if let Some(hit) = try_rules_at_root(e) {
        return Some(hit);
    }
    rewrite_in_children(e)
}

// ---------------------------------------------------------------------------
// Root-level rule dispatch.
// ---------------------------------------------------------------------------

fn try_rules_at_root(e: &Expr) -> Option<(Rule, Expr)> {
    match e {
        // N1: (λv. e) u ⇒ e[u/v] — gated on purity or single use of u.
        Expr::Apply(f, arg) => {
            if let Expr::Lambda(param, body) = f.as_ref() {
                if inlinable(arg, param, body) {
                    return Some((Rule::Beta, subst(body, *param, arg)));
                }
            }
            None
        }
        // N2: ⟨…,A=u,…⟩.A ⇒ u   /   (u₁,…,uₙ).i ⇒ uᵢ
        Expr::Proj(inner, field) => {
            if let Expr::Record(fields) = inner.as_ref() {
                let target = fields.iter().find(|(n, _)| n == field)?;
                let others_pure = fields
                    .iter()
                    .filter(|(n, _)| n != field)
                    .all(|(_, fe)| is_pure(fe));
                if others_pure {
                    return Some((Rule::Proj, target.1.clone()));
                }
            }
            None
        }
        Expr::TupleProj(inner, idx) => {
            if let Expr::Tuple(items) = inner.as_ref() {
                let target = items.get(*idx)?;
                let others_pure = items
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| i != idx)
                    .all(|(_, ie)| is_pure(ie));
                if others_pure {
                    return Some((Rule::Proj, target.clone()));
                }
            }
            None
        }
        // N12: let v = u in e ⇒ e[u/v]
        Expr::Let(v, def, body) => {
            if inlinable(def, v, body) {
                return Some((Rule::LetInline, subst(body, *v, def)));
            }
            None
        }
        // N13: hom ⇒ comprehension, so homs join the normalization game.
        Expr::Hom { monoid, var, body, source } => {
            let comp = if monoid.is_collection() {
                let w = Symbol::fresh("w");
                Expr::Comp {
                    monoid: monoid.clone(),
                    head: Box::new(Expr::Var(w)),
                    quals: vec![
                        Qual::Gen(*var, source.as_ref().clone()),
                        Qual::Gen(w, body.as_ref().clone()),
                    ],
                }
            } else {
                Expr::Comp {
                    monoid: monoid.clone(),
                    head: body.clone(),
                    quals: vec![Qual::Gen(*var, source.as_ref().clone())],
                }
            };
            Some((Rule::HomToComp, comp))
        }
        Expr::Comp { monoid, head, quals } => try_comp_rules(monoid, head, quals),
        Expr::VecComp { elem_monoid, size, value, index, quals } => {
            // Vector comprehensions share the qualifier rules; the head is
            // (value, index).
            let vec_monoid = Monoid::VecOf(Box::new(elem_monoid.clone()));
            let heads = Expr::Tuple(vec![value.as_ref().clone(), index.as_ref().clone()]);
            let (rule, new_quals, new_heads) = try_qual_rules(&vec_monoid, &heads, quals)?;
            let Expr::Tuple(mut hs) = new_heads else { unreachable!() };
            let idx = hs.pop().expect("two heads");
            let val = hs.pop().expect("two heads");
            Some((
                rule,
                Expr::VecComp {
                    elem_monoid: elem_monoid.clone(),
                    size: size.clone(),
                    value: Box::new(val),
                    index: Box::new(idx),
                    quals: new_quals,
                },
            ))
        }
        _ => None,
    }
}

/// Should `def` be inlined for `var` in `body`? Pure definitions are always
/// inlined (the paper's convention); impure ones only when that preserves
/// evaluation exactly — which a single syntactic occurrence in head
/// position cannot guarantee in general, so we keep them.
fn inlinable(def: &Expr, var: &Symbol, body: &Expr) -> bool {
    let _ = body;
    let _ = var;
    is_pure(def)
}

fn try_comp_rules(monoid: &Monoid, head: &Expr, quals: &[Qual]) -> Option<(Rule, Expr)> {
    let (rule, new_quals, new_head) = try_qual_rules(monoid, head, quals)?;
    Some((
        rule,
        Expr::Comp { monoid: monoid.clone(), head: Box::new(new_head), quals: new_quals },
    ))
}

/// The qualifier-list rules (N3–N11), shared by `Comp` and `VecComp`.
/// Returns the rule plus the rewritten qualifier list and head — except for
/// rules that replace the whole comprehension (N3, N8, N11, N14), which are
/// handled inline and returned through a sentinel: see `try_comp_rules`
/// callers. To keep one code path, those rules are implemented here for
/// `Comp` only via `try_whole_comp_rules`.
#[allow(clippy::collapsible_match)] // nested guards read clearer than merged patterns
fn try_qual_rules(
    monoid: &Monoid,
    head: &Expr,
    quals: &[Qual],
) -> Option<(Rule, Vec<Qual>, Expr)> {
    for (i, q) in quals.iter().enumerate() {
        match q {
            // N4: v ← unit_N(u)  /  v ← [u] etc. ⇒ v ≡ u
            Qual::Gen(v, src) => {
                if let Some(u) = singleton_source(src) {
                    let mut new_quals = quals.to_vec();
                    new_quals[i] = Qual::Bind(*v, u);
                    return Some((Rule::SingletonGen, new_quals, head.clone()));
                }
                // N5: v ← N{ e' | r } ⇒ r, v ≡ e'
                if let Expr::Comp { monoid: inner_m, head: inner_head, quals: inner_quals } =
                    src
                {
                    if freely_generated(inner_m) && flatten_safe(quals, i, inner_quals) {
                        let (mut spliced, spliced_head) = rename_for_splice(
                            inner_quals,
                            inner_head,
                            &quals[i + 1..],
                            head,
                        );
                        let mut new_quals: Vec<Qual> = quals[..i].to_vec();
                        new_quals.append(&mut spliced);
                        new_quals.push(Qual::Bind(*v, spliced_head));
                        new_quals.extend_from_slice(&quals[i + 1..]);
                        return Some((Rule::FlattenGen, new_quals, head.clone()));
                    }
                }
            }
            // N7: v ≡ u ⇒ inline u (pure u only).
            Qual::Bind(v, u) => {
                if is_pure(u) {
                    let (mut tail, new_head) =
                        subst_through_tail(&quals[i + 1..], head, *v, u);
                    let mut new_quals: Vec<Qual> = quals[..i].to_vec();
                    new_quals.append(&mut tail);
                    return Some((Rule::BindInline, new_quals, new_head));
                }
            }
            Qual::Pred(p) => match p {
                // N9: p₁ ∧ p₂ ⇒ p₁, p₂
                Expr::BinOp(BinOp::And, a, b) => {
                    let mut new_quals: Vec<Qual> = quals[..i].to_vec();
                    new_quals.push(Qual::Pred(a.as_ref().clone()));
                    new_quals.push(Qual::Pred(b.as_ref().clone()));
                    new_quals.extend_from_slice(&quals[i + 1..]);
                    return Some((Rule::AndSplit, new_quals, head.clone()));
                }
                // N10: true ⇒ (drop)
                Expr::Lit(crate::expr::Literal::Bool(true)) => {
                    let mut new_quals: Vec<Qual> = quals[..i].to_vec();
                    new_quals.extend_from_slice(&quals[i + 1..]);
                    return Some((Rule::TruePred, new_quals, head.clone()));
                }
                // N6: some{ p | r } as a filter ⇒ r, p — idempotent M only.
                Expr::Comp { monoid: Monoid::Some, head: inner_p, quals: inner_quals } => {
                    // Requires a CI output monoid: idempotence absorbs the
                    // duplicate contributions of multiple witnesses, and
                    // commutativity guarantees every spliced generator
                    // source stays type-legal (anything ≤ CI).
                    if monoid.props() == crate::monoid::Props::CI
                        && flatten_safe(quals, i, inner_quals)
                    {
                        let (mut spliced, spliced_pred) = rename_for_splice(
                            inner_quals,
                            inner_p,
                            &quals[i + 1..],
                            head,
                        );
                        let mut new_quals: Vec<Qual> = quals[..i].to_vec();
                        new_quals.append(&mut spliced);
                        new_quals.push(Qual::Pred(spliced_pred));
                        new_quals.extend_from_slice(&quals[i + 1..]);
                        return Some((Rule::ExistsFilter, new_quals, head.clone()));
                    }
                }
                _ => {}
            },
            Qual::VecGen { .. } => {}
        }
    }
    None
}

/// N3/N8/N11/N14 replace the whole comprehension; they only make sense for
/// `Comp` (a `VecComp`'s zero is a zero-filled vector, which `ZeroGen`
/// cannot express without the size — we leave those to evaluation).
#[allow(clippy::collapsible_match)] // nested guards read clearer than merged patterns
fn try_whole_comp_rules(monoid: &Monoid, head: &Expr, quals: &[Qual]) -> Option<(Rule, Expr)> {
    for (i, q) in quals.iter().enumerate() {
        let before_pure = quals_pure(&quals[..i]);
        match q {
            Qual::Gen(_, src) => {
                // N3: v ← zero ⇒ zero_M (requires the prefix be pure — it
                // would otherwise have run for effect).
                if is_zero_source(src) && before_pure && is_pure(src) {
                    return Some((Rule::ZeroGen, Expr::Zero(monoid.clone())));
                }
                // N8: v ← e₁ ⊕ e₂ ⇒ split. Three side conditions:
                // the whole comprehension must be pure (everything else is
                // duplicated); the merge must be of a freely generated
                // monoid (an `oset`/`sorted` merge reorders or drops
                // elements); and the split must not reorder results —
                // `⊕_q (A_q ⊕ B_q) = (⊕_q A_q) ⊕ (⊕_q B_q)` needs either a
                // commutative output monoid or no generator before `v`.
                if let Expr::Merge(merge_m, a, b) = src {
                    if !freely_generated(merge_m) {
                        continue;
                    }
                    let prefix_has_generator = quals[..i]
                        .iter()
                        .any(|q| matches!(q, Qual::Gen(..) | Qual::VecGen { .. }));
                    if prefix_has_generator && !monoid.props().commutative {
                        continue;
                    }
                    let whole = Expr::Comp {
                        monoid: monoid.clone(),
                        head: Box::new(head.clone()),
                        quals: quals.to_vec(),
                    };
                    if is_pure(&whole) {
                        let mk = |source: &Expr| {
                            let mut qs = quals.to_vec();
                            if let Qual::Gen(v, _) = &quals[i] {
                                qs[i] = Qual::Gen(*v, source.clone());
                            }
                            Expr::Comp {
                                monoid: monoid.clone(),
                                head: Box::new(head.clone()),
                                quals: qs,
                            }
                        };
                        return Some((
                            Rule::MergeGen,
                            Expr::Merge(
                                monoid.clone(),
                                Box::new(mk(a)),
                                Box::new(mk(b)),
                            ),
                        ));
                    }
                }
            }
            Qual::Pred(Expr::Lit(crate::expr::Literal::Bool(false))) => {
                // N11: false ⇒ zero_M (prefix must be pure).
                if before_pure {
                    return Some((Rule::FalsePred, Expr::Zero(monoid.clone())));
                }
            }
            // N14: if c then p₁ else p₂ as predicate ⇒ two comprehensions.
            // Like N8, the split groups branch-1 rows before branch-2 rows,
            // so a non-commutative output monoid forbids it when any
            // generator precedes the predicate.
            Qual::Pred(Expr::If(c, p1, p2)) => {
                let prefix_has_generator = quals[..i]
                    .iter()
                    .any(|q| matches!(q, Qual::Gen(..) | Qual::VecGen { .. }));
                if prefix_has_generator && !monoid.props().commutative {
                    continue;
                }
                let whole = Expr::Comp {
                    monoid: monoid.clone(),
                    head: Box::new(head.clone()),
                    quals: quals.to_vec(),
                };
                if is_pure(&whole) {
                    let mk = |cond: Expr, branch: &Expr| {
                        let mut qs: Vec<Qual> = quals[..i].to_vec();
                        qs.push(Qual::Pred(cond));
                        qs.push(Qual::Pred(branch.clone()));
                        qs.extend_from_slice(&quals[i + 1..]);
                        Expr::Comp {
                            monoid: monoid.clone(),
                            head: Box::new(head.clone()),
                            quals: qs,
                        }
                    };
                    let pos = mk(c.as_ref().clone(), p1);
                    let neg = mk(c.as_ref().clone().not(), p2);
                    return Some((
                        Rule::IfPredSplit,
                        Expr::Merge(monoid.clone(), Box::new(pos), Box::new(neg)),
                    ));
                }
            }
            _ => {}
        }
    }
    None
}

/// A source that is syntactically a singleton: `unit_N(u)` or a
/// one-element collection literal.
fn singleton_source(src: &Expr) -> Option<Expr> {
    match src {
        Expr::Unit(m, u) if m.is_collection() => Some(u.as_ref().clone()),
        Expr::CollLit(m, items) if m.is_collection() && items.len() == 1 => {
            Some(items[0].clone())
        }
        Expr::New(_) => {
            // A generator over `new(s)` binds exactly one object; §4.2
            // examples rely on this. Rewriting it to a Bind keeps the
            // single allocation.
            Some(src.clone())
        }
        _ => None,
    }
}

/// A source that is syntactically empty: `zero_N` or an empty literal.
fn is_zero_source(src: &Expr) -> bool {
    matches!(src, Expr::Zero(m) if m.is_collection())
        || matches!(src, Expr::CollLit(m, items) if m.is_collection() && items.is_empty())
}

/// Flattening interleaves the inner qualifiers `r` with the outer tail;
/// with heap effects anywhere in sight the interleaving is observable, so
/// require purity of the inner qualifiers and the outer tail.
fn flatten_safe(outer: &[Qual], at: usize, inner: &[Qual]) -> bool {
    quals_pure(inner) && quals_pure(&outer[at + 1..])
}

/// α-rename the binders of `inner_quals` that would capture free variables
/// of the outer tail/head when spliced; returns the renamed qualifiers and
/// corresponding head.
fn rename_for_splice(
    inner_quals: &[Qual],
    inner_head: &Expr,
    outer_tail: &[Qual],
    outer_head: &Expr,
) -> (Vec<Qual>, Expr) {
    // Free variables of the outer tail + head, which must not be captured.
    let mut protect: HashSet<Symbol> = free_vars(outer_head);
    for q in outer_tail {
        match q {
            Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => {
                protect.extend(free_vars(e));
            }
            Qual::VecGen { source, .. } => protect.extend(free_vars(source)),
        }
    }
    let mut quals = inner_quals.to_vec();
    let mut head = inner_head.clone();
    let mut i = 0;
    while i < quals.len() {
        let binders: Vec<Symbol> = match &quals[i] {
            Qual::Gen(v, _) | Qual::Bind(v, _) => vec![*v],
            Qual::VecGen { elem, index, .. } => vec![*elem, *index],
            Qual::Pred(_) => vec![],
        };
        for b in binders {
            if protect.contains(&b) {
                let fresh = Symbol::fresh(b.as_str());
                // Rename the binder itself…
                match &mut quals[i] {
                    Qual::Gen(v, _) | Qual::Bind(v, _) if *v == b => *v = fresh,
                    Qual::VecGen { elem, index, .. } => {
                        if *elem == b {
                            *elem = fresh;
                        } else if *index == b {
                            *index = fresh;
                        }
                    }
                    _ => {}
                }
                // …and its occurrences in the tail and head.
                rename_tail(&mut quals[i + 1..], &mut head, None, b, fresh);
            }
        }
        i += 1;
    }
    (quals, head)
}

/// Substitute `u` for `v` through a qualifier tail and head, respecting
/// shadowing (a re-binding of `v` stops the substitution).
fn subst_through_tail(
    tail: &[Qual],
    head: &Expr,
    v: Symbol,
    u: &Expr,
) -> (Vec<Qual>, Expr) {
    // Delegate to the comprehension substitution machinery by building a
    // temporary comprehension body.
    let tmp = Expr::Comp {
        monoid: Monoid::Set,
        head: Box::new(head.clone()),
        quals: tail.to_vec(),
    };
    match subst(&tmp, v, u) {
        Expr::Comp { head, quals, .. } => (quals, *head),
        _ => unreachable!("substitution preserves the constructor"),
    }
}

// ---------------------------------------------------------------------------
// Child traversal.
// ---------------------------------------------------------------------------

/// Try to rewrite inside the first child that admits a rewrite, rebuilding
/// this node around it.
fn rewrite_in_children(e: &Expr) -> Option<(Rule, Expr)> {
    // `Comp` whole-replacement rules (N3/N8/N11/N14) are tried here so root
    // qualifier rules get priority — they keep derivations shorter.
    if let Expr::Comp { monoid, head, quals } = e {
        if let Some(hit) = try_whole_comp_rules(monoid, head, quals) {
            return Some(hit);
        }
    }

    macro_rules! one {
        ($inner:expr, $rebuild:expr) => {
            if let Some((r, new)) = rewrite_once($inner) {
                #[allow(clippy::redundant_closure_call)]
                return Some((r, ($rebuild)(new)));
            }
        };
    }

    match e {
        Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) | Expr::Zero(_) => None,
        Expr::Record(fields) => {
            for (i, (_, fe)) in fields.iter().enumerate() {
                if let Some((r, new)) = rewrite_once(fe) {
                    let mut fs = fields.clone();
                    fs[i].1 = new;
                    return Some((r, Expr::Record(fs)));
                }
            }
            None
        }
        Expr::Tuple(items) => rewrite_vec(items, Expr::Tuple),
        Expr::CollLit(m, items) => {
            let m = m.clone();
            rewrite_vec(items, move |v| Expr::CollLit(m.clone(), v))
        }
        Expr::VecLit(items) => rewrite_vec(items, Expr::VecLit),
        Expr::Proj(inner, f) => {
            let f = *f;
            one!(inner, |n| Expr::Proj(Box::new(n), f));
            None
        }
        Expr::TupleProj(inner, i) => {
            let i = *i;
            one!(inner, |n| Expr::TupleProj(Box::new(n), i));
            None
        }
        Expr::UnOp(op, inner) => {
            let op = *op;
            one!(inner, |n| Expr::UnOp(op, Box::new(n)));
            None
        }
        Expr::Unit(m, inner) => {
            let m = m.clone();
            one!(inner, move |n| Expr::Unit(m.clone(), Box::new(n)));
            None
        }
        Expr::New(inner) => {
            one!(inner, |n| Expr::New(Box::new(n)));
            None
        }
        Expr::Deref(inner) => {
            one!(inner, |n| Expr::Deref(Box::new(n)));
            None
        }
        Expr::Lambda(p, body) => {
            let p = *p;
            one!(body, |n| Expr::Lambda(p, Box::new(n)));
            None
        }
        Expr::BinOp(op, a, b) => {
            let op = *op;
            one!(a, |n| Expr::BinOp(op, Box::new(n), b.clone()));
            one!(b, |n| Expr::BinOp(op, a.clone(), Box::new(n)));
            None
        }
        Expr::Apply(a, b) => {
            one!(a, |n| Expr::Apply(Box::new(n), b.clone()));
            one!(b, |n| Expr::Apply(a.clone(), Box::new(n)));
            None
        }
        Expr::Merge(m, a, b) => {
            let m1 = m.clone();
            one!(a, move |n| Expr::Merge(m1.clone(), Box::new(n), b.clone()));
            let m2 = m.clone();
            one!(b, move |n| Expr::Merge(m2.clone(), a.clone(), Box::new(n)));
            None
        }
        Expr::VecIndex(a, b) => {
            one!(a, |n| Expr::VecIndex(Box::new(n), b.clone()));
            one!(b, |n| Expr::VecIndex(a.clone(), Box::new(n)));
            None
        }
        Expr::Assign(a, b) => {
            one!(a, |n| Expr::Assign(Box::new(n), b.clone()));
            one!(b, |n| Expr::Assign(a.clone(), Box::new(n)));
            None
        }
        Expr::Let(v, def, body) => {
            let v = *v;
            one!(def, |n| Expr::Let(v, Box::new(n), body.clone()));
            one!(body, |n| Expr::Let(v, def.clone(), Box::new(n)));
            None
        }
        Expr::If(c, t, f) => {
            one!(c, |n| Expr::If(Box::new(n), t.clone(), f.clone()));
            one!(t, |n| Expr::If(c.clone(), Box::new(n), f.clone()));
            one!(f, |n| Expr::If(c.clone(), t.clone(), Box::new(n)));
            None
        }
        Expr::Hom { monoid, var, body, source } => {
            let (m, v) = (monoid.clone(), *var);
            one!(body, move |n| Expr::Hom {
                monoid: m.clone(),
                var: v,
                body: Box::new(n),
                source: source.clone(),
            });
            let (m, v) = (monoid.clone(), *var);
            one!(source, move |n| Expr::Hom {
                monoid: m.clone(),
                var: v,
                body: body.clone(),
                source: Box::new(n),
            });
            None
        }
        Expr::Comp { monoid, head, quals } => {
            for (i, q) in quals.iter().enumerate() {
                let inner = match q {
                    Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => e,
                    Qual::VecGen { source, .. } => source,
                };
                if let Some((r, new)) = rewrite_once(inner) {
                    let mut qs = quals.clone();
                    match &mut qs[i] {
                        Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => *e = new,
                        Qual::VecGen { source, .. } => *source = new,
                    }
                    return Some((
                        r,
                        Expr::Comp {
                            monoid: monoid.clone(),
                            head: head.clone(),
                            quals: qs,
                        },
                    ));
                }
            }
            let m = monoid.clone();
            let qs = quals.clone();
            one!(head, move |n| Expr::Comp {
                monoid: m.clone(),
                head: Box::new(n),
                quals: qs.clone(),
            });
            None
        }
        Expr::VecComp { elem_monoid, size, value, index, quals } => {
            let rebuild = |size: Expr, value: Expr, index: Expr, quals: Vec<Qual>| {
                Expr::VecComp {
                    elem_monoid: elem_monoid.clone(),
                    size: Box::new(size),
                    value: Box::new(value),
                    index: Box::new(index),
                    quals,
                }
            };
            if let Some((r, n)) = rewrite_once(size) {
                return Some((
                    r,
                    rebuild(n, value.as_ref().clone(), index.as_ref().clone(), quals.clone()),
                ));
            }
            for (i, q) in quals.iter().enumerate() {
                let inner = match q {
                    Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => e,
                    Qual::VecGen { source, .. } => source,
                };
                if let Some((r, new)) = rewrite_once(inner) {
                    let mut qs = quals.clone();
                    match &mut qs[i] {
                        Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => *e = new,
                        Qual::VecGen { source, .. } => *source = new,
                    }
                    return Some((
                        r,
                        rebuild(
                            size.as_ref().clone(),
                            value.as_ref().clone(),
                            index.as_ref().clone(),
                            qs,
                        ),
                    ));
                }
            }
            if let Some((r, n)) = rewrite_once(value) {
                return Some((
                    r,
                    rebuild(size.as_ref().clone(), n, index.as_ref().clone(), quals.clone()),
                ));
            }
            if let Some((r, n)) = rewrite_once(index) {
                return Some((
                    r,
                    rebuild(size.as_ref().clone(), value.as_ref().clone(), n, quals.clone()),
                ));
            }
            None
        }
    }
}

fn rewrite_vec(
    items: &[Expr],
    rebuild: impl Fn(Vec<Expr>) -> Expr,
) -> Option<(Rule, Expr)> {
    for (i, item) in items.iter().enumerate() {
        if let Some((r, new)) = rewrite_once(item) {
            let mut v = items.to_vec();
            v[i] = new;
            return Some((r, rebuild(v)));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_closed;

    fn set_comp(head: Expr, quals: Vec<Qual>) -> Expr {
        Expr::comp(Monoid::Set, head, quals)
    }

    #[test]
    fn beta_reduces() {
        let e = Expr::lambda("x", Expr::var("x").add(Expr::int(1))).apply(Expr::int(41));
        let (n, trace, _) = normalize_traced(&e);
        assert_eq!(n, Expr::int(41).add(Expr::int(1)));
        assert_eq!(trace[0].rule, Rule::Beta);
    }

    #[test]
    fn record_projection_reduces() {
        let e = Expr::record(vec![("a", Expr::int(1)), ("b", Expr::int(2))]).proj("b");
        assert_eq!(normalize(&e), Expr::int(2));
    }

    #[test]
    fn impure_record_projection_does_not_drop_effects() {
        // ⟨a=new(1), b=2⟩.b must not discard the allocation silently.
        let e = Expr::record(vec![("a", Expr::new_obj(Expr::int(1))), ("b", Expr::int(2))])
            .proj("b");
        assert_eq!(normalize(&e), e);
    }

    #[test]
    fn zero_generator_collapses() {
        let e = set_comp(
            Expr::var("x"),
            vec![Expr::gen("x", Expr::Zero(Monoid::Set))],
        );
        assert_eq!(normalize(&e), Expr::Zero(Monoid::Set));
    }

    #[test]
    fn empty_literal_generator_collapses() {
        let e = set_comp(Expr::var("x"), vec![Expr::gen("x", Expr::list_of(vec![]))]);
        assert_eq!(normalize(&e), Expr::Zero(Monoid::Set));
    }

    #[test]
    fn singleton_generator_becomes_binding_then_inlines() {
        // set{ x + 1 | x ← [5] }  ⇒  set{ 5 + 1 }  (N4 then N7)
        let e = set_comp(
            Expr::var("x").add(Expr::int(1)),
            vec![Expr::gen("x", Expr::list_of(vec![Expr::int(5)]))],
        );
        let (n, trace, _) = normalize_traced(&e);
        assert_eq!(n, set_comp(Expr::int(5).add(Expr::int(1)), vec![]));
        let rules: Vec<Rule> = trace.iter().map(|t| t.rule).collect();
        assert_eq!(rules, vec![Rule::SingletonGen, Rule::BindInline]);
    }

    #[test]
    fn flatten_generator_unnests() {
        // set{ x | x ← set{ y*2 | y ← ys } }  ⇒  set{ y*2 | y ← ys }
        let inner = set_comp(
            Expr::var("y").mul(Expr::int(2)),
            vec![Expr::gen("y", Expr::var("ys"))],
        );
        let e = set_comp(Expr::var("x"), vec![Expr::gen("x", inner)]);
        let n = normalize(&e);
        let expected = set_comp(
            Expr::var("y").mul(Expr::int(2)),
            vec![Expr::gen("y", Expr::var("ys"))],
        );
        assert_eq!(n, expected);
    }

    #[test]
    fn flatten_renames_on_conflict() {
        // set{ (x, y) | x ← set{ y | y ← ys }, y ← zs }: the inner binder y
        // collides with the outer generator's *use*?? — here with the outer
        // head's y, which refers to the second generator. The inner y must
        // be renamed.
        let inner = set_comp(Expr::var("y"), vec![Expr::gen("y", Expr::var("ys"))]);
        let e = Expr::comp(
            Monoid::Set,
            Expr::Tuple(vec![Expr::var("x"), Expr::var("y")]),
            vec![Expr::gen("x", inner), Expr::gen("y", Expr::var("zs"))],
        );
        let n = normalize(&e);
        // Meaning check by evaluation.
        let env_e = |e: &Expr| {
            let bound = subst(
                &subst(e, Symbol::new("ys"), &Expr::list_of(vec![Expr::int(1), Expr::int(2)])),
                Symbol::new("zs"),
                &Expr::list_of(vec![Expr::int(10)]),
            );
            eval_closed(&bound).unwrap()
        };
        assert_eq!(env_e(&e), env_e(&n));
    }

    #[test]
    fn exists_filter_unnests_for_idempotent_monoid() {
        // set{ x | x ← xs, some{ x = y | y ← ys } }
        //   ⇒ set{ x | x ← xs, y ← ys, x = y }
        let e = set_comp(
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::pred(Expr::comp(
                    Monoid::Some,
                    Expr::var("x").eq(Expr::var("y")),
                    vec![Expr::gen("y", Expr::var("ys"))],
                )),
            ],
        );
        let n = normalize(&e);
        let expected = set_comp(
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::gen("y", Expr::var("ys")),
                Expr::pred(Expr::var("x").eq(Expr::var("y"))),
            ],
        );
        assert_eq!(n, expected);
    }

    #[test]
    fn exists_filter_not_unnested_for_bag() {
        // bag{ x | x ← xs, some{…} } must NOT unnest (bag is not
        // idempotent: multiple witnesses would duplicate x).
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::pred(Expr::comp(
                    Monoid::Some,
                    Expr::var("x").eq(Expr::var("y")),
                    vec![Expr::gen("y", Expr::var("ys"))],
                )),
            ],
        );
        let n = normalize(&e);
        // The exists stays as a filter.
        match &n {
            Expr::Comp { quals, .. } => {
                assert!(matches!(&quals[1], Qual::Pred(Expr::Comp { .. })));
            }
            other => panic!("expected comp, got {other:?}"),
        }
    }

    #[test]
    fn merge_generator_splits() {
        // sum{ x | x ← xs ⊎ ys } ⇒ sum{x|x←xs} + sum{x|x←ys}
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("x"),
            vec![Expr::gen(
                "x",
                Expr::merge(Monoid::Bag, Expr::var("xs"), Expr::var("ys")),
            )],
        );
        let n = normalize(&e);
        assert!(matches!(n, Expr::Merge(Monoid::Sum, _, _)));
    }

    #[test]
    fn and_split_and_true_removal() {
        let e = set_comp(
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::pred(Expr::bool(true).and(Expr::var("x").gt(Expr::int(0)))),
            ],
        );
        let n = normalize(&e);
        let expected = set_comp(
            Expr::var("x"),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::pred(Expr::var("x").gt(Expr::int(0))),
            ],
        );
        assert_eq!(n, expected);
    }

    #[test]
    fn false_predicate_collapses() {
        let e = set_comp(
            Expr::var("x"),
            vec![Expr::gen("x", Expr::var("xs")), Expr::pred(Expr::bool(false))],
        );
        assert_eq!(normalize(&e), Expr::Zero(Monoid::Set));
    }

    #[test]
    fn hom_becomes_comprehension() {
        let e = Expr::hom(
            Monoid::Sum,
            "x",
            Expr::var("x").mul(Expr::int(2)),
            Expr::list_of(vec![Expr::int(1), Expr::int(2)]),
        );
        let n = normalize(&e);
        assert!(matches!(n, Expr::Comp { monoid: Monoid::Sum, .. }));
        assert_eq!(eval_closed(&n).unwrap(), eval_closed(&e).unwrap());
    }

    #[test]
    fn nested_query_normalizes_to_single_flat_comprehension() {
        // The shape of the paper's §3.1 derivation:
        // bag{ h | h ← bag{ h' | c ← Cities, c.name = "P", h' ← c.hotels } }
        //   ⇒ bag{ h' | c ← Cities, c.name = "P", h' ← c.hotels }
        let inner = Expr::comp(
            Monoid::Bag,
            Expr::var("hp"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("P"))),
                Expr::gen("hp", Expr::var("c").proj("hotels")),
            ],
        );
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![Expr::gen("h", inner)],
        );
        let (n, _, stats) = normalize_traced(&e);
        match &n {
            Expr::Comp { monoid: Monoid::Bag, quals, .. } => {
                assert_eq!(quals.len(), 3, "flat: two generators + one predicate");
                assert!(is_canonical(&n));
            }
            other => panic!("expected flat comp, got {other:?}"),
        }
        assert!(stats.steps >= 2);
    }

    #[test]
    fn impure_generators_are_not_duplicated() {
        // sum{ !x | x ← new(0) ⊎ … } — never split a merge when effects
        // exist; and a new() generator becomes a Bind, not an inline.
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("x").deref(),
            vec![Expr::gen("x", Expr::new_obj(Expr::int(0)))],
        );
        let n = normalize(&e);
        // new() bound via Bind (kept, since impure).
        match &n {
            Expr::Comp { quals, .. } => {
                assert!(matches!(&quals[0], Qual::Bind(_, Expr::New(_))));
            }
            other => panic!("expected comp, got {other:?}"),
        }
        // Evaluation still allocates exactly once and yields 0.
        assert_eq!(eval_closed(&n).unwrap(), eval_closed(&e).unwrap());
    }

    #[test]
    fn normalization_is_idempotent() {
        let inner = set_comp(
            Expr::var("y").mul(Expr::int(2)),
            vec![Expr::gen("y", Expr::var("ys"))],
        );
        let e = set_comp(
            Expr::var("x"),
            vec![
                Expr::gen("x", inner),
                Expr::pred(Expr::bool(true).and(Expr::var("x").gt(Expr::int(0)))),
            ],
        );
        let n1 = normalize(&e);
        let n2 = normalize(&n1);
        assert_eq!(n1, n2);
        assert!(is_canonical(&n1));
    }

    #[test]
    fn stats_count_rules() {
        let e = set_comp(
            Expr::var("x").add(Expr::int(1)),
            vec![Expr::gen("x", Expr::list_of(vec![Expr::int(5)]))],
        );
        let (_, _, stats) = normalize_traced(&e);
        assert_eq!(stats.steps, 2);
        let fired: u64 = stats.per_rule.iter().sum();
        assert_eq!(fired, 2);
        // The keyed accessors agree with the raw array.
        assert_eq!(stats.rule_counts().map(|(_, n)| n).sum::<u64>(), 2);
        assert_eq!(stats.fired(Rule::SingletonGen), 1, "{}", stats.render_rules());
        assert_eq!(stats.fired(Rule::MergeGen), 0);
        assert!(stats.render_rules().contains("singleton-generator ×1"), "{}", stats.render_rules());
    }
}
