//! The evaluator: an operational semantics for the calculus.
//!
//! Comprehensions are evaluated by their reduction to homomorphisms
//! (paper §2.4): generators fold their source collection, predicates guard,
//! bindings extend the environment, and the head is injected with `unit`
//! and accumulated with `merge`. Qualifiers evaluate strictly left-to-right
//! and depth-first, which is what gives `new`/`!`/`:=` (§4.2) their
//! state-transformer semantics: each qualifier sees the heap effects of the
//! qualifiers before it.
//!
//! The evaluator *dynamically* enforces the paper's C/I legality restriction
//! on generators (drawing from a set inside a `sum` comprehension is a
//! runtime error here and a static error in `typecheck`), so evaluation
//! never silently invents multiplicities.
//!
//! `some`/`all` comprehensions short-circuit: evaluation of an existential
//! stops at the first witness. This is semantically transparent (the monoid
//! is idempotent and the remaining merges cannot change the result) but
//! matters for the complexity of un-normalized nested queries.

use crate::error::{EvalError, EvalResult};
use crate::expr::{BinOp, Expr, Literal, Qual, UnOp};
use crate::heap::Heap;
use crate::monoid::Monoid;
use crate::symbol::Symbol;
use crate::value::{self, Closure, Env, Value};
use std::sync::Arc;

/// Evaluator state: the object heap plus a step budget that guards against
/// runaway evaluation (useful under property testing and for adversarial
/// input).
#[derive(Debug)]
pub struct Evaluator {
    pub heap: Heap,
    steps_left: u64,
    steps_used: u64,
}

impl Default for Evaluator {
    fn default() -> Self {
        Evaluator::new()
    }
}

impl Evaluator {
    pub fn new() -> Evaluator {
        Evaluator { heap: Heap::new(), steps_left: u64::MAX, steps_used: 0 }
    }

    /// An evaluator whose total work is bounded by `steps` AST-node visits.
    pub fn with_budget(steps: u64) -> Evaluator {
        Evaluator { heap: Heap::new(), steps_left: steps, steps_used: 0 }
    }

    /// Evaluate with a pre-populated heap (e.g. a database).
    pub fn with_heap(heap: Heap) -> Evaluator {
        Evaluator { heap, steps_left: u64::MAX, steps_used: 0 }
    }

    /// Number of evaluation steps performed so far (one per AST node
    /// visited). Used by benchmarks as an implementation-independent cost
    /// measure.
    pub fn steps_used(&self) -> u64 {
        self.steps_used
    }

    /// Evaluate a closed expression.
    pub fn eval_expr(&mut self, e: &Expr) -> EvalResult<Value> {
        self.eval(&Env::empty(), e)
    }

    fn tick(&mut self) -> EvalResult<()> {
        self.steps_used += 1;
        if self.steps_left == 0 {
            return Err(EvalError::BudgetExhausted);
        }
        self.steps_left -= 1;
        Ok(())
    }

    /// Evaluate `e` under `env`.
    pub fn eval(&mut self, env: &Env, e: &Expr) -> EvalResult<Value> {
        self.tick()?;
        match e {
            Expr::Lit(lit) => Ok(match lit {
                Literal::Bool(b) => Value::Bool(*b),
                Literal::Int(i) => Value::Int(*i),
                Literal::Float(x) => Value::Float(*x),
                Literal::Str(s) => Value::Str(s.clone()),
                Literal::Null => Value::Null,
            }),
            Expr::Var(v) => env
                .lookup(*v)
                .cloned()
                .ok_or(EvalError::UnboundVariable(*v)),
            // Parameters are bound into the root environment by the
            // prepared-statement layer under their `$`-prefixed name,
            // which no parsed identifier can collide with.
            Expr::Param(p) => env
                .lookup(*p)
                .cloned()
                .ok_or(EvalError::UnboundParameter(*p)),
            Expr::Record(fields) => {
                let mut vals = Vec::with_capacity(fields.len());
                for (name, fe) in fields {
                    vals.push((*name, self.eval(env, fe)?));
                }
                Ok(Value::record(vals))
            }
            Expr::Tuple(items) => {
                let vals = items
                    .iter()
                    .map(|i| self.eval(env, i))
                    .collect::<EvalResult<Vec<_>>>()?;
                Ok(Value::tuple(vals))
            }
            Expr::Proj(inner, field) => {
                let v = self.eval(env, inner)?;
                self.project(&v, *field)
            }
            Expr::TupleProj(inner, idx) => {
                let v = self.eval(env, inner)?;
                match v {
                    Value::Tuple(items) => items.get(*idx).cloned().ok_or_else(|| {
                        EvalError::TypeMismatch {
                            op: "tuple projection",
                            detail: format!("index {idx} on {}-tuple", items.len()),
                        }
                    }),
                    other => Err(EvalError::TypeMismatch {
                        op: "tuple projection",
                        detail: format!("expected tuple, got {}", other.kind()),
                    }),
                }
            }
            Expr::BinOp(op, lhs, rhs) => self.eval_binop(env, *op, lhs, rhs),
            Expr::UnOp(op, inner) => self.eval_unop(env, *op, inner),
            Expr::If(cond, then, els) => {
                if self.eval(env, cond)?.as_bool()? {
                    self.eval(env, then)
                } else {
                    self.eval(env, els)
                }
            }
            Expr::Lambda(param, body) => Ok(Value::Closure(Arc::new(Closure::new(
                *param,
                body.as_ref().clone(),
                env.clone(),
            )))),
            Expr::Apply(f, arg) => {
                let fv = self.eval(env, f)?;
                let av = self.eval(env, arg)?;
                self.apply(&fv, av)
            }
            Expr::Let(v, def, body) => {
                let dv = self.eval(env, def)?;
                self.eval(&env.bind(*v, dv), body)
            }
            Expr::Zero(m) => value::zero(m),
            Expr::Unit(m, inner) => {
                let v = self.eval(env, inner)?;
                value::unit(m, v)
            }
            Expr::Merge(m, a, b) => {
                let av = self.eval(env, a)?;
                let bv = self.eval(env, b)?;
                value::merge(m, &av, &bv)
            }
            Expr::CollLit(m, items) => {
                let vals = items
                    .iter()
                    .map(|i| self.eval(env, i))
                    .collect::<EvalResult<Vec<_>>>()?;
                match m {
                    Monoid::List => Ok(Value::list(vals)),
                    Monoid::Set => Ok(Value::set_from(vals)),
                    Monoid::Bag => Ok(Value::bag_from(vals)),
                    // build by folding merges of units, exactly the sugar.
                    other => {
                        let mut acc = value::zero(other)?;
                        for v in vals {
                            let u = value::unit(other, v)?;
                            acc = value::merge(other, &acc, &u)?;
                        }
                        Ok(acc)
                    }
                }
            }
            Expr::VecLit(items) => {
                let vals = items
                    .iter()
                    .map(|i| self.eval(env, i))
                    .collect::<EvalResult<Vec<_>>>()?;
                Ok(Value::vector(vals))
            }
            Expr::Hom { monoid, var, body, source } => {
                let src = self.eval(env, source)?;
                self.check_generator_legality(&src, monoid)?;
                let mut acc = value::Accumulator::new(monoid)?;
                for elem in src.elements()? {
                    let benv = env.bind(*var, elem);
                    let bv = self.eval(&benv, body)?;
                    acc.merge_value(bv)?;
                    if acc.absorbed() {
                        break;
                    }
                }
                acc.finish()
            }
            Expr::Comp { monoid, head, quals } => {
                if matches!(monoid, Monoid::VecOf(_)) {
                    return Err(EvalError::Other(
                        "vector-monoid comprehensions use the VecComp form".into(),
                    ));
                }
                let mut acc = value::Accumulator::new(monoid)?;
                self.run_quals(env.clone(), quals, monoid, &mut |ev, qenv| {
                    let h = ev.eval(qenv, head)?;
                    acc.push_unit(h)?;
                    Ok(!acc.absorbed())
                })?;
                acc.finish()
            }
            Expr::VecComp { elem_monoid, size, value: val_e, index: idx_e, quals } => {
                let n = usize::try_from(self.eval(env, size)?.as_int()?).map_err(|_| {
                    EvalError::Other("vector comprehension size must be non-negative".into())
                })?;
                let out_monoid = Monoid::VecOf(Box::new(elem_monoid.clone()));
                // Slots fill lazily: a `zero` for nested vector monoids has
                // no intrinsic size, so untouched slots materialize their
                // zero only at the end (and error for `M[n][m]` elements,
                // which must be written at every index).
                let mut slots: Vec<Option<Value>> = vec![None; n];
                self.run_quals(env.clone(), quals, &out_monoid, &mut |ev, qenv| {
                    let v = ev.eval(qenv, val_e)?;
                    let i = ev.eval(qenv, idx_e)?.as_int()?;
                    let iu = usize::try_from(i)
                        .ok()
                        .filter(|iu| *iu < n)
                        .ok_or(EvalError::IndexOutOfBounds { index: i, len: n })?;
                    // A vector-element head is already an `M[n]` value;
                    // scalar/collection heads inject via `unit`.
                    let u = match elem_monoid {
                        Monoid::VecOf(_) => v,
                        _ => value::unit(elem_monoid, v)?,
                    };
                    slots[iu] = Some(match slots[iu].take() {
                        None => u,
                        Some(prev) => value::merge(elem_monoid, &prev, &u)?,
                    });
                    Ok(true)
                })?;
                let items = slots
                    .into_iter()
                    .enumerate()
                    .map(|(i, s)| match s {
                        Some(v) => Ok(v),
                        None => value::zero(elem_monoid).map_err(|_| {
                            EvalError::Other(format!(
                                "vector comprehension left index {i} unwritten and \
                                 {elem_monoid} has no sized zero"
                            ))
                        }),
                    })
                    .collect::<EvalResult<Vec<_>>>()?;
                Ok(Value::vector(items))
            }
            Expr::VecIndex(vec_e, idx_e) => {
                let vv = self.eval(env, vec_e)?;
                let i = self.eval(env, idx_e)?.as_int()?;
                let items = match &vv {
                    Value::Vector(items) | Value::List(items) => items,
                    other => {
                        return Err(EvalError::TypeMismatch {
                            op: "index",
                            detail: format!("expected vector, got {}", other.kind()),
                        })
                    }
                };
                usize::try_from(i)
                    .ok()
                    .and_then(|iu| items.get(iu))
                    .cloned()
                    .ok_or(EvalError::IndexOutOfBounds { index: i, len: items.len() })
            }
            Expr::New(state) => {
                let sv = self.eval(env, state)?;
                Ok(Value::Obj(self.heap.alloc(sv)))
            }
            Expr::Deref(inner) => {
                let v = self.eval(env, inner)?;
                match v {
                    Value::Obj(oid) => Ok(self.heap.get(oid)?.clone()),
                    other => Err(EvalError::TypeMismatch {
                        op: "deref",
                        detail: format!("expected object, got {}", other.kind()),
                    }),
                }
            }
            Expr::Assign(target, val) => {
                let tv = self.eval(env, target)?;
                let vv = self.eval(env, val)?;
                match tv {
                    Value::Obj(oid) => {
                        self.heap.set(oid, vv)?;
                        // `:=` evaluates to true so it can stand as a
                        // qualifier (paper §4.2).
                        Ok(Value::Bool(true))
                    }
                    other => Err(EvalError::TypeMismatch {
                        op: "assign",
                        detail: format!("expected object, got {}", other.kind()),
                    }),
                }
            }
        }
    }

    /// Projection with auto-deref: `e.A` on an object follows the identity
    /// to its record state first, so OQL path expressions work.
    fn project(&self, v: &Value, field: Symbol) -> EvalResult<Value> {
        project_value(&self.heap, v, field)
    }

    fn apply(&mut self, f: &Value, arg: Value) -> EvalResult<Value> {
        match f {
            Value::Closure(c) => {
                let env = c.env.bind(c.param, arg);
                self.eval(&env, &c.body)
            }
            other => Err(EvalError::TypeMismatch {
                op: "apply",
                detail: format!("expected function, got {}", other.kind()),
            }),
        }
    }

    /// The paper's legality restriction, enforced dynamically: the source
    /// collection's monoid properties must be a subset of the output
    /// monoid's.
    fn check_generator_legality(&self, source: &Value, target: &Monoid) -> EvalResult<()> {
        match source.source_monoid() {
            Some(m) if m.hom_legal_to(target) => Ok(()),
            Some(m) => Err(EvalError::Other(format!(
                "illegal homomorphism {m} → {target}: properties of {m} ({}) \
                 are not a subset of those of {target} ({})",
                m.props(),
                target.props()
            ))),
            None => Err(EvalError::TypeMismatch {
                op: "generator",
                detail: format!("not a collection: {}", source.kind()),
            }),
        }
    }

    /// Walk qualifiers left-to-right; call `sink` once per satisfying
    /// binding. `sink` returns `false` to short-circuit the whole
    /// comprehension. Returns `false` if short-circuited.
    fn run_quals(
        &mut self,
        env: Env,
        quals: &[Qual],
        out_monoid: &Monoid,
        sink: &mut dyn FnMut(&mut Evaluator, &Env) -> EvalResult<bool>,
    ) -> EvalResult<bool> {
        let Some((first, rest)) = quals.split_first() else {
            return sink(self, &env);
        };
        match first {
            Qual::Gen(v, src) => {
                let sv = self.eval(&env, src)?;
                // §4.2 idiom: a generator over an object (`x ← new(1)`)
                // binds exactly once.
                if matches!(sv, Value::Obj(_)) {
                    self.tick()?;
                    return self.run_quals(env.bind(*v, sv), rest, out_monoid, sink);
                }
                self.check_generator_legality(&sv, out_monoid)?;
                for elem in sv.elements()? {
                    self.tick()?;
                    let benv = env.bind(*v, elem);
                    if !self.run_quals(benv, rest, out_monoid, sink)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Qual::VecGen { elem, index, source } => {
                let sv = self.eval(&env, source)?;
                let items = match sv {
                    Value::Vector(items) | Value::List(items) => items,
                    other => {
                        return Err(EvalError::TypeMismatch {
                            op: "vector generator",
                            detail: format!("expected vector, got {}", other.kind()),
                        })
                    }
                };
                for (i, item) in items.iter().enumerate() {
                    self.tick()?;
                    let benv = env
                        .bind(*elem, item.clone())
                        .bind(*index, Value::Int(i as i64));
                    if !self.run_quals(benv, rest, out_monoid, sink)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Qual::Bind(v, e) => {
                let bv = self.eval(&env, e)?;
                self.run_quals(env.bind(*v, bv), rest, out_monoid, sink)
            }
            Qual::Pred(p) => {
                if self.eval(&env, p)?.as_bool()? {
                    self.run_quals(env, rest, out_monoid, sink)
                } else {
                    Ok(true)
                }
            }
        }
    }

    fn eval_binop(&mut self, env: &Env, op: BinOp, lhs: &Expr, rhs: &Expr) -> EvalResult<Value> {
        // and/or short-circuit.
        match op {
            BinOp::And => {
                return Ok(Value::Bool(
                    self.eval(env, lhs)?.as_bool()? && self.eval(env, rhs)?.as_bool()?,
                ))
            }
            BinOp::Or => {
                return Ok(Value::Bool(
                    self.eval(env, lhs)?.as_bool()? || self.eval(env, rhs)?.as_bool()?,
                ))
            }
            _ => {}
        }
        let a = self.eval(env, lhs)?;
        let b = self.eval(env, rhs)?;
        binop_values(op, &a, &b)
    }

    fn eval_unop(&mut self, env: &Env, op: UnOp, inner: &Expr) -> EvalResult<Value> {
        let v = self.eval(env, inner)?;
        unop_value(op, v)
    }
}

/// Projection with auto-deref (the value-level half of `Expr::Proj`): `e.A`
/// on an object follows the identity to its record state first, so OQL path
/// expressions work. Shared by the evaluator and the fused batch engine so
/// the two agree to the byte on both results and error messages.
pub fn project_value(heap: &Heap, v: &Value, field: Symbol) -> EvalResult<Value> {
    match v {
        Value::Record(_) => v.field(field).cloned().ok_or_else(|| {
            EvalError::TypeMismatch {
                op: "projection",
                detail: format!("record has no field `{field}`"),
            }
        }),
        Value::Obj(oid) => {
            let state = heap.get(*oid)?;
            project_value(heap, state, field)
        }
        other => Err(EvalError::TypeMismatch {
            op: "projection",
            detail: format!("cannot project `.{field}` from {}", other.kind()),
        }),
    }
}

/// The strict (already-evaluated-operands) half of binary-operator
/// semantics. `And`/`Or` never reach here — they short-circuit on the
/// left operand before the right is evaluated. Shared by the evaluator
/// and the fused batch engine.
pub fn binop_values(op: BinOp, a: &Value, b: &Value) -> EvalResult<Value> {
    match op {
        BinOp::Eq => Ok(Value::Bool(a == b)),
        BinOp::Ne => Ok(Value::Bool(a != b)),
        BinOp::Lt => Ok(Value::Bool(a < b)),
        BinOp::Le => Ok(Value::Bool(a <= b)),
        BinOp::Gt => Ok(Value::Bool(a > b)),
        BinOp::Ge => Ok(Value::Bool(a >= b)),
        BinOp::Add => match (a, b) {
            // `+` doubles as string concatenation, as in OQL `||`.
            (Value::Str(x), Value::Str(y)) => {
                Ok(Value::Str(Arc::from(format!("{x}{y}").as_str())))
            }
            _ => value::merge(&Monoid::Sum, a, b),
        },
        BinOp::Sub => num_op("-", a, b, i64::checked_sub, |x, y| x - y),
        BinOp::Mul => value::merge(&Monoid::Prod, a, b),
        BinOp::Div => match (a, b) {
            (_, Value::Int(0)) => Err(EvalError::Arithmetic("division by zero".into())),
            _ => num_op("/", a, b, i64::checked_div, |x, y| x / y),
        },
        BinOp::Mod => match (a, b) {
            (_, Value::Int(0)) => Err(EvalError::Arithmetic("modulo by zero".into())),
            _ => num_op("%", a, b, i64::checked_rem, |x, y| x % y),
        },
        BinOp::Like => match (a, b) {
            (Value::Str(s), Value::Str(p)) => Ok(Value::Bool(like_match(s, p)?)),
            _ => Err(EvalError::TypeMismatch {
                op: "like",
                detail: format!("expected strings, got {} and {}", a.kind(), b.kind()),
            }),
        },
        BinOp::And | BinOp::Or => unreachable!("short-circuit ops are handled by the caller"),
    }
}

/// The value-level half of unary-operator semantics, shared by the
/// evaluator and the fused batch engine.
pub fn unop_value(op: UnOp, v: Value) -> EvalResult<Value> {
    match op {
        UnOp::Not => Ok(Value::Bool(!v.as_bool()?)),
        UnOp::Neg => match v {
            Value::Int(i) => i
                .checked_neg()
                .map(Value::Int)
                .ok_or_else(|| EvalError::Arithmetic("negation overflow".into())),
            Value::Float(x) => Ok(Value::Float(-x)),
            other => Err(EvalError::TypeMismatch {
                op: "negate",
                detail: format!("expected number, got {}", other.kind()),
            }),
        },
        UnOp::Element => {
            let elems = v.elements()?;
            if elems.len() == 1 {
                Ok(elems.into_iter().next().expect("len checked"))
            } else {
                Err(EvalError::ElementCardinality(elems.len()))
            }
        }
        UnOp::ToBag => value::coerce_to_bag(&v),
        UnOp::ToList => value::coerce_to_list(&v),
        UnOp::ToSet => value::coerce_to_set(&v),
        UnOp::VecLen => match v {
            Value::Vector(items) | Value::List(items) => Ok(Value::Int(items.len() as i64)),
            other => Err(EvalError::TypeMismatch {
                op: "veclen",
                detail: format!("expected vector, got {}", other.kind()),
            }),
        },
        UnOp::Reverse => match v {
            Value::List(items) => {
                let mut out = items.as_ref().clone();
                out.reverse();
                Ok(Value::list(out))
            }
            Value::Vector(items) => {
                let mut out = items.as_ref().clone();
                out.reverse();
                Ok(Value::vector(out))
            }
            other => Err(EvalError::TypeMismatch {
                op: "reverse",
                detail: format!("expected list or vector, got {}", other.kind()),
            }),
        },
        UnOp::IsNull => Ok(Value::Bool(matches!(v, Value::Null))),
    }
}

fn num_op(
    op: &'static str,
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> EvalResult<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| EvalError::Arithmetic(format!("{op} overflow"))),
        (Value::Int(x), Value::Float(y)) => Ok(Value::Float(float_op(*x as f64, *y))),
        (Value::Float(x), Value::Int(y)) => Ok(Value::Float(float_op(*x, *y as f64))),
        (Value::Float(x), Value::Float(y)) => Ok(Value::Float(float_op(*x, *y))),
        _ => Err(EvalError::TypeMismatch {
            op,
            detail: format!("expected numbers, got {} and {}", a.kind(), b.kind()),
        }),
    }
}

/// One token of a parsed `like` pattern.
enum LikeTok {
    /// Match exactly this character.
    Lit(char),
    /// `_`: match any single character.
    One,
    /// `%`: match any (possibly empty) run of characters.
    Many,
}

/// Tokenize a `like` pattern. `\` escapes the next character (so `\%`,
/// `\_`, and `\\` are literals); a pattern ending in a bare `\` is an
/// error rather than a silent literal.
fn parse_like(pattern: &str) -> EvalResult<Vec<LikeTok>> {
    let mut toks = Vec::new();
    let mut chars = pattern.chars();
    while let Some(c) = chars.next() {
        match c {
            '%' => toks.push(LikeTok::Many),
            '_' => toks.push(LikeTok::One),
            '\\' => match chars.next() {
                Some(lit) => toks.push(LikeTok::Lit(lit)),
                None => {
                    return Err(EvalError::Other(
                        "`like` pattern ends with a dangling `\\` escape".into(),
                    ))
                }
            },
            lit => toks.push(LikeTok::Lit(lit)),
        }
    }
    Ok(toks)
}

/// OQL `like` matching: `%` matches any (possibly empty) substring, `_`
/// matches exactly one character, and `\c` matches `c` literally. Errors
/// on a pattern ending in a bare `\`.
pub fn like_match(s: &str, pattern: &str) -> EvalResult<bool> {
    let toks = parse_like(pattern)?;
    let chars: Vec<char> = s.chars().collect();
    let n = chars.len();
    // dp[i] ⇔ chars[i..] matches the token suffix processed so far;
    // tokens are folded in from the end of the pattern.
    let mut dp = vec![false; n + 1];
    dp[n] = true;
    for tok in toks.iter().rev() {
        let mut next = vec![false; n + 1];
        match tok {
            LikeTok::Many => {
                // `%` then rest: rest may start at any position ≥ i.
                let mut any = false;
                for i in (0..=n).rev() {
                    any = any || dp[i];
                    next[i] = any;
                }
            }
            LikeTok::One => next[..n].copy_from_slice(&dp[1..]),
            LikeTok::Lit(c) => {
                for i in 0..n {
                    next[i] = chars[i] == *c && dp[i + 1];
                }
            }
        }
        dp = next;
    }
    Ok(dp[0])
}

/// Convenience: evaluate a closed expression with a fresh evaluator.
pub fn eval_closed(e: &Expr) -> EvalResult<Value> {
    Evaluator::new().eval_expr(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    /// Paper §2.4: set{ (a,b) | a ← [1,2,3], b ← {{4,5}} } joins a list
    /// with a bag and returns a set.
    #[test]
    fn paper_mixed_collection_join() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::Tuple(vec![Expr::var("a"), Expr::var("b")]),
            vec![
                Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)])),
                Expr::gen("b", Expr::bag_of(vec![Expr::int(4), Expr::int(5)])),
            ],
        );
        let v = eval_closed(&e).unwrap();
        let expected = Value::set_from(vec![
            Value::tuple(ints(&[1, 4])),
            Value::tuple(ints(&[1, 5])),
            Value::tuple(ints(&[2, 4])),
            Value::tuple(ints(&[2, 5])),
            Value::tuple(ints(&[3, 4])),
            Value::tuple(ints(&[3, 5])),
        ]);
        assert_eq!(v, expected);
    }

    #[test]
    fn like_supports_percent_underscore_and_escapes() {
        // `%`: any run.
        assert!(like_match("hotel", "h%l").unwrap());
        assert!(like_match("hotel", "%").unwrap());
        assert!(!like_match("hotel", "h%x").unwrap());
        // `_`: exactly one character.
        assert!(like_match("hotel", "h_tel").unwrap());
        assert!(like_match("hotel", "_____").unwrap());
        assert!(!like_match("hotel", "______").unwrap());
        assert!(!like_match("hotel", "h_el").unwrap());
        // `\%` and `\_` are literals; `\\` is a literal backslash.
        assert!(like_match("a%b", r"a\%b").unwrap());
        assert!(!like_match("axb", r"a\%b").unwrap());
        assert!(like_match("a_b", r"a\_b").unwrap());
        assert!(!like_match("axb", r"a\_b").unwrap());
        assert!(like_match(r"a\b", r"a\\b").unwrap());
        // Wildcards combine.
        assert!(like_match("hotel_3_2", r"hotel\__\_%").unwrap());
        // Exact match still works with no wildcards at all.
        assert!(like_match("abc", "abc").unwrap());
        assert!(!like_match("abc", "abd").unwrap());
    }

    #[test]
    fn like_trailing_escape_is_an_error() {
        assert!(like_match("anything", r"abc\").is_err());
        // …including through the evaluator's `like` operator.
        let e = Expr::str("abc").like(Expr::str("abc\\"));
        assert!(eval_closed(&e).is_err());
    }

    /// Paper §2.4: sum{ a | a ← [1,2,3], a ≤ 2 } = 3.
    #[test]
    fn paper_sum_with_predicate() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("a"),
            vec![
                Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)])),
                Expr::pred(Expr::var("a").le(Expr::int(2))),
            ],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(3));
    }

    /// Paper §2.4: set{ (x,y) | x ← [1,2], y ← {{3,4,3}} } de-duplicates.
    #[test]
    fn paper_set_comprehension_dedups() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::Tuple(vec![Expr::var("x"), Expr::var("y")]),
            vec![
                Expr::gen("x", Expr::list_of(vec![Expr::int(1), Expr::int(2)])),
                Expr::gen(
                    "y",
                    Expr::bag_of(vec![Expr::int(3), Expr::int(4), Expr::int(3)]),
                ),
            ],
        );
        let v = eval_closed(&e).unwrap();
        assert_eq!(v.len().unwrap(), 4);
    }

    #[test]
    fn sum_over_set_is_illegal_at_runtime() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::set_of(vec![Expr::int(1), Expr::int(2)]))],
        );
        assert!(eval_closed(&e).is_err());
    }

    #[test]
    fn sum_over_bag_is_legal() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("a", Expr::bag_of(vec![Expr::int(7), Expr::int(7)]))],
        );
        // bag cardinality, the paper's canonical legal example.
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(2));
    }

    #[test]
    fn set_to_sorted_list_is_legal() {
        // The conversion the paper explicitly allows: set → sorted.
        let e = Expr::comp(
            Monoid::Sorted,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::set_of(vec![Expr::int(3), Expr::int(1), Expr::int(2)]))],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::list(ints(&[1, 2, 3])));
    }

    #[test]
    fn set_to_plain_list_is_illegal() {
        let e = Expr::comp(
            Monoid::List,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::set_of(vec![Expr::int(1)]))],
        );
        assert!(eval_closed(&e).is_err());
    }

    #[test]
    fn some_short_circuits() {
        // some{ x = 1 | x ← [1, boom…] } must not touch the rest once true…
        // observable through the step budget: a tight budget suffices.
        let big: Vec<Expr> = (0..10_000).map(Expr::int).collect();
        let mut items = vec![Expr::int(-1)];
        items.extend(big);
        let e = Expr::comp(
            Monoid::Some,
            Expr::var("x").eq(Expr::int(-1)),
            vec![Expr::gen("x", Expr::list_of(items))],
        );
        // Budget generous enough to build the literal but not to scan it
        // 10k times over: evaluation must stop at the first witness.
        let mut ev = Evaluator::with_budget(50_000);
        assert_eq!(ev.eval_expr(&e).unwrap(), Value::Bool(true));
    }

    #[test]
    fn bind_qualifier_names_intermediate() {
        // sum{ y | x ← [1,2], y ≡ x * 10 } = 30
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("y"),
            vec![
                Expr::gen("x", Expr::list_of(vec![Expr::int(1), Expr::int(2)])),
                Expr::bind("y", Expr::var("x").mul(Expr::int(10))),
            ],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(30));
    }

    #[test]
    fn empty_quals_primitive_is_identity() {
        let e = Expr::comp(Monoid::Sum, Expr::int(42), vec![]);
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(42));
    }

    #[test]
    fn empty_quals_collection_is_unit() {
        let e = Expr::comp(Monoid::Set, Expr::int(42), vec![]);
        assert_eq!(eval_closed(&e).unwrap(), Value::set_from(ints(&[42])));
    }

    #[test]
    fn hom_is_the_primitive_fold() {
        // hom[→sum](λx. x*2)([1,2,3]) = 12
        let e = Expr::hom(
            Monoid::Sum,
            "x",
            Expr::var("x").mul(Expr::int(2)),
            Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)]),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(12));
    }

    #[test]
    fn lambda_application_and_let() {
        let e = Expr::let_(
            "f",
            Expr::lambda("x", Expr::var("x").add(Expr::int(1))),
            Expr::var("f").apply(Expr::int(41)),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(42));
    }

    #[test]
    fn closures_capture_lexically() {
        // let a = 10 in let f = λx. x + a in let a = 0 in f 1  = 11
        let e = Expr::let_(
            "a",
            Expr::int(10),
            Expr::let_(
                "f",
                Expr::lambda("x", Expr::var("x").add(Expr::var("a"))),
                Expr::let_("a", Expr::int(0), Expr::var("f").apply(Expr::int(1))),
            ),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(11));
    }

    // ---- §4.2 identity & updates: the paper's four examples ----

    #[test]
    fn paper_new_objects_are_distinct_but_states_equal() {
        // some{ !x = !y | x ← new(1), y ← new(1) } → true
        let e = Expr::comp(
            Monoid::Some,
            Expr::var("x").deref().eq(Expr::var("y").deref()),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(1))),
                Expr::gen("y", Expr::new_obj(Expr::int(1))),
            ],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
        // … but x = y (identity) over distinct news → false
        let e2 = Expr::comp(
            Monoid::Some,
            Expr::var("x").eq(Expr::var("y")),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(1))),
                Expr::gen("y", Expr::new_obj(Expr::int(1))),
            ],
        );
        assert_eq!(eval_closed(&e2).unwrap(), Value::Bool(false));
    }

    #[test]
    fn paper_aliasing_and_assignment() {
        // some{ x = y | x ← new(1), y ≡ x, y := 2 } → true
        let e = Expr::comp(
            Monoid::Some,
            Expr::var("x").eq(Expr::var("y")),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(1))),
                Expr::bind("y", Expr::var("x")),
                Expr::pred(Expr::var("y").assign(Expr::int(2))),
            ],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
        // sum{ !x | x ← new(1), y ≡ x, y := 2 } → 2 (update through alias)
        let e2 = Expr::comp(
            Monoid::Sum,
            Expr::var("x").deref(),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(1))),
                Expr::bind("y", Expr::var("x")),
                Expr::pred(Expr::var("y").assign(Expr::int(2))),
            ],
        );
        assert_eq!(eval_closed(&e2).unwrap(), Value::Int(2));
    }

    #[test]
    fn paper_assign_then_iterate_state() {
        // set{ e | x ← new([]), x := [1,2], e ← !x } → {1,2}
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("e"),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::list_of(vec![]))),
                Expr::pred(
                    Expr::var("x").assign(Expr::list_of(vec![Expr::int(1), Expr::int(2)])),
                ),
                Expr::gen("e", Expr::var("x").deref()),
            ],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::set_from(ints(&[1, 2])));
    }

    #[test]
    fn paper_running_sums() {
        // list{ !x | x ← new(0), e ← [1,2,3,4], x := !x + e } → [1,3,6,10]
        let e = Expr::comp(
            Monoid::List,
            Expr::var("x").deref(),
            vec![
                Expr::gen("x", Expr::new_obj(Expr::int(0))),
                Expr::gen(
                    "e",
                    Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3), Expr::int(4)]),
                ),
                Expr::pred(
                    Expr::var("x").assign(Expr::var("x").deref().add(Expr::var("e"))),
                ),
            ],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::list(ints(&[1, 3, 6, 10])));
    }

    #[test]
    fn vector_comprehension_reverse() {
        // §4.1: vec[n]{ a [n−i−1] | a[i] ← x } reverses x.
        let x = Expr::VecLit(vec![Expr::int(10), Expr::int(20), Expr::int(30)]);
        let n = Expr::int(3);
        let e = Expr::vec_comp(
            Monoid::Sum,
            n,
            Expr::var("a"),
            Expr::int(3).sub(Expr::var("i")).sub(Expr::int(1)),
            vec![Expr::vec_gen("a", "i", x)],
        );
        assert_eq!(
            eval_closed(&e).unwrap(),
            Value::vector(ints(&[30, 20, 10]))
        );
    }

    #[test]
    fn vector_comprehension_merges_collisions() {
        // histogram-style: two hits on index 0 merge with sum.
        let e = Expr::vec_comp(
            Monoid::Sum,
            Expr::int(2),
            Expr::int(1),
            Expr::var("a").div(Expr::int(10)),
            vec![Expr::gen(
                "a",
                Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(15)]),
            )],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::vector(ints(&[2, 1])));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let e = Expr::int(1).div(Expr::int(0));
        assert!(matches!(eval_closed(&e), Err(EvalError::Arithmetic(_))));
    }

    #[test]
    fn budget_exhaustion_is_reported() {
        let e = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("x", Expr::list_of((0..100).map(Expr::int).collect()))],
        );
        let mut ev = Evaluator::with_budget(10);
        assert!(matches!(ev.eval_expr(&e), Err(EvalError::BudgetExhausted)));
    }

    #[test]
    fn string_iteration_as_list_of_chars() {
        // string is list(char): sum{1 | c ← "abc"} = 3.
        let e = Expr::comp(
            Monoid::Sum,
            Expr::int(1),
            vec![Expr::gen("c", Expr::str("abc"))],
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(3));
    }

    #[test]
    fn element_of_singleton() {
        let e = Expr::UnOp(
            UnOp::Element,
            Box::new(Expr::set_of(vec![Expr::int(9)])),
        );
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(9));
        let e2 = Expr::UnOp(
            UnOp::Element,
            Box::new(Expr::set_of(vec![Expr::int(9), Expr::int(10)])),
        );
        assert!(matches!(eval_closed(&e2), Err(EvalError::ElementCardinality(2))));
    }
}
