//! A parser for the calculus itself, accepting the paper's notation (as
//! printed by [`crate::pretty`]) plus ASCII equivalents — so terms can be
//! written, printed, and re-read:
//!
//! ```text
//! set{ (a, b) | a <- [1,2,3], b <- {{4,5}} }     -- ASCII
//! set{ (a, b) | a ← [1, 2, 3], b ← {{4, 5}} }    -- paper notation
//! sum[n]{ a [n - i - 1] | a[i] <- x }            -- vector comprehension
//! list{ !x | x <- new(0), e <- [1,2], x := !x + e }
//! let f = \x. x + 1 in f(41)
//! ```
//!
//! Token equivalences: `<-`/`←` (generator), `:==`/`≡` (binding),
//! `\`/`λ` (lambda), `<=`/`≤`, `>=`/`≥`, `!=`/`≠`, `<`…`>`/`⟨`…`⟩`
//! (records), `[|`…`|]`/`⟦`…`⟧` (vector literals). Merge operators parse
//! to their canonical monoid: `++` ⇒ list, `∪`/`\\/u` ⇒ set, `⊎`/`\\/b` ⇒
//! bag (`∨`/`∧` parse as boolean or/and, which coincide with the
//! some/all merges).
//!
//! The round-trip law `parse(pretty(e)) = e` holds for the comprehension
//! fragment (no explicit `hom`, whose pretty form is function-like) and is
//! property-tested.

use crate::error::TypeError;
use crate::expr::{BinOp, Expr, Literal, Qual, UnOp};
use crate::monoid::Monoid;
use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// A calculus parse error with byte position.
#[derive(Debug, Clone, PartialEq)]
pub struct ParseError {
    pub at: usize,
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "calculus parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

impl From<ParseError> for TypeError {
    fn from(e: ParseError) -> TypeError {
        TypeError::Other(e.to_string())
    }
}

/// Parse a calculus expression from text.
pub fn parse_expr(src: &str) -> Result<Expr, ParseError> {
    let mut p = P::new(src);
    p.skip_ws();
    let e = p.expr(0)?;
    p.skip_ws();
    if !p.eof() {
        return Err(p.err("trailing input"));
    }
    Ok(e)
}

const MAX_DEPTH: usize = 48;

struct P<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    at: usize,
    depth: usize,
}

impl<'a> P<'a> {
    fn new(src: &'a str) -> P<'a> {
        P { src, chars: src.char_indices().collect(), at: 0, depth: 0 }
    }

    fn eof(&self) -> bool {
        self.at >= self.chars.len()
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.at).map(|&(_, c)| c)
    }

    fn pos(&self) -> usize {
        self.chars.get(self.at).map(|&(o, _)| o).unwrap_or(self.src.len())
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError { at: self.pos(), msg: msg.into() }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.at += 1;
        Some(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
        // line comments: --
        if self.lookahead("--") {
            while !matches!(self.peek(), None | Some('\n')) {
                self.bump();
            }
            self.skip_ws();
        }
    }

    /// Does the input at the cursor start with `s`?
    fn lookahead(&self, s: &str) -> bool {
        let mut i = self.at;
        for ch in s.chars() {
            match self.chars.get(i) {
                Some(&(_, c)) if c == ch => i += 1,
                _ => return false,
            }
        }
        true
    }

    /// Eat `s` if present (token-ish: no identifier-char may follow when
    /// `s` ends with an identifier char).
    fn eat(&mut self, s: &str) -> bool {
        if !self.lookahead(s) {
            return false;
        }
        // `λ` is alphabetic to Unicode but is a symbol token here.
        let ends_wordy = s
            .chars()
            .last()
            .is_some_and(|c| (c.is_alphanumeric() && c != 'λ') || c == '_');
        if ends_wordy {
            let after = self.chars.get(self.at + s.chars().count()).map(|&(_, c)| c);
            if matches!(after, Some(c) if c.is_alphanumeric() || c == '_' || c == '#') {
                return false;
            }
        }
        self.at += s.chars().count();
        true
    }

    fn expect(&mut self, s: &str) -> Result<(), ParseError> {
        self.skip_ws();
        if self.eat(s) {
            Ok(())
        } else {
            Err(self.err(format!("expected `{s}`")))
        }
    }

    fn ident(&mut self) -> Result<Symbol, ParseError> {
        self.skip_ws();
        let start = self.at;
        match self.peek() {
            Some(c) if c.is_alphabetic() || c == '_' => {
                self.bump();
            }
            _ => return Err(self.err("expected identifier")),
        }
        while matches!(self.peek(), Some(c) if c.is_alphanumeric() || c == '_' || c == '%') {
            self.bump();
        }
        if self.peek() == Some('#') {
            self.bump();
        }
        let end = self.pos();
        let start_off = self.chars[start].0;
        Ok(Symbol::new(&self.src[start_off..end]))
    }

    // -- precedence climbing: 0 or, 1 and, 2 cmp, 3 merge, 4 add, 5 mul --

    fn expr(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            self.depth -= 1;
            return Err(self.err(format!("nesting exceeds {MAX_DEPTH} levels")));
        }
        let r = self.expr_inner(min_level);
        self.depth -= 1;
        r
    }

    fn expr_inner(&mut self, min_level: u8) -> Result<Expr, ParseError> {
        self.skip_ws();
        // Binder forms are unambiguous prefixes: allowed at any level.
        {
            if self.eat("λ") || self.eat("\\") {
                let param = self.ident()?;
                self.expect(".")?;
                let body = self.expr(0)?;
                return Ok(Expr::Lambda(param, Box::new(body)));
            }
            if self.eat("let") {
                let v = self.ident()?;
                self.expect("=")?;
                let def = self.expr(1)?;
                self.expect("in")?;
                let body = self.expr(0)?;
                return Ok(Expr::let_(v, def, body));
            }
            if self.eat("if") {
                let c = self.expr(1)?;
                self.expect("then")?;
                let t = self.expr(1)?;
                self.expect("else")?;
                let e = self.expr(0)?;
                return Ok(Expr::if_(c, t, e));
            }
        }
        let mut lhs = self.unary()?;
        loop {
            self.skip_ws();
            // assignment binds loosest of the operators
            if min_level == 0 && self.eat(":=") {
                let rhs = self.expr(1)?;
                return Ok(lhs.assign(rhs));
            }
            let (op, level): (Option<BinOp>, u8) = if self.lookahead("or") && min_level == 0 {
                (Some(BinOp::Or), 0)
            } else if self.lookahead("and") && min_level <= 1 {
                (Some(BinOp::And), 1)
            } else if self.lookahead("∨") && min_level == 0 {
                (Some(BinOp::Or), 0)
            } else if self.lookahead("∧") && min_level <= 1 {
                (Some(BinOp::And), 1)
            } else {
                (None, 9)
            };
            if let Some(op) = op {
                // consume the operator token
                match op {
                    BinOp::Or => {
                        let _ = self.eat("or") || self.eat("∨");
                    }
                    BinOp::And => {
                        let _ = self.eat("and") || self.eat("∧");
                    }
                    _ => unreachable!(),
                }
                let rhs = self.expr(level + 1)?;
                lhs = Expr::binop(op, lhs, rhs);
                continue;
            }
            // comparisons (non-associative, level 2)
            if min_level <= 2 {
                let cmp = if self.eat("≤") || self.eat("<=") {
                    Some(BinOp::Le)
                } else if self.eat("≥") || self.eat(">=") {
                    Some(BinOp::Ge)
                } else if self.eat("≠") || self.eat("!=") {
                    Some(BinOp::Ne)
                } else if self.eat("like") {
                    Some(BinOp::Like)
                } else if self.lookahead("<-") || self.lookahead("←") {
                    None // generator arrow, not a comparison
                } else if self.eat("<") {
                    Some(BinOp::Lt)
                } else if self.eat(">") {
                    Some(BinOp::Gt)
                } else if self.lookahead("=") && !self.lookahead("==") {
                    self.eat("=");
                    Some(BinOp::Eq)
                } else {
                    None
                };
                if let Some(op) = cmp {
                    let rhs = self.expr(3)?;
                    lhs = Expr::binop(op, lhs, rhs);
                    continue;
                }
            }
            // merges (level 3)
            if min_level <= 3 {
                let m = if self.eat("++") {
                    Some(Monoid::List)
                } else if self.eat("∪") {
                    Some(Monoid::Set)
                } else if self.eat("⊎") {
                    Some(Monoid::Bag)
                } else {
                    None
                };
                if let Some(m) = m {
                    let rhs = self.expr(4)?;
                    lhs = Expr::merge(m, lhs, rhs);
                    continue;
                }
            }
            // additive (level 4)
            if min_level <= 4 {
                if !self.lookahead("++") && self.eat("+") {
                    let rhs = self.expr(5)?;
                    lhs = lhs.add(rhs);
                    continue;
                }
                // a minus must not swallow the arrow `<-`’s dash… `-` is
                // safe: arrows were handled above.
                if self.peek() == Some('-') && !self.lookahead("--") {
                    self.bump();
                    let rhs = self.expr(5)?;
                    lhs = lhs.sub(rhs);
                    continue;
                }
            }
            // multiplicative (level 5)
            if min_level <= 5 {
                if self.eat("*") || self.eat("×") {
                    let rhs = self.expr(6)?;
                    lhs = lhs.mul(rhs);
                    continue;
                }
                if self.eat("/") {
                    let rhs = self.expr(6)?;
                    lhs = lhs.div(rhs);
                    continue;
                }
                if self.peek() == Some('%') {
                    // `%` only when followed by whitespace/operand — fresh
                    // symbols contain `%`, but those occur inside idents.
                    self.bump();
                    let rhs = self.expr(6)?;
                    lhs = Expr::binop(BinOp::Mod, lhs, rhs);
                    continue;
                }
            }
            return Ok(lhs);
        }
    }

    fn unary(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        if self.eat("not") {
            return Ok(self.unary()?.not());
        }
        if self.eat("!") {
            return Ok(self.unary()?.deref());
        }
        if self.peek() == Some('-') && !self.lookahead("--") {
            self.bump();
            // A minus directly followed by digits is a negative literal
            // (so `-1` round-trips as `Int(-1)`, not `Neg(Int(1))`).
            if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                return Ok(match self.number()? {
                    Expr::Lit(Literal::Int(i)) => Expr::int(-i),
                    Expr::Lit(Literal::Float(x)) => Expr::float(-x),
                    other => Expr::UnOp(UnOp::Neg, Box::new(other)),
                });
            }
            return Ok(Expr::UnOp(UnOp::Neg, Box::new(self.unary()?)));
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary()?;
        loop {
            // NOTE: no skip_ws before `.`/`[`/`(` — postfix operators bind
            // tightly, and `f (x)` with a space is not an application in
            // the paper's notation either.
            if self.lookahead(".") {
                self.bump();
                // tuple projection: digits
                if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    let mut n = 0usize;
                    while let Some(c) = self.peek() {
                        if let Some(d) = c.to_digit(10) {
                            n = n * 10 + d as usize;
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    e = Expr::TupleProj(Box::new(e), n);
                } else {
                    let f = self.ident()?;
                    e = Expr::Proj(Box::new(e), f);
                }
                continue;
            }
            if self.lookahead("[") && !self.lookahead("[|") {
                self.bump();
                let i = self.expr(0)?;
                self.expect("]")?;
                e = Expr::VecIndex(Box::new(e), Box::new(i));
                continue;
            }
            if self.lookahead("(") {
                self.bump();
                let arg = self.expr(0)?;
                self.expect(")")?;
                e = e.apply(arg);
                continue;
            }
            return Ok(e);
        }
    }

    fn comma_list(&mut self, close: &str) -> Result<Vec<Expr>, ParseError> {
        let mut items = Vec::new();
        self.skip_ws();
        if self.eat(close) {
            return Ok(items);
        }
        loop {
            items.push(self.expr(0)?);
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            self.expect(close)?;
            return Ok(items);
        }
    }

    fn qualifiers(&mut self) -> Result<Vec<Qual>, ParseError> {
        let mut quals = Vec::new();
        loop {
            self.skip_ws();
            // `a[i] <- e` vector generator: ident '[' ident ']' arrow
            let save = self.at;
            if let Ok(v) = self.ident() {
                self.skip_ws();
                if self.eat("[") {
                    if let Ok(i) = self.ident() {
                        self.skip_ws();
                        if self.eat("]") {
                            self.skip_ws();
                            if self.eat("←") || self.eat("<-") {
                                let src = self.expr(0)?;
                                quals.push(Qual::VecGen { elem: v, index: i, source: src });
                                self.skip_ws();
                                if self.eat(",") {
                                    continue;
                                }
                                return Ok(quals);
                            }
                        }
                    }
                    self.at = save;
                } else if self.eat("←") || self.eat("<-") {
                    let src = self.expr(0)?;
                    quals.push(Qual::Gen(v, src));
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    return Ok(quals);
                } else if self.eat("≡") || self.eat(":==") {
                    let src = self.expr(0)?;
                    quals.push(Qual::Bind(v, src));
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    return Ok(quals);
                } else {
                    self.at = save;
                }
            } else {
                self.at = save;
            }
            // otherwise: a predicate
            let p = self.expr(0)?;
            quals.push(Qual::Pred(p));
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            return Ok(quals);
        }
    }

    fn monoid_name(&mut self) -> Option<Monoid> {
        for (name, m) in [
            ("sortedbag", Monoid::SortedBag),
            ("sorted", Monoid::Sorted),
            ("string", Monoid::Str),
            ("list", Monoid::List),
            ("bag", Monoid::Bag),
            ("set", Monoid::Set),
            ("oset", Monoid::OSet),
            ("sum", Monoid::Sum),
            ("prod", Monoid::Prod),
            ("max", Monoid::Max),
            ("min", Monoid::Min),
            ("some", Monoid::Some),
            ("all", Monoid::All),
        ] {
            let save = self.at;
            if self.eat(name) {
                // a comprehension/zero/unit form must follow eventually;
                // `{`, `[`, `]`, `(` or whitespace-then-`{`.
                return Some(m);
            }
            self.at = save;
        }
        None
    }

    fn primary(&mut self) -> Result<Expr, ParseError> {
        self.skip_ws();
        // literals
        if let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                return self.number();
            }
        }
        if self.eat("\"") {
            return self.string('"');
        }
        if self.eat("'") {
            return self.string('\'');
        }
        if self.eat("true") {
            return Ok(Expr::bool(true));
        }
        if self.eat("false") {
            return Ok(Expr::bool(false));
        }
        if self.eat("null") || self.eat("nil") {
            return Ok(Expr::null());
        }
        // builtin functions
        for (kw, op) in [
            ("element", UnOp::Element),
            ("to_bag", UnOp::ToBag),
            ("to_list", UnOp::ToList),
            ("to_set", UnOp::ToSet),
            ("veclen", UnOp::VecLen),
            ("reverse", UnOp::Reverse),
            ("is_null", UnOp::IsNull),
        ] {
            if self.lookahead(kw) {
                let save = self.at;
                if self.eat(kw) {
                    self.skip_ws();
                    if self.eat("(") {
                        let inner = self.expr(0)?;
                        self.expect(")")?;
                        return Ok(Expr::UnOp(op, Box::new(inner)));
                    }
                    self.at = save;
                }
            }
        }
        if self.eat("new") {
            self.expect("(")?;
            let inner = self.expr(0)?;
            self.expect(")")?;
            return Ok(Expr::New(Box::new(inner)));
        }
        if self.eat("zero[") {
            let m = self.monoid_name().ok_or_else(|| self.err("expected monoid name"))?;
            self.expect("]")?;
            return Ok(Expr::Zero(m));
        }
        if self.eat("unit[") {
            let m = self.monoid_name().ok_or_else(|| self.err("expected monoid name"))?;
            self.expect("]")?;
            self.expect("(")?;
            let inner = self.expr(0)?;
            self.expect(")")?;
            return Ok(Expr::unit(m, inner));
        }
        // comprehensions: monoid name then `{` or `[n]{`
        let save = self.at;
        if let Some(m) = self.monoid_name() {
            self.skip_ws();
            if self.eat("[") {
                // vector comprehension m[n]{ v [i] | quals }
                let size = self.expr(0)?;
                self.expect("]")?;
                self.expect("{")?;
                let value = self.expr(0)?;
                self.expect("[")?;
                let index = self.expr(0)?;
                self.expect("]")?;
                self.skip_ws();
                let quals = if self.eat("|") { self.qualifiers()? } else { Vec::new() };
                self.expect("}")?;
                return Ok(Expr::VecComp {
                    elem_monoid: m,
                    size: Box::new(size),
                    value: Box::new(value),
                    index: Box::new(index),
                    quals,
                });
            }
            if self.eat("{") {
                let head = self.expr(0)?;
                self.skip_ws();
                let quals = if self.eat("|") { self.qualifiers()? } else { Vec::new() };
                self.expect("}")?;
                return Ok(Expr::Comp { monoid: m, head: Box::new(head), quals });
            }
            self.at = save;
        }
        // collections
        if self.eat("{{") {
            let items = self.comma_list("}}")?;
            return Ok(Expr::CollLit(Monoid::Bag, items));
        }
        if self.eat("{") {
            let items = self.comma_list("}")?;
            return Ok(Expr::CollLit(Monoid::Set, items));
        }
        if self.eat("⟦") {
            let items = self.comma_list("⟧")?;
            return Ok(Expr::VecLit(items));
        }
        if self.eat("[|") {
            let items = self.comma_list("|]")?;
            return Ok(Expr::VecLit(items));
        }
        if self.eat("[") {
            let items = self.comma_list("]")?;
            return Ok(Expr::CollLit(Monoid::List, items));
        }
        // records
        if self.eat("⟨") {
            return self.record("⟩");
        }
        if self.eat("<") {
            return self.record(">");
        }
        // tuples / parens
        if self.eat("(") {
            let first = self.expr(0)?;
            self.skip_ws();
            if self.eat(",") {
                let mut items = vec![first];
                loop {
                    items.push(self.expr(0)?);
                    self.skip_ws();
                    if self.eat(",") {
                        continue;
                    }
                    self.expect(")")?;
                    return Ok(Expr::Tuple(items));
                }
            }
            self.expect(")")?;
            return Ok(first);
        }
        // variable
        let v = self.ident()?;
        Ok(Expr::Var(v))
    }

    fn record(&mut self, close: &str) -> Result<Expr, ParseError> {
        // In the ASCII form `<a=1, b=2>`, field values must sit above the
        // comparison level so the closing `>` is not taken as greater-than
        // (parenthesize comparisons inside ASCII records; the ⟨⟩ form has
        // no such restriction).
        let value_level = if close == ">" { 3 } else { 0 };
        let mut fields = Vec::new();
        self.skip_ws();
        if self.eat(close) {
            return Ok(Expr::Record(fields));
        }
        loop {
            let name = self.ident()?;
            self.expect("=")?;
            let v = self.expr(value_level)?;
            fields.push((name, v));
            self.skip_ws();
            if self.eat(",") {
                continue;
            }
            self.expect(close)?;
            return Ok(Expr::Record(fields));
        }
    }

    fn number(&mut self) -> Result<Expr, ParseError> {
        let start = self.pos();
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.bump();
        }
        let mut float = false;
        if self.peek() == Some('.')
            && matches!(self.chars.get(self.at + 1), Some(&(_, c)) if c.is_ascii_digit())
        {
            float = true;
            self.bump();
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.bump();
            }
        }
        let end = self.pos();
        let text = &self.src[start..end];
        if float {
            text.parse::<f64>()
                .map(Expr::float)
                .map_err(|_| self.err("bad float"))
        } else {
            text.parse::<i64>()
                .map(Expr::int)
                .map_err(|_| self.err("integer out of range"))
        }
    }

    fn string(&mut self, quote: char) -> Result<Expr, ParseError> {
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(c) if c == quote => {
                    return Ok(Expr::Lit(Literal::Str(Arc::from(s.as_str()))))
                }
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some(c) => s.push(c),
                    None => return Err(self.err("unterminated string")),
                },
                Some(c) => s.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::eval_closed;
    use crate::pretty::pretty;
    use crate::value::Value;

    fn roundtrip(src: &str) -> Expr {
        let e = parse_expr(src).unwrap_or_else(|err| panic!("parse `{src}`: {err}"));
        let printed = pretty(&e);
        let e2 = parse_expr(&printed)
            .unwrap_or_else(|err| panic!("reparse `{printed}`: {err}"));
        assert_eq!(e, e2, "round trip changed `{src}` → `{printed}`");
        e
    }

    #[test]
    fn parses_paper_examples() {
        let e = roundtrip("set{ (a, b) | a <- [1, 2, 3], b <- {{4, 5}} }");
        assert_eq!(eval_closed(&e).unwrap().len().unwrap(), 6);
        let e = roundtrip("sum{ a | a <- [1,2,3], a <= 2 }");
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(3));
    }

    #[test]
    fn parses_unicode_notation() {
        let e = parse_expr("set{ (a, b) | a ← [1, 2, 3], b ← {{4, 5}} }").unwrap();
        let ascii = parse_expr("set{ (a,b) | a <- [1,2,3], b <- {{4,5}} }").unwrap();
        assert_eq!(e, ascii);
    }

    #[test]
    fn parses_identity_and_updates() {
        let e = roundtrip("list{ !x | x <- new(0), e <- [1, 2, 3, 4], x := !x + e }");
        assert_eq!(
            eval_closed(&e).unwrap(),
            Value::list(vec![Value::Int(1), Value::Int(3), Value::Int(6), Value::Int(10)])
        );
    }

    #[test]
    fn parses_vector_comprehension() {
        let e = roundtrip("sum[4]{ a [4 - i - 1] | a[i] <- [|1, 2, 3, 4|] }");
        assert_eq!(
            eval_closed(&e).unwrap(),
            Value::vector(vec![Value::Int(4), Value::Int(3), Value::Int(2), Value::Int(1)])
        );
    }

    #[test]
    fn parses_lambda_let_if_apply() {
        let e = roundtrip("let f = λx. x + 1 in f(41)");
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(42));
        let e = roundtrip("if 1 < 2 then \"a\" else \"b\"");
        assert_eq!(eval_closed(&e).unwrap(), Value::str("a"));
    }

    #[test]
    fn parses_records_and_projection() {
        let e = roundtrip("⟨name=\"x\", n=3⟩.n");
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(3));
        let ascii = parse_expr("<name=\"x\", n=3>.n").unwrap();
        assert_eq!(eval_closed(&ascii).unwrap(), Value::Int(3));
    }

    #[test]
    fn parses_binding_qualifier() {
        let e = roundtrip("sum{ y | x <- [1, 2], y :== x * 10 }");
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(30));
    }

    #[test]
    fn parses_merges_zero_unit() {
        let e = roundtrip("[2, 5, 3, 1] ++ [3, 2, 6]");
        assert_eq!(eval_closed(&e).unwrap().len().unwrap(), 7);
        let e = roundtrip("{1, 2} ∪ {2, 3}");
        assert_eq!(eval_closed(&e).unwrap().len().unwrap(), 3);
        let e = roundtrip("zero[set] ∪ unit[set](9)");
        assert_eq!(eval_closed(&e).unwrap(), Value::set_from(vec![Value::Int(9)]));
    }

    #[test]
    fn parses_tuple_projection() {
        let e = roundtrip("(1, 2, 3).1");
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(2));
    }

    #[test]
    fn parses_some_all_quantifiers() {
        let e = roundtrip("some{ x = 2 | x <- {{1, 2}} }");
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
        let e = roundtrip("all{ x > 0 | x <- {1, 2} }");
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
    }

    #[test]
    fn errors_are_positioned() {
        let err = parse_expr("set{ x | x <- }").unwrap_err();
        assert!(err.at > 0);
        assert!(parse_expr("").is_err());
        assert!(parse_expr("(1").is_err());
        assert!(parse_expr("1 +").is_err());
    }

    #[test]
    fn depth_limit_is_clean() {
        let deep = format!("{}1{}", "(".repeat(100), ")".repeat(100));
        let err = parse_expr(&deep).unwrap_err();
        assert!(err.msg.contains("nesting"));
    }

    #[test]
    fn fresh_symbols_reparse() {
        // pretty() prints normalizer-fresh names like `x%3`; the parser
        // accepts `%` inside identifiers.
        let e = roundtrip("sum{ x%3 | x%3 <- [1, 2] }");
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(3));
    }

    #[test]
    fn like_and_strings() {
        let e = roundtrip("\"Portland\" like \"Port%\"");
        assert_eq!(eval_closed(&e).unwrap(), Value::Bool(true));
    }

    #[test]
    fn normalization_output_reparses() {
        use crate::normalize::normalize;
        let e = parse_expr(
            "bag{ h | h <- bag{ c | c <- [1,2,3], c > 1 }, h < 3 }",
        )
        .unwrap();
        let n = normalize(&e);
        let reparsed = parse_expr(&pretty(&n)).unwrap();
        assert_eq!(n, reparsed);
        assert_eq!(eval_closed(&n).unwrap(), eval_closed(&e).unwrap());
    }
}
