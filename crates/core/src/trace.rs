//! Query-lifecycle tracing shared by every layer of the system.
//!
//! A [`QueryTrace`] accumulates wall-clock timings for the phases a query
//! passes through — lex/parse → OQL translate → normalize → optimize →
//! plan → execute — plus the normalization statistics the rewriter already
//! produces ([`crate::normalize::NormalizeStats`]). The front end and the
//! algebra back end each fill in the phases they own; the combined trace
//! ends up inside the back end's `QueryProfile`.

use crate::json::Json;
use crate::normalize::NormalizeStats;
use std::time::Instant;

/// A phase of the query lifecycle, in pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexing and parsing OQL source.
    Parse,
    /// OQL AST → monoid calculus translation.
    Translate,
    /// Table-3 normalization to canonical form.
    Normalize,
    /// Statistics gathering and cost-based qualifier reordering.
    Optimize,
    /// Canonical comprehension → algebra plan.
    Plan,
    /// Push-based plan execution.
    Execute,
}

impl Phase {
    /// All phases in pipeline order (indexable by [`Phase::index`]).
    pub const ALL: [Phase; 6] = [
        Phase::Parse,
        Phase::Translate,
        Phase::Normalize,
        Phase::Optimize,
        Phase::Plan,
        Phase::Execute,
    ];

    pub fn as_str(&self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Translate => "translate",
            Phase::Normalize => "normalize",
            Phase::Optimize => "optimize",
            Phase::Plan => "plan",
            Phase::Execute => "execute",
        }
    }

    /// Position in [`Phase::ALL`].
    pub fn index(&self) -> usize {
        match self {
            Phase::Parse => 0,
            Phase::Translate => 1,
            Phase::Normalize => 2,
            Phase::Optimize => 3,
            Phase::Plan => 4,
            Phase::Execute => 5,
        }
    }
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Wall-clock time spent in one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseTiming {
    pub phase: Phase,
    pub nanos: u128,
}

/// The full lifecycle record of one query.
#[derive(Debug, Clone, Default)]
pub struct QueryTrace {
    /// Original source text, when the query entered through OQL.
    pub source: Option<String>,
    /// Per-phase wall-clock timings, in the order the phases ran.
    pub phases: Vec<PhaseTiming>,
    /// Normalization statistics (rule firings, sizes, rewrite time).
    pub normalize: Option<NormalizeStats>,
}

impl QueryTrace {
    pub fn new() -> QueryTrace {
        QueryTrace::default()
    }

    /// Record `nanos` spent in `phase` (accumulates on repeat). Every
    /// recording also lands in the process-wide per-phase latency
    /// histogram `query_phase_nanos{phase=…}`, so fleet-level phase
    /// distributions fall out of ordinary tracing for free.
    pub fn record(&mut self, phase: Phase, nanos: u128) {
        phase_histogram(phase).observe_nanos(nanos);
        if let Some(t) = self.phases.iter_mut().find(|t| t.phase == phase) {
            t.nanos += nanos;
        } else {
            self.phases.push(PhaseTiming { phase, nanos });
        }
    }

    /// Run `f`, recording its wall-clock time under `phase`.
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.record(phase, start.elapsed().as_nanos());
        out
    }

    /// Nanoseconds recorded for `phase`, if it ran.
    pub fn phase_nanos(&self, phase: Phase) -> Option<u128> {
        self.phases.iter().find(|t| t.phase == phase).map(|t| t.nanos)
    }

    /// Total nanoseconds across all recorded phases.
    pub fn total_nanos(&self) -> u128 {
        self.phases.iter().map(|t| t.nanos).sum()
    }

    pub fn to_json(&self) -> Json {
        let phases = Json::Arr(
            self.phases
                .iter()
                .map(|t| {
                    Json::obj(vec![
                        ("phase", Json::str(t.phase.as_str())),
                        ("nanos", Json::from(t.nanos)),
                    ])
                })
                .collect(),
        );
        let normalize = match &self.normalize {
            Some(stats) => normalize_stats_json(stats),
            None => Json::Null,
        };
        Json::obj(vec![
            (
                "source",
                self.source.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
            ("phases", phases),
            ("total_nanos", Json::from(self.total_nanos())),
            ("normalize", normalize),
        ])
    }
}

/// The per-phase latency histogram in the global registry, resolved
/// once per process.
fn phase_histogram(phase: Phase) -> &'static crate::metrics::Histogram {
    use crate::metrics::{global, Histogram};
    use std::sync::{Arc, OnceLock};
    static HANDLES: OnceLock<[Arc<Histogram>; 6]> = OnceLock::new();
    &HANDLES.get_or_init(|| {
        Phase::ALL
            .map(|p| global().histogram_with("query_phase_nanos", &[("phase", p.as_str())]))
    })[phase.index()]
}

fn normalize_stats_json(stats: &NormalizeStats) -> Json {
    let rules = Json::Arr(
        stats
            .rule_counts()
            .filter(|(_, n)| *n > 0)
            .map(|(rule, n)| {
                Json::obj(vec![
                    ("rule", Json::str(format!("N{}", rule.number()))),
                    ("name", Json::str(rule.name())),
                    ("fired", Json::from(n)),
                ])
            })
            .collect(),
    );
    Json::obj(vec![
        ("steps", Json::from(stats.steps)),
        ("size_before", Json::from(stats.size_before)),
        ("size_after", Json::from(stats.size_after)),
        ("nanos", Json::from(stats.elapsed_nanos)),
        ("rules", rules),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_accumulates_phases() {
        let mut t = QueryTrace::new();
        t.record(Phase::Parse, 10);
        t.record(Phase::Execute, 5);
        t.record(Phase::Execute, 7);
        assert_eq!(t.phase_nanos(Phase::Parse), Some(10));
        assert_eq!(t.phase_nanos(Phase::Execute), Some(12));
        assert_eq!(t.phase_nanos(Phase::Plan), None);
        assert_eq!(t.total_nanos(), 22);
    }

    #[test]
    fn time_helper_returns_the_closure_result() {
        let mut t = QueryTrace::new();
        let v = t.time(Phase::Normalize, || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.phase_nanos(Phase::Normalize).is_some());
    }

    #[test]
    fn serializes_with_normalize_stats() {
        let mut t = QueryTrace::new();
        t.source = Some("count(Cities)".into());
        t.record(Phase::Parse, 100);
        let e = crate::expr::Expr::comp(
            crate::monoid::Monoid::Sum,
            crate::expr::Expr::var("x"),
            vec![crate::expr::Expr::gen(
                "x",
                crate::expr::Expr::list_of(vec![crate::expr::Expr::int(1), crate::expr::Expr::int(2)]),
            )],
        );
        let (_, _, stats) = crate::normalize::normalize_traced(&e);
        t.normalize = Some(stats);
        let s = t.to_json().render();
        assert!(s.contains("\"source\":\"count(Cities)\""), "{s}");
        assert!(s.contains("\"phase\":\"parse\""), "{s}");
        assert!(s.contains("\"size_before\""), "{s}");
    }
}
