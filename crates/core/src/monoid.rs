//! Monoids — Table 1 of the paper.
//!
//! A monoid `(T, zero, ⊕)` has an associative merge `⊕` with identity
//! `zero`. A *collection monoid* additionally has a unit injection
//! `unit : α → T(α)` (e.g. `unit_set(a) = {a}`), and its values are built by
//! merging units. A *primitive monoid* aggregates scalars (`sum`, `max`, …).
//!
//! The commutativity/idempotence (**C/I**) properties of the merge are what
//! distinguish collection kinds: `∪` is commutative and idempotent (sets),
//! `⊎` is commutative only (bags), `++` is neither (lists). The paper's
//! central *legality restriction* says a monoid homomorphism
//! `hom[M→N](f)(A)` is well-formed only when `props(M) ⊆ props(N)`
//! ([`Props::leq`]): one may collapse structure (list → set) but never
//! invent it (set → sum is rejected, because `+` would count each element
//! once despite the source having no well-defined multiplicity).
//!
//! Paper ↔ implementation notes:
//! * `string` is the monoid of character lists under concatenation; our
//!   values carry strings as scalars, and [`Monoid::Str`] concatenates them.
//! * `sorted[f]` is parameterized by a key function in the paper. Here
//!   [`Monoid::Sorted`] merges by the *natural total order* on values and
//!   drops exact duplicates — this makes it CI, which is exactly what the
//!   paper requires ("the restriction … allows the conversion of sets into
//!   sorted lists"). `sorted[f]` for an arbitrary key `f` is expressed by
//!   comprehending pairs `(f(e), e)`, which sort lexicographically by key.
//! * [`Monoid::SortedBag`] is a documented extension (C, duplicate-keeping
//!   sorted merge) used to translate OQL `order by` over bags, where
//!   duplicate rows must survive.
//! * [`Monoid::VecOf`] is the paper's §4.1 lifted monoid `M[n]`: vectors of
//!   size `n` merged pointwise with `M`'s merge; `unit(a, i)` is the vector
//!   that is `zero_M` everywhere except `a` at index `i`. It is *not* freely
//!   generated, and its properties are inherited pointwise from `M`.

use std::fmt;

/// The commutativity/idempotence signature of a monoid's merge operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Props {
    /// `∀x,y. x ⊕ y = y ⊕ x`
    pub commutative: bool,
    /// `∀x. x ⊕ x = x`
    pub idempotent: bool,
}

impl Props {
    pub const NONE: Props = Props { commutative: false, idempotent: false };
    pub const C: Props = Props { commutative: true, idempotent: false };
    pub const I: Props = Props { commutative: false, idempotent: true };
    pub const CI: Props = Props { commutative: true, idempotent: true };

    /// The paper's `M ≤ N` relation: every property of `M` also holds of
    /// `N`. `hom[M→N]` is legal iff `props(M).leq(props(N))`.
    pub fn leq(self, other: Props) -> bool {
        (!self.commutative || other.commutative) && (!self.idempotent || other.idempotent)
    }
}

impl fmt::Display for Props {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.commutative, self.idempotent) {
            (false, false) => write!(f, "∅"),
            (true, false) => write!(f, "C"),
            (false, true) => write!(f, "I"),
            (true, true) => write!(f, "CI"),
        }
    }
}

/// A monoid of the calculus. See the module docs for the paper mapping.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Monoid {
    // ---- collection monoids (Table 1, top half) ----
    /// `(list(α), [], ++)` — neither commutative nor idempotent.
    List,
    /// `(bag(α), {{}}, ⊎)` — commutative.
    Bag,
    /// `(set(α), {}, ∪)` — commutative and idempotent.
    Set,
    /// `(list(α), [], ∪̇)` — ordered set: duplicate-dropping append,
    /// `x ∪̇ y = x ++ (y − x)`. Idempotent but not commutative.
    OSet,
    /// `(list(α), [], merge)` — the paper's `sorted[f]`: order-merging,
    /// duplicate-dropping. Commutative and idempotent.
    Sorted,
    /// Extension: duplicate-keeping sorted merge (commutative only); used
    /// for OQL `order by` over bags.
    SortedBag,
    /// `(string, "", concat)` — neither commutative nor idempotent.
    Str,
    // ---- primitive monoids (Table 1, bottom half) ----
    /// `(number, 0, +)` — commutative.
    Sum,
    /// `(number, 1, ×)` — commutative.
    Prod,
    /// `(number ∪ {−∞}, −∞, max)` — commutative and idempotent.
    Max,
    /// `(number ∪ {+∞}, +∞, min)` — commutative and idempotent.
    Min,
    /// `(bool, false, ∨)` — commutative and idempotent (∃).
    Some,
    /// `(bool, true, ∧)` — commutative and idempotent (∀).
    All,
    // ---- §4.1: vectors ----
    /// The lifted monoid `M[n]`: fixed-size vectors merged pointwise by `M`.
    VecOf(Box<Monoid>),
}

impl Monoid {
    /// The C/I signature of this monoid's merge.
    pub fn props(&self) -> Props {
        match self {
            Monoid::List | Monoid::Str => Props::NONE,
            Monoid::Bag | Monoid::SortedBag | Monoid::Sum | Monoid::Prod => Props::C,
            Monoid::OSet => Props::I,
            Monoid::Set | Monoid::Sorted | Monoid::Max | Monoid::Min | Monoid::Some
            | Monoid::All => Props::CI,
            Monoid::VecOf(m) => m.props(),
        }
    }

    /// Collection monoids have a unit injection and values one can iterate.
    pub fn is_collection(&self) -> bool {
        matches!(
            self,
            Monoid::List
                | Monoid::Bag
                | Monoid::Set
                | Monoid::OSet
                | Monoid::Sorted
                | Monoid::SortedBag
                | Monoid::Str
        )
    }

    /// Primitive monoids aggregate scalars.
    pub fn is_primitive(&self) -> bool {
        !self.is_collection() && !matches!(self, Monoid::VecOf(_))
    }

    /// Is `hom[self → target]` legal? (The paper's `≤` restriction.)
    pub fn hom_legal_to(&self, target: &Monoid) -> bool {
        self.props().leq(target.props())
    }

    /// All the non-parameterized monoids, in Table 1 order. Useful for the
    /// law-checking experiment (E1) and exhaustive tests.
    pub fn all_basic() -> &'static [Monoid] {
        &[
            Monoid::List,
            Monoid::Set,
            Monoid::Bag,
            Monoid::OSet,
            Monoid::Str,
            Monoid::Sorted,
            Monoid::SortedBag,
            Monoid::Sum,
            Monoid::Prod,
            Monoid::Max,
            Monoid::Min,
            Monoid::Some,
            Monoid::All,
        ]
    }

    /// The paper's name for the monoid, as used in comprehension tags.
    pub fn name(&self) -> String {
        match self {
            Monoid::List => "list".into(),
            Monoid::Bag => "bag".into(),
            Monoid::Set => "set".into(),
            Monoid::OSet => "oset".into(),
            Monoid::Sorted => "sorted".into(),
            Monoid::SortedBag => "sortedbag".into(),
            Monoid::Str => "string".into(),
            Monoid::Sum => "sum".into(),
            Monoid::Prod => "prod".into(),
            Monoid::Max => "max".into(),
            Monoid::Min => "min".into(),
            Monoid::Some => "some".into(),
            Monoid::All => "all".into(),
            Monoid::VecOf(m) => format!("{}[]", m.name()),
        }
    }
}

impl fmt::Display for Monoid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn props_match_table_1() {
        assert_eq!(Monoid::List.props(), Props::NONE);
        assert_eq!(Monoid::Set.props(), Props::CI);
        assert_eq!(Monoid::Bag.props(), Props::C);
        assert_eq!(Monoid::OSet.props(), Props::I);
        assert_eq!(Monoid::Str.props(), Props::NONE);
        assert_eq!(Monoid::Sorted.props(), Props::CI);
        assert_eq!(Monoid::Sum.props(), Props::C);
        assert_eq!(Monoid::Prod.props(), Props::C);
        assert_eq!(Monoid::Max.props(), Props::CI);
        assert_eq!(Monoid::Min.props(), Props::CI);
        assert_eq!(Monoid::Some.props(), Props::CI);
        assert_eq!(Monoid::All.props(), Props::CI);
    }

    #[test]
    fn leq_is_a_partial_order() {
        let all = [Props::NONE, Props::C, Props::I, Props::CI];
        for &a in &all {
            assert!(a.leq(a), "reflexive");
            for &b in &all {
                for &c in &all {
                    if a.leq(b) && b.leq(c) {
                        assert!(a.leq(c), "transitive");
                    }
                }
                if a.leq(b) && b.leq(a) {
                    assert_eq!(a, b, "antisymmetric");
                }
            }
        }
    }

    /// The paper's examples: `hom[bag→sum]` (bag cardinality) is legal,
    /// `hom[set→sum]` (set cardinality) is not; sets cannot become lists but
    /// can become sorted lists.
    #[test]
    fn paper_legality_examples() {
        assert!(Monoid::Bag.hom_legal_to(&Monoid::Sum));
        assert!(!Monoid::Set.hom_legal_to(&Monoid::Sum));
        assert!(!Monoid::Set.hom_legal_to(&Monoid::List));
        assert!(!Monoid::Set.hom_legal_to(&Monoid::Bag));
        assert!(Monoid::Set.hom_legal_to(&Monoid::Sorted));
        assert!(Monoid::List.hom_legal_to(&Monoid::Set));
        assert!(Monoid::List.hom_legal_to(&Monoid::Bag));
        assert!(Monoid::Bag.hom_legal_to(&Monoid::Set));
        assert!(Monoid::List.hom_legal_to(&Monoid::List));
        assert!(Monoid::Set.hom_legal_to(&Monoid::Some));
        assert!(Monoid::Bag.hom_legal_to(&Monoid::Max));
        assert!(!Monoid::Set.hom_legal_to(&Monoid::SortedBag));
        assert!(Monoid::Bag.hom_legal_to(&Monoid::SortedBag));
    }

    #[test]
    fn collection_vs_primitive_partition() {
        for m in Monoid::all_basic() {
            assert!(
                m.is_collection() ^ m.is_primitive(),
                "{m} must be exactly one of collection/primitive"
            );
        }
        let v = Monoid::VecOf(Box::new(Monoid::Sum));
        assert!(!v.is_collection());
        assert!(!v.is_primitive());
        assert_eq!(v.props(), Props::C);
    }
}
