//! The type language of the calculus.
//!
//! The paper's type system composes constructors freely (unlike nested
//! relational models where combinations are indivisible): scalars, records,
//! tuples, collections (`set(α)`, `bag(α)`, `list(α)`), fixed-size vectors
//! (§4.1), mutable objects `obj(α)` (§4.2), named classes (objects with
//! identity whose state type comes from a [`Schema`]), and functions.
//!
//! Note that the *oset*, *sorted*, and *sortedbag* monoids construct values
//! of type `list(α)` (Table 1's "type" column) — the monoid governs how the
//! value was built and what may legally consume it, while the type describes
//! its shape. Generator legality over a `list(α)` value is always safe
//! because `list`'s properties are the bottom of the C/I order.

use crate::symbol::Symbol;
use std::fmt;

/// Collection kind at the type level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollKind {
    List,
    Bag,
    Set,
}

impl CollKind {
    /// The monoid whose merges are legal over values of this shape, i.e.
    /// the monoid inferred for a generator drawing from such a collection.
    pub fn monoid(self) -> crate::monoid::Monoid {
        match self {
            CollKind::List => crate::monoid::Monoid::List,
            CollKind::Bag => crate::monoid::Monoid::Bag,
            CollKind::Set => crate::monoid::Monoid::Set,
        }
    }
}

impl fmt::Display for CollKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CollKind::List => write!(f, "list"),
            CollKind::Bag => write!(f, "bag"),
            CollKind::Set => write!(f, "set"),
        }
    }
}

/// A type of the calculus.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Bool,
    Int,
    Float,
    Str,
    /// The type of `null` (OQL `nil`, and the zero of `max`/`min`).
    /// Unifies with anything.
    Null,
    /// An inference variable.
    Var(u32),
    /// Record type `⟨A1: T1, …, An: Tn⟩`. Fields are kept sorted by label so
    /// structural equality is label-order independent.
    Record(Vec<(Symbol, Type)>),
    /// Tuple type `(T1, …, Tn)`.
    Tuple(Vec<Type>),
    /// Collection type `list(T)`, `bag(T)`, `set(T)`.
    Coll(CollKind, Box<Type>),
    /// Fixed-size vector `vector(T)` (§4.1). Sizes are dynamic.
    Vector(Box<Type>),
    /// Mutable object `obj(T)` (§4.2).
    Obj(Box<Type>),
    /// A named class: an object with identity whose state type is defined by
    /// the schema.
    Class(Symbol),
    /// Function type.
    Fn(Box<Type>, Box<Type>),
}

impl Type {
    /// Build a record type, normalizing field order.
    pub fn record(mut fields: Vec<(Symbol, Type)>) -> Type {
        fields.sort_by_key(|(name, _)| *name);
        Type::Record(fields)
    }

    pub fn list(elem: Type) -> Type {
        Type::Coll(CollKind::List, Box::new(elem))
    }
    pub fn bag(elem: Type) -> Type {
        Type::Coll(CollKind::Bag, Box::new(elem))
    }
    pub fn set(elem: Type) -> Type {
        Type::Coll(CollKind::Set, Box::new(elem))
    }
    pub fn vector(elem: Type) -> Type {
        Type::Vector(Box::new(elem))
    }
    pub fn obj(state: Type) -> Type {
        Type::Obj(Box::new(state))
    }
    pub fn func(arg: Type, ret: Type) -> Type {
        Type::Fn(Box::new(arg), Box::new(ret))
    }

    /// Is this a numeric type (or a variable that could become one)?
    pub fn is_numeric(&self) -> bool {
        matches!(self, Type::Int | Type::Float | Type::Var(_) | Type::Null)
    }

    /// Look up a field in a record type.
    pub fn field(&self, name: Symbol) -> Option<&Type> {
        match self {
            Type::Record(fields) => {
                fields.iter().find(|(n, _)| *n == name).map(|(_, t)| t)
            }
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Bool => write!(f, "bool"),
            Type::Int => write!(f, "int"),
            Type::Float => write!(f, "float"),
            Type::Str => write!(f, "string"),
            Type::Null => write!(f, "null"),
            Type::Var(v) => write!(f, "τ{v}"),
            Type::Record(fields) => {
                write!(f, "⟨")?;
                for (i, (name, ty)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{name}: {ty}")?;
                }
                write!(f, "⟩")
            }
            Type::Tuple(items) => {
                write!(f, "(")?;
                for (i, ty) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{ty}")?;
                }
                write!(f, ")")
            }
            Type::Coll(kind, elem) => write!(f, "{kind}({elem})"),
            Type::Vector(elem) => write!(f, "vector({elem})"),
            Type::Obj(state) => write!(f, "obj({state})"),
            Type::Class(name) => write!(f, "{name}"),
            Type::Fn(a, r) => write!(f, "({a} → {r})"),
        }
    }
}

/// A class definition: a named object type with a record state and an
/// optional extent (the named collection of all its instances, e.g. the
/// paper's `Cities`).
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDef {
    pub name: Symbol,
    /// The state type; always a record in practice.
    pub state: Type,
    /// The name of the class extent, if declared (`extent Cities` in ODL).
    pub extent: Option<Symbol>,
    /// Superclass, for the subtype hierarchy OQL permits.
    pub superclass: Option<Symbol>,
}

/// A database schema: class definitions plus typed named values (extents
/// and any other persistent roots).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    classes: Vec<ClassDef>,
    /// Named persistent roots: `(name, type)`. Extents of classes are
    /// registered here as `set(ClassName)`.
    names: Vec<(Symbol, Type)>,
}

impl Schema {
    pub fn new() -> Schema {
        Schema::default()
    }

    /// Register a class; its extent (if any) becomes a named root of type
    /// `bag(ClassName)`.
    ///
    /// ODMG-93 calls extents sets, but the paper's own queries iterate
    /// extents inside `bag` comprehensions (`bag{ h.name | c ← Cities, … }`,
    /// §3.1) — which the §2.3 C/I restriction would reject for a
    /// set-typed source. An extent never contains duplicate objects, so a
    /// duplicate-free bag is observably identical, and typing extents as
    /// bags keeps every query in the paper literally well-typed. (See
    /// DESIGN.md §3.)
    pub fn add_class(&mut self, def: ClassDef) {
        if let Some(extent) = def.extent {
            self.names.push((extent, Type::bag(Type::Class(def.name))));
        }
        self.classes.push(def);
    }

    /// Register a named root of the given type.
    pub fn add_name(&mut self, name: Symbol, ty: Type) {
        self.names.push((name, ty));
    }

    pub fn class(&self, name: Symbol) -> Option<&ClassDef> {
        self.classes.iter().find(|c| c.name == name)
    }

    pub fn classes(&self) -> &[ClassDef] {
        &self.classes
    }

    pub fn name_type(&self, name: Symbol) -> Option<&Type> {
        self.names.iter().find(|(n, _)| *n == name).map(|(_, t)| t)
    }

    pub fn names(&self) -> &[(Symbol, Type)] {
        &self.names
    }

    /// The *flattened* state type of a class: its own state record extended
    /// with every inherited field (walking the superclass chain).
    pub fn class_state(&self, name: Symbol) -> Option<Type> {
        let def = self.class(name)?;
        let mut fields: Vec<(Symbol, Type)> = match &def.state {
            Type::Record(fs) => fs.clone(),
            other => return Some(other.clone()),
        };
        let mut current = def.superclass;
        while let Some(parent) = current {
            let pdef = self.class(parent)?;
            if let Type::Record(pfs) = &pdef.state {
                for (n, t) in pfs {
                    if !fields.iter().any(|(fname, _)| fname == n) {
                        fields.push((*n, t.clone()));
                    }
                }
            }
            current = pdef.superclass;
        }
        Some(Type::record(fields))
    }

    /// Is `sub` the same class as, or a subclass of, `sup`?
    pub fn is_subclass(&self, sub: Symbol, sup: Symbol) -> bool {
        let mut current = Some(sub);
        while let Some(c) = current {
            if c == sup {
                return true;
            }
            current = self.class(c).and_then(|d| d.superclass);
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::symbol::Symbol;

    fn sym(s: &str) -> Symbol {
        Symbol::new(s)
    }

    #[test]
    fn record_field_order_is_normalized() {
        let a = Type::record(vec![(sym("b"), Type::Int), (sym("a"), Type::Bool)]);
        let b = Type::record(vec![(sym("a"), Type::Bool), (sym("b"), Type::Int)]);
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_readable() {
        let t = Type::set(Type::record(vec![(sym("name"), Type::Str)]));
        assert_eq!(format!("{t}"), "set(⟨name: string⟩)");
    }

    #[test]
    fn schema_registers_extent() {
        let mut s = Schema::new();
        s.add_class(ClassDef {
            name: sym("City"),
            state: Type::record(vec![(sym("name"), Type::Str)]),
            extent: Some(sym("Cities")),
            superclass: None,
        });
        assert_eq!(
            s.name_type(sym("Cities")),
            Some(&Type::bag(Type::Class(sym("City"))))
        );
        assert!(s.class(sym("City")).is_some());
    }

    #[test]
    fn inherited_fields_are_flattened() {
        let mut s = Schema::new();
        s.add_class(ClassDef {
            name: sym("Person"),
            state: Type::record(vec![(sym("name"), Type::Str)]),
            extent: None,
            superclass: None,
        });
        s.add_class(ClassDef {
            name: sym("Employee"),
            state: Type::record(vec![(sym("salary"), Type::Int)]),
            extent: None,
            superclass: Some(sym("Person")),
        });
        let st = s.class_state(sym("Employee")).unwrap();
        assert!(st.field(sym("name")).is_some());
        assert!(st.field(sym("salary")).is_some());
        assert!(s.is_subclass(sym("Employee"), sym("Person")));
        assert!(!s.is_subclass(sym("Person"), sym("Employee")));
    }
}
