//! The process-wide query flight recorder.
//!
//! Where [`crate::trace`] times one query in the moment and
//! [`crate::metrics`] accumulates fleet-wide counters, the recorder
//! *remembers individual executions*: a fixed-capacity ring buffer holds
//! one structured [`QueryRecord`] per executed query — source
//! fingerprint, session id, plan-cache disposition, per-phase nanos,
//! rows produced, effect summary, parallel fallback reason, and outcome
//! — so "what ran recently and why was it slow" is answerable after the
//! fact, without having profiled anything up front.
//!
//! ## Feeding the recorder
//!
//! The entry points that own a query's lifecycle (`Session::query`,
//! `Prepared::execute*`, the metered executors in the algebra crate, the
//! umbrella `explain_analyze`) open a [`RecordScope`] with [`begin`]; the
//! layers underneath annotate whatever record is active on the current
//! thread through the `note_*` free functions, which are no-ops when no
//! scope is open. Exactly one scope is active per thread — a nested
//! [`begin`] returns `None` and the inner layer's notes land on the
//! outer record — so a `Session::query` that runs a `Prepared` which
//! runs the metered executor yields *one* record, annotated by all
//! three.
//!
//! ## Lock-lightness and the disabled path
//!
//! The ring is a vector of per-slot mutexes with an atomic cursor:
//! committing a record locks only the slot it lands in, so concurrent
//! sessions never contend on a global lock. When the recorder is
//! disabled ([`FlightRecorder::set_enabled`], or `MONOID_RECORDER=0`),
//! [`begin`] returns `None` before allocating anything, every `note_*`
//! finds no active record, and no registry series moves — the disabled
//! path is observable only as the single atomic load in [`begin`]
//! (proven by snapshot diff in `tests/recorder.rs`).
//!
//! ## The slow-query log
//!
//! Records whose wall-clock total exceeds the threshold
//! ([`FlightRecorder::set_slow_threshold`], or `MONOID_SLOW_QUERY_NANOS`)
//! come back from [`RecordScope::finish`] as a [`SlowTrigger`]; the
//! owning layer then attaches whatever it has at hand — the optimized
//! plan text, a full `explain_analyze` profile — as a
//! [`SlowQueryCapture`] in a separate, smaller ring
//! ([`FlightRecorder::slow_log`]). A threshold of 0 (the default) turns
//! the slow log off.
//!
//! Both rings export as JSON ([`FlightRecorder::to_json`],
//! [`FlightRecorder::slow_log_json`]); the `oqltop` binary renders
//! either a live snapshot or a dumped journal (`docs/observability.md`).

use crate::json::Json;
use crate::metrics;
use crate::trace::{Phase, QueryTrace};
use crate::value::Value;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::VecDeque;
use std::hash::{Hash, Hasher};
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Ring capacity when `MONOID_RECORDER_CAPACITY` is unset.
const DEFAULT_CAPACITY: usize = 1024;

/// Slow-query captures retained (oldest evicted first).
const SLOW_LOG_CAPACITY: usize = 64;

/// Source text stored per record is truncated to this many characters;
/// the fingerprint always covers the full text.
const SOURCE_LIMIT: usize = 256;

// ---------------------------------------------------------------------
// QueryRecord
// ---------------------------------------------------------------------

/// How the serving layer resolved the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CacheDisposition {
    /// The execution did not go through a plan cache (direct `Prepared`
    /// or algebra-level execution).
    #[default]
    Uncached,
    /// Served from the plan cache.
    Hit,
    /// Prepared fresh (cold, stale-epoch, or evicted entry).
    Miss,
}

impl CacheDisposition {
    pub fn as_str(self) -> &'static str {
        match self {
            CacheDisposition::Uncached => "uncached",
            CacheDisposition::Hit => "hit",
            CacheDisposition::Miss => "miss",
        }
    }

    pub fn parse(s: &str) -> Option<CacheDisposition> {
        match s {
            "uncached" => Some(CacheDisposition::Uncached),
            "hit" => Some(CacheDisposition::Hit),
            "miss" => Some(CacheDisposition::Miss),
            _ => None,
        }
    }
}

/// One executed query, as the flight recorder remembers it.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryRecord {
    /// Process-wide commit sequence number (assigned by the recorder;
    /// monotonic, so `snapshot()` order is execution order).
    pub seq: u64,
    /// Hash of the *full* source text — stable within a process, so
    /// repeated executions of one statement group under one key even
    /// when [`QueryRecord::source`] is truncated.
    pub fingerprint: u64,
    /// Source text (truncated to 256 chars).
    pub source: String,
    /// The serving session that ran the query, when one did.
    pub session: Option<u64>,
    /// Plan-cache disposition ([`CacheDisposition::Uncached`] outside
    /// the serving layer).
    pub cache: CacheDisposition,
    /// Per-phase wall-clock nanos, indexed by [`Phase::index`]. Only the
    /// phases that actually ran are nonzero — a cache hit has no
    /// parse/normalize/optimize entries.
    pub phase_nanos: [u64; Phase::ALL.len()],
    /// Wall-clock nanos of the whole recorded scope (≥ the phase sum —
    /// it includes cache lookup and binding overhead the phases don't).
    pub total_nanos: u64,
    /// Rows (collection elements) the query produced; 1 for scalars.
    pub rows: u64,
    /// Rendered effect summary of the canonical form (empty when the
    /// recording layer had none at hand).
    pub effects: String,
    /// Workers the parallel engine spawned (0 = sequential).
    pub parallel_workers: u64,
    /// Why the parallel engine fell back to sequential execution, when
    /// it did (`"single-thread"`, `"mutation"`, `"too-few-rows"`).
    pub parallel_fallback: Option<String>,
    /// Which execution engine ran the reduction (`"fused"` for the
    /// batch-fold engine, `"plan-walk"` for the plan-tree interpreter,
    /// `"eval"` for direct evaluation outside the algebra).
    pub engine: Option<String>,
    /// The `mutation_epoch` of the snapshot this statement read from,
    /// when it ran on the snapshot-isolated read path (`None` for writer
    /// path and algebra-level executions).
    pub snapshot_epoch: Option<u64>,
    /// The error message, for failed executions.
    pub error: Option<String>,
    /// Did this record exceed the slow-query threshold?
    pub slow: bool,
}

impl QueryRecord {
    /// A fresh record for `source` — fingerprinted, truncated, all
    /// counters zero. `seq` is assigned at commit ([`FlightRecorder::push`]).
    pub fn new(source: &str) -> QueryRecord {
        QueryRecord {
            seq: 0,
            fingerprint: fingerprint(source),
            source: truncate_source(source),
            session: None,
            cache: CacheDisposition::Uncached,
            phase_nanos: [0; Phase::ALL.len()],
            total_nanos: 0,
            rows: 0,
            effects: String::new(),
            parallel_workers: 0,
            parallel_fallback: None,
            engine: None,
            snapshot_epoch: None,
            error: None,
            slow: false,
        }
    }

    pub fn ok(&self) -> bool {
        self.error.is_none()
    }

    /// Nanos recorded for one lifecycle phase.
    pub fn phase_nanos(&self, phase: Phase) -> u64 {
        self.phase_nanos[phase.index()]
    }

    pub fn to_json(&self) -> Json {
        let phases = Json::Obj(
            Phase::ALL
                .iter()
                .map(|p| (p.as_str().to_string(), Json::from(self.phase_nanos[p.index()])))
                .collect(),
        );
        Json::obj(vec![
            ("seq", Json::from(self.seq)),
            // Hex, not a JSON number: a 64-bit hash exceeds i64 half the
            // time and must round-trip exactly.
            ("fingerprint", Json::str(format!("{:016x}", self.fingerprint))),
            ("source", Json::str(self.source.clone())),
            (
                "session",
                self.session.map(Json::from).unwrap_or(Json::Null),
            ),
            ("cache", Json::str(self.cache.as_str())),
            ("phase_nanos", phases),
            ("total_nanos", Json::from(self.total_nanos)),
            ("rows", Json::from(self.rows)),
            ("effects", Json::str(self.effects.clone())),
            ("parallel_workers", Json::from(self.parallel_workers)),
            (
                "parallel_fallback",
                self.parallel_fallback.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
            (
                "engine",
                self.engine.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
            (
                "snapshot_epoch",
                self.snapshot_epoch.map(Json::from).unwrap_or(Json::Null),
            ),
            (
                "outcome",
                Json::str(if self.ok() { "ok" } else { "error" }),
            ),
            (
                "error",
                self.error.clone().map(Json::Str).unwrap_or(Json::Null),
            ),
            ("slow", Json::Bool(self.slow)),
        ])
    }

    /// Rehydrate a record from its [`QueryRecord::to_json`] form — the
    /// journal format `oqltop` reads back.
    pub fn from_json(j: &Json) -> Result<QueryRecord, String> {
        let field = |k: &str| j.get(k).ok_or_else(|| format!("record missing `{k}`"));
        let u64_field = |k: &str| {
            field(k)?.as_u64().ok_or_else(|| format!("record `{k}` is not a non-negative integer"))
        };
        let fingerprint_hex =
            field("fingerprint")?.as_str().ok_or("record `fingerprint` is not a string")?;
        let fingerprint = u64::from_str_radix(fingerprint_hex, 16)
            .map_err(|_| format!("bad fingerprint `{fingerprint_hex}`"))?;
        let cache_str = field("cache")?.as_str().ok_or("record `cache` is not a string")?;
        let cache = CacheDisposition::parse(cache_str)
            .ok_or_else(|| format!("bad cache disposition `{cache_str}`"))?;
        let mut phase_nanos = [0u64; Phase::ALL.len()];
        if let Some(phases) = field("phase_nanos")?.as_obj() {
            for phase in Phase::ALL {
                if let Some(n) = phases
                    .iter()
                    .find(|(k, _)| k == phase.as_str())
                    .and_then(|(_, v)| v.as_u64())
                {
                    phase_nanos[phase.index()] = n;
                }
            }
        }
        Ok(QueryRecord {
            seq: u64_field("seq")?,
            fingerprint,
            source: field("source")?.as_str().ok_or("record `source` is not a string")?.to_string(),
            session: j.get("session").and_then(Json::as_u64),
            cache,
            phase_nanos,
            total_nanos: u64_field("total_nanos")?,
            rows: u64_field("rows")?,
            effects: j
                .get("effects")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            parallel_workers: j.get("parallel_workers").and_then(Json::as_u64).unwrap_or(0),
            parallel_fallback: j
                .get("parallel_fallback")
                .and_then(Json::as_str)
                .map(str::to_string),
            engine: j.get("engine").and_then(Json::as_str).map(str::to_string),
            snapshot_epoch: j.get("snapshot_epoch").and_then(Json::as_u64),
            error: j.get("error").and_then(Json::as_str).map(str::to_string),
            slow: j.get("slow").and_then(Json::as_bool).unwrap_or(false),
        })
    }

    /// Rehydrate from a record written by an *older* journal schema:
    /// any JSON object parses, and every missing or mistyped field takes
    /// its zero/absent default. `None` only when `j` is not an object at
    /// all. Loaders use this as the fallback after strict
    /// [`QueryRecord::from_json`] rejects a record, so archived journals
    /// stay readable across schema changes.
    pub fn from_json_lenient(j: &Json) -> Option<QueryRecord> {
        j.as_obj()?;
        let fingerprint = j
            .get("fingerprint")
            .and_then(Json::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .unwrap_or(0);
        let cache = j
            .get("cache")
            .and_then(Json::as_str)
            .and_then(CacheDisposition::parse)
            .unwrap_or(CacheDisposition::Uncached);
        let mut phase_nanos = [0u64; Phase::ALL.len()];
        if let Some(phases) = j.get("phase_nanos").and_then(Json::as_obj) {
            for phase in Phase::ALL {
                if let Some(n) = phases
                    .iter()
                    .find(|(k, _)| k == phase.as_str())
                    .and_then(|(_, v)| v.as_u64())
                {
                    phase_nanos[phase.index()] = n;
                }
            }
        }
        Some(QueryRecord {
            seq: j.get("seq").and_then(Json::as_u64).unwrap_or(0),
            fingerprint,
            source: j
                .get("source")
                .and_then(Json::as_str)
                .unwrap_or("<unknown>")
                .to_string(),
            session: j.get("session").and_then(Json::as_u64),
            cache,
            phase_nanos,
            total_nanos: j.get("total_nanos").and_then(Json::as_u64).unwrap_or(0),
            rows: j.get("rows").and_then(Json::as_u64).unwrap_or(0),
            effects: j
                .get("effects")
                .and_then(Json::as_str)
                .unwrap_or_default()
                .to_string(),
            parallel_workers: j.get("parallel_workers").and_then(Json::as_u64).unwrap_or(0),
            parallel_fallback: j
                .get("parallel_fallback")
                .and_then(Json::as_str)
                .map(str::to_string),
            engine: j.get("engine").and_then(Json::as_str).map(str::to_string),
            snapshot_epoch: j.get("snapshot_epoch").and_then(Json::as_u64),
            error: j.get("error").and_then(Json::as_str).map(str::to_string),
            slow: j.get("slow").and_then(Json::as_bool).unwrap_or(false),
        })
    }
}

/// Version stamped into [`FlightRecorder::to_json`] journals. Bump when
/// the record schema changes shape; journals without the field are
/// version 1. Version 3 added the `engine` field; version 4 added
/// `snapshot_epoch`.
pub const JOURNAL_SCHEMA_VERSION: u64 = 4;

/// Hash of the full source text (stable within a process, like the plan
/// cache's schema fingerprint).
pub fn fingerprint(source: &str) -> u64 {
    let mut h = DefaultHasher::new();
    source.hash(&mut h);
    h.finish()
}

fn truncate_source(source: &str) -> String {
    if source.chars().count() <= SOURCE_LIMIT {
        source.to_string()
    } else {
        let mut s: String = source.chars().take(SOURCE_LIMIT - 1).collect();
        s.push('…');
        s
    }
}

// ---------------------------------------------------------------------
// SlowQueryCapture
// ---------------------------------------------------------------------

/// The deep capture of one over-threshold query: the record's identity
/// plus whatever the owning layer had at hand — the optimized plan text
/// and/or a full `explain_analyze` profile.
#[derive(Debug, Clone)]
pub struct SlowQueryCapture {
    /// The [`QueryRecord::seq`] this capture belongs to.
    pub seq: u64,
    pub fingerprint: u64,
    /// Full (untruncated) source text — slow queries are rare enough to
    /// keep whole.
    pub source: String,
    pub total_nanos: u64,
    /// The threshold in force when the capture fired.
    pub threshold_nanos: u64,
    /// `explain` text of the optimized plan (plannable statements).
    pub plan: Option<String>,
    /// Full `QueryProfile` JSON (when the query was profiled, or was
    /// safe to re-run under the profiler).
    pub profile: Option<Json>,
}

impl SlowQueryCapture {
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", Json::from(self.seq)),
            ("fingerprint", Json::str(format!("{:016x}", self.fingerprint))),
            ("source", Json::str(self.source.clone())),
            ("total_nanos", Json::from(self.total_nanos)),
            ("threshold_nanos", Json::from(self.threshold_nanos)),
            ("plan", self.plan.clone().map(Json::Str).unwrap_or(Json::Null)),
            ("profile", self.profile.clone().unwrap_or(Json::Null)),
        ])
    }
}

// ---------------------------------------------------------------------
// FlightRecorder
// ---------------------------------------------------------------------

/// A fixed-capacity, lock-light ring of [`QueryRecord`]s plus the
/// slow-query capture log. One process-wide instance lives behind
/// [`global`]; tests build private ones with
/// [`FlightRecorder::with_capacity`].
pub struct FlightRecorder {
    /// One mutex per slot: a commit locks only the slot its sequence
    /// number maps to, so concurrent writers proceed independently.
    slots: Box<[Mutex<Option<QueryRecord>>]>,
    /// Total records ever committed; `seq % capacity` is the slot.
    cursor: AtomicU64,
    enabled: AtomicBool,
    /// Slow-query threshold in nanos; 0 disables the slow log.
    slow_threshold: AtomicU64,
    slow: Mutex<VecDeque<SlowQueryCapture>>,
}

impl FlightRecorder {
    /// A recorder holding the last `capacity` records (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            slow_threshold: AtomicU64::new(0),
            slow: Mutex::new(VecDeque::new()),
        }
    }

    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever committed (not capped by capacity).
    pub fn recorded_total(&self) -> u64 {
        self.cursor.load(Ordering::Relaxed)
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off at runtime (overrides the
    /// `MONOID_RECORDER` environment default).
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    pub fn slow_threshold(&self) -> u64 {
        self.slow_threshold.load(Ordering::Relaxed)
    }

    /// Set the slow-query threshold in nanos (0 = off; overrides the
    /// `MONOID_SLOW_QUERY_NANOS` environment default).
    pub fn set_slow_threshold(&self, nanos: u64) {
        self.slow_threshold.store(nanos, Ordering::Relaxed);
    }

    /// Commit a record: assign the next sequence number and overwrite
    /// the slot it maps to. Returns the assigned `seq`.
    pub fn push(&self, mut record: QueryRecord) -> u64 {
        let seq = self.cursor.fetch_add(1, Ordering::Relaxed);
        record.seq = seq;
        let slot = (seq % self.slots.len() as u64) as usize;
        *self.slots[slot].lock().unwrap_or_else(std::sync::PoisonError::into_inner) =
            Some(record);
        seq
    }

    /// The retained records, oldest first. Each slot is locked
    /// individually, so a snapshot taken under concurrent commits is a
    /// consistent set of committed records but not an atomic cut.
    pub fn snapshot(&self) -> Vec<QueryRecord> {
        let mut out: Vec<QueryRecord> = self
            .slots
            .iter()
            .filter_map(|s| {
                s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clone()
            })
            .collect();
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Records currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.slots
            .iter()
            .filter(|s| {
                s.lock().unwrap_or_else(std::sync::PoisonError::into_inner).is_some()
            })
            .count()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Append a slow-query capture (oldest evicted past the log's
    /// capacity).
    pub fn capture_slow(&self, capture: SlowQueryCapture) {
        rec_metrics().slow_captures.inc();
        let mut slow = self.slow.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if slow.len() >= SLOW_LOG_CAPACITY {
            slow.pop_front();
        }
        slow.push_back(capture);
    }

    /// The retained slow-query captures, oldest first.
    pub fn slow_log(&self) -> Vec<SlowQueryCapture> {
        self.slow
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .cloned()
            .collect()
    }

    /// Drop all records and slow captures (counters and the cursor are
    /// not reset — sequence numbers stay monotonic).
    pub fn clear(&self) {
        for slot in &self.slots {
            *slot.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = None;
        }
        self.slow.lock().unwrap_or_else(std::sync::PoisonError::into_inner).clear();
    }

    /// The journal document:
    /// `{schema_version, capacity, recorded_total, records: […]}` — what
    /// `oqltop --journal` reads back. Loaders treat a missing
    /// `schema_version` as version 1 (the pre-versioned format) and must
    /// accept older versions by defaulting absent record fields.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema_version", Json::from(JOURNAL_SCHEMA_VERSION)),
            ("capacity", Json::from(self.capacity())),
            ("recorded_total", Json::from(self.recorded_total())),
            (
                "records",
                Json::Arr(self.snapshot().iter().map(QueryRecord::to_json).collect()),
            ),
        ])
    }

    /// The slow-query log as a JSON document.
    pub fn slow_log_json(&self) -> Json {
        Json::obj(vec![
            ("threshold_nanos", Json::from(self.slow_threshold())),
            (
                "captures",
                Json::Arr(self.slow_log().iter().map(SlowQueryCapture::to_json).collect()),
            ),
        ])
    }
}

/// The process-wide recorder, configured once from the environment:
/// `MONOID_RECORDER=0|off|false` disables it, `MONOID_RECORDER_CAPACITY`
/// sizes the ring (default 1024), `MONOID_SLOW_QUERY_NANOS` arms the
/// slow-query log.
pub fn global() -> &'static FlightRecorder {
    static RECORDER: OnceLock<FlightRecorder> = OnceLock::new();
    RECORDER.get_or_init(|| {
        let capacity = std::env::var("MONOID_RECORDER_CAPACITY")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .unwrap_or(DEFAULT_CAPACITY);
        let recorder = FlightRecorder::with_capacity(capacity);
        if let Ok(v) = std::env::var("MONOID_RECORDER") {
            let v = v.trim().to_ascii_lowercase();
            if v == "0" || v == "off" || v == "false" {
                recorder.set_enabled(false);
            }
        }
        if let Some(nanos) = std::env::var("MONOID_SLOW_QUERY_NANOS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            recorder.set_slow_threshold(nanos);
        }
        recorder
    })
}

// ---------------------------------------------------------------------
// Record scopes (thread-local)
// ---------------------------------------------------------------------

struct Pending {
    record: QueryRecord,
    started: Instant,
}

thread_local! {
    static ACTIVE: RefCell<Option<Pending>> = const { RefCell::new(None) };
}

/// An open recording for the query executing on this thread. Obtain with
/// [`begin`]; annotate through the `note_*` free functions; commit with
/// [`RecordScope::finish`]. Dropping an unfinished scope discards the
/// pending record.
pub struct RecordScope {
    finished: bool,
    /// Scopes are bound to the thread whose `ACTIVE` slot they own.
    _not_send: PhantomData<*const ()>,
}

/// Open a record for `source` against the [`global`] recorder. Returns
/// `None` — without allocating — when the recorder is disabled, or when
/// this thread already has an open scope (the notes of the nested layer
/// then annotate the outer record).
pub fn begin(source: &str) -> Option<RecordScope> {
    if !global().enabled() {
        return None;
    }
    ACTIVE.with(|a| {
        let mut a = a.borrow_mut();
        if a.is_some() {
            return None;
        }
        *a = Some(Pending { record: QueryRecord::new(source), started: Instant::now() });
        Some(RecordScope { finished: false, _not_send: PhantomData })
    })
}

/// Is a record open on this thread? Layers use this to skip building
/// annotation values (e.g. rendering an effect summary) when nobody is
/// listening.
pub fn active() -> bool {
    ACTIVE.with(|a| a.borrow().is_some())
}

fn with_active(f: impl FnOnce(&mut QueryRecord)) {
    ACTIVE.with(|a| {
        if let Some(p) = a.borrow_mut().as_mut() {
            f(&mut p.record);
        }
    });
}

/// Attribute the record to a serving session.
pub fn note_session(id: u64) {
    with_active(|r| r.session = Some(id));
}

/// Record the plan-cache disposition.
pub fn note_cache(disposition: CacheDisposition) {
    with_active(|r| r.cache = disposition);
}

/// Add `nanos` to one lifecycle phase (accumulates, like
/// [`QueryTrace::record`]).
pub fn note_phase(phase: Phase, nanos: u128) {
    with_active(|r| {
        let n = u64::try_from(nanos).unwrap_or(u64::MAX);
        r.phase_nanos[phase.index()] = r.phase_nanos[phase.index()].saturating_add(n);
    });
}

/// Fold every phase of an already-timed trace into the record (a cold
/// prepare's parse → plan phases, or a profiled run's full lifecycle).
pub fn note_trace(trace: &QueryTrace) {
    with_active(|r| {
        for t in &trace.phases {
            let n = u64::try_from(t.nanos).unwrap_or(u64::MAX);
            r.phase_nanos[t.phase.index()] =
                r.phase_nanos[t.phase.index()].saturating_add(n);
        }
    });
}

/// Record the rows produced (overwrites — layers noting the same result
/// agree by construction).
pub fn note_rows(rows: u64) {
    with_active(|r| r.rows = rows);
}

/// [`note_rows`] from a result value: its element count, or 1 for
/// scalars. The count is only computed when a record is active.
pub fn note_result(value: &Value) {
    with_active(|r| {
        r.rows = value.len().map(|n| n as u64).unwrap_or(1);
    });
}

/// Record the rendered effect summary. Takes a closure so callers don't
/// build the string when no record is active.
pub fn note_effects(render: impl FnOnce() -> String) {
    with_active(|r| r.effects = render());
}

/// Record what the parallel engine did: workers spawned and the
/// fallback reason, if it ran sequentially.
pub fn note_parallel(workers: u64, fallback: Option<&str>) {
    with_active(|r| {
        r.parallel_workers = workers;
        r.parallel_fallback = fallback.map(str::to_string);
    });
}

/// Record which execution engine ran the reduction (`"fused"`,
/// `"plan-walk"`, `"eval"`). Overwrites — the layer that actually
/// executed notes last.
pub fn note_engine(engine: &str) {
    with_active(|r| r.engine = Some(engine.to_string()));
}

/// Record the pinned `mutation_epoch` of the snapshot a read-path
/// statement executed against.
pub fn note_snapshot_epoch(epoch: u64) {
    with_active(|r| r.snapshot_epoch = Some(epoch));
}

/// Returned by [`RecordScope::finish`] when the record crossed the
/// slow-query threshold: everything a layer needs to attach a
/// [`SlowQueryCapture`].
#[derive(Debug, Clone)]
pub struct SlowTrigger {
    pub seq: u64,
    pub fingerprint: u64,
    pub source: String,
    pub total_nanos: u64,
    pub threshold_nanos: u64,
}

impl RecordScope {
    /// Commit the record: stamp total wall-clock time and the outcome,
    /// push it into the [`global`] ring, and bump the `recorder_*`
    /// counters. Returns a [`SlowTrigger`] when the slow-query
    /// threshold was exceeded — the caller then decides what deep
    /// capture to attach.
    pub fn finish(mut self, error: Option<String>) -> Option<SlowTrigger> {
        self.finished = true;
        let pending = ACTIVE.with(|a| a.borrow_mut().take())?;
        let Pending { mut record, started } = pending;
        record.total_nanos = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        record.error = error;
        let recorder = global();
        let threshold = recorder.slow_threshold();
        record.slow = threshold > 0 && record.total_nanos >= threshold;
        let m = rec_metrics();
        m.records.inc();
        if record.error.is_some() {
            m.errors.inc();
        }
        let trigger = record.slow.then(|| SlowTrigger {
            seq: 0, // patched below with the committed seq
            fingerprint: record.fingerprint,
            source: record.source.clone(),
            total_nanos: record.total_nanos,
            threshold_nanos: threshold,
        });
        let seq = recorder.push(record);
        trigger.map(|mut t| {
            t.seq = seq;
            t
        })
    }
}

impl Drop for RecordScope {
    fn drop(&mut self) {
        if !self.finished {
            ACTIVE.with(|a| {
                a.borrow_mut().take();
            });
        }
    }
}

// ---------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------

struct RecorderMetrics {
    records: Arc<metrics::Counter>,
    errors: Arc<metrics::Counter>,
    slow_captures: Arc<metrics::Counter>,
}

fn rec_metrics() -> &'static RecorderMetrics {
    static METRICS: OnceLock<RecorderMetrics> = OnceLock::new();
    METRICS.get_or_init(|| {
        let r = metrics::global();
        RecorderMetrics {
            records: r.counter("recorder_records_total"),
            errors: r.counter("recorder_errors_total"),
            slow_captures: r.counter("recorder_slow_captures_total"),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_first() {
        let rec = FlightRecorder::with_capacity(3);
        for i in 0..5 {
            rec.push(QueryRecord::new(&format!("q{i}")));
        }
        let snap = rec.snapshot();
        assert_eq!(snap.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(snap[0].source, "q2");
        assert_eq!(rec.recorded_total(), 5);
        assert_eq!(rec.len(), 3);
    }

    #[test]
    fn record_round_trips_through_json() {
        let mut r = QueryRecord::new("select c.name from c in Cities");
        r.session = Some(7);
        r.cache = CacheDisposition::Hit;
        r.phase_nanos[Phase::Execute.index()] = 1234;
        r.total_nanos = 5678;
        r.rows = 3;
        r.effects = "reads heap".to_string();
        r.parallel_workers = 4;
        r.parallel_fallback = Some("mutation".to_string());
        r.engine = Some("fused".to_string());
        r.snapshot_epoch = Some(41);
        r.error = Some("boom".to_string());
        r.slow = true;
        let j = r.to_json();
        let back = QueryRecord::from_json(&j).unwrap();
        assert_eq!(back, r);
        // And through the text form.
        let reparsed = Json::parse(&j.render()).unwrap();
        assert_eq!(QueryRecord::from_json(&reparsed).unwrap(), r);
    }

    #[test]
    fn long_sources_truncate_but_fingerprint_whole_text() {
        let long = "x".repeat(1000);
        let r = QueryRecord::new(&long);
        assert!(r.source.chars().count() <= SOURCE_LIMIT);
        assert_eq!(r.fingerprint, fingerprint(&long));
        assert_ne!(r.fingerprint, fingerprint(&r.source));
    }

    #[test]
    fn slow_log_caps_and_serializes() {
        let rec = FlightRecorder::with_capacity(4);
        for i in 0..(SLOW_LOG_CAPACITY + 5) {
            rec.capture_slow(SlowQueryCapture {
                seq: i as u64,
                fingerprint: 1,
                source: "q".to_string(),
                total_nanos: 10,
                threshold_nanos: 5,
                plan: Some("Scan".to_string()),
                profile: None,
            });
        }
        let log = rec.slow_log();
        assert_eq!(log.len(), SLOW_LOG_CAPACITY);
        assert_eq!(log[0].seq, 5, "oldest captures evicted");
        let j = rec.slow_log_json().render();
        assert!(j.contains("\"captures\""), "{j}");
    }

    #[test]
    fn nested_begin_yields_one_record() {
        // Serialize against other tests that touch the global recorder.
        let rec = global();
        let enabled_before = rec.enabled();
        rec.set_enabled(true);
        let outer = begin("outer").expect("no scope open on this thread");
        assert!(active());
        assert!(begin("inner").is_none(), "nested begin is absorbed");
        note_rows(9);
        note_cache(CacheDisposition::Miss);
        let before = rec.recorded_total();
        assert!(outer.finish(None).is_none(), "no slow threshold armed");
        assert_eq!(rec.recorded_total(), before + 1);
        let last = rec.snapshot().into_iter().next_back().unwrap();
        assert_eq!(last.source, "outer");
        assert_eq!(last.rows, 9);
        assert_eq!(last.cache, CacheDisposition::Miss);
        assert!(!active());
        rec.set_enabled(enabled_before);
    }

    #[test]
    fn dropping_an_unfinished_scope_discards_it() {
        let rec = global();
        let enabled_before = rec.enabled();
        rec.set_enabled(true);
        let before = rec.recorded_total();
        drop(begin("abandoned").expect("no scope open on this thread"));
        assert!(!active());
        assert_eq!(rec.recorded_total(), before, "nothing committed");
        rec.set_enabled(enabled_before);
    }
}
