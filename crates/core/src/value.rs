//! Runtime values, with canonical collection representations and the
//! value-level monoid operations (`zero`, `unit`, `merge`).
//!
//! Design decisions (see DESIGN.md §3):
//! * **Sets** are sorted, duplicate-free vectors; **bags** are sorted runs of
//!   `(value, count)`. This makes set/bag equality exact, iteration
//!   deterministic, and gives every value a total order ([`Value::cmp`],
//!   floats via `total_cmp`) — which in turn makes `sorted`-monoid merges,
//!   hash-free join keys, and the escape-hatch coercions well-defined.
//! * **oset / sorted / sortedbag** values are plain lists (Table 1 gives
//!   them type `list(α)`); the monoid only governs how they merge.
//! * Structure sharing via `Arc` keeps cloning cheap — environments and
//!   comprehension evaluation clone values freely.

use crate::error::{EvalError, EvalResult};
use crate::monoid::Monoid;
use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::Arc;

/// An object identifier: an index into the evaluator's heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Oid(pub u64);

impl fmt::Display for Oid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A lexical environment: an immutable linked list of bindings, cheap to
/// extend and to capture in closures.
#[derive(Debug, Clone, Default)]
pub struct Env(Option<Arc<EnvNode>>);

#[derive(Debug)]
struct EnvNode {
    name: Symbol,
    value: Value,
    rest: Env,
}

impl Env {
    pub fn empty() -> Env {
        Env(None)
    }

    /// Extend with a binding, returning the new environment.
    pub fn bind(&self, name: Symbol, value: Value) -> Env {
        Env(Some(Arc::new(EnvNode { name, value, rest: self.clone() })))
    }

    /// Look up the innermost binding of `name`.
    pub fn lookup(&self, name: Symbol) -> Option<&Value> {
        let mut node = self.0.as_deref();
        while let Some(n) = node {
            if n.name == name {
                return Some(&n.value);
            }
            node = n.rest.0.as_deref();
        }
        None
    }

    /// Build an environment from a list of bindings.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Symbol, Value)>) -> Env {
        let mut env = Env::empty();
        for (name, value) in bindings {
            env = env.bind(name, value);
        }
        env
    }
}

/// A reusable row buffer for the executor's join paths: a short chain of
/// bindings layered over a swappable base environment.
///
/// A join probe emits one row per match, and consecutive rows differ only
/// in the values bound for the build side's variables. Building each row
/// with [`Env::bind`] allocates one `Arc` node per variable per emitted
/// row; a `ScratchRow` keeps the chain alive between rows and rebinds its
/// nodes in place whenever it holds the only reference to them. When a
/// consumer retained the previous row (a captured closure, a buffered
/// binding), the shared nodes are left untouched and a fresh chain is
/// built instead — environments stay observably immutable.
#[derive(Debug, Default)]
pub struct ScratchRow {
    env: Env,
    depth: usize,
}

impl ScratchRow {
    pub fn new() -> ScratchRow {
        ScratchRow { env: Env::empty(), depth: 0 }
    }

    /// The row `base` extended with `bindings` (in order, later entries
    /// shadowing earlier ones) — reusing this buffer's nodes when nothing
    /// else holds them.
    pub fn fill(&mut self, base: &Env, bindings: &[(Symbol, Value)]) -> &Env {
        if bindings.is_empty() {
            self.env = base.clone();
            self.depth = 0;
        } else if self.depth != bindings.len() || !self.fill_in_place(base, bindings) {
            let mut env = base.clone();
            for (name, value) in bindings {
                env = env.bind(*name, value.clone());
            }
            self.env = env;
            self.depth = bindings.len();
        }
        &self.env
    }

    /// Overwrite the chain top-down (the topmost node is the *last*
    /// binding). Returns `false` — possibly after mutating a prefix of
    /// exclusively-held nodes, which the caller then discards wholesale —
    /// as soon as a node is shared.
    fn fill_in_place(&mut self, base: &Env, bindings: &[(Symbol, Value)]) -> bool {
        let mut node = &mut self.env;
        for (i, (name, value)) in bindings.iter().rev().enumerate() {
            let Some(n) = node.0.as_mut().and_then(Arc::get_mut) else {
                return false;
            };
            n.name = *name;
            n.value = value.clone();
            if i + 1 == bindings.len() {
                n.rest = base.clone();
            }
            node = &mut n.rest;
        }
        true
    }
}

/// A user-level function value.
#[derive(Debug)]
pub struct Closure {
    pub param: Symbol,
    pub body: crate::expr::Expr,
    pub env: Env,
    /// Unique id giving closures a stable place in the value total order.
    pub id: u64,
}

fn next_closure_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    NEXT.fetch_add(1, AtomicOrdering::Relaxed)
}

impl Closure {
    pub fn new(param: Symbol, body: crate::expr::Expr, env: Env) -> Closure {
        Closure { param, body, env, id: next_closure_id() }
    }
}

/// A runtime value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    /// Record; fields sorted by label name for canonical comparison.
    Record(Arc<Vec<(Symbol, Value)>>),
    Tuple(Arc<Vec<Value>>),
    List(Arc<Vec<Value>>),
    /// Sorted, duplicate-free.
    Set(Arc<Vec<Value>>),
    /// Sorted runs of `(value, count)` with `count ≥ 1`.
    Bag(Arc<Vec<(Value, u64)>>),
    /// Fixed-size vector (§4.1).
    Vector(Arc<Vec<Value>>),
    /// Object identity (§4.2).
    Obj(Oid),
    Closure(Arc<Closure>),
}

impl Value {
    pub fn str(s: &str) -> Value {
        Value::Str(Arc::from(s))
    }

    /// Build a record value; fields are sorted by label name.
    pub fn record(mut fields: Vec<(Symbol, Value)>) -> Value {
        fields.sort_by(|a, b| a.0.as_str().cmp(b.0.as_str()));
        Value::Record(Arc::new(fields))
    }

    pub fn record_from(fields: Vec<(&str, Value)>) -> Value {
        Value::record(fields.into_iter().map(|(n, v)| (Symbol::new(n), v)).collect())
    }

    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(Arc::new(items))
    }

    pub fn list(items: Vec<Value>) -> Value {
        Value::List(Arc::new(items))
    }

    pub fn vector(items: Vec<Value>) -> Value {
        Value::Vector(Arc::new(items))
    }

    /// Build a set: sorts and deduplicates.
    pub fn set_from(mut items: Vec<Value>) -> Value {
        items.sort();
        items.dedup();
        Value::Set(Arc::new(items))
    }

    /// Build a bag from individual elements.
    pub fn bag_from(mut items: Vec<Value>) -> Value {
        items.sort();
        let mut runs: Vec<(Value, u64)> = Vec::new();
        for item in items {
            match runs.last_mut() {
                Some((v, n)) if *v == item => *n += 1,
                _ => runs.push((item, 1)),
            }
        }
        Value::Bag(Arc::new(runs))
    }

    /// Field access on records (used by projection after auto-deref).
    pub fn field(&self, name: Symbol) -> Option<&Value> {
        match self {
            Value::Record(fields) => {
                fields.iter().find(|(n, _)| *n == name).map(|(_, v)| v)
            }
            _ => None,
        }
    }

    pub fn as_bool(&self) -> EvalResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(EvalError::TypeMismatch {
                op: "boolean",
                detail: format!("expected bool, got {}", other.kind()),
            }),
        }
    }

    pub fn as_int(&self) -> EvalResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            other => Err(EvalError::TypeMismatch {
                op: "integer",
                detail: format!("expected int, got {}", other.kind()),
            }),
        }
    }

    /// A short human-readable name for the value's shape, for errors.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Record(_) => "record",
            Value::Tuple(_) => "tuple",
            Value::List(_) => "list",
            Value::Set(_) => "set",
            Value::Bag(_) => "bag",
            Value::Vector(_) => "vector",
            Value::Obj(_) => "object",
            Value::Closure(_) => "function",
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Tuple(_) => 5,
            Value::Record(_) => 6,
            Value::List(_) => 7,
            Value::Set(_) => 8,
            Value::Bag(_) => 9,
            Value::Vector(_) => 10,
            Value::Obj(_) => 11,
            Value::Closure(_) => 12,
        }
    }

    /// Number of elements for collections.
    pub fn len(&self) -> EvalResult<usize> {
        match self {
            Value::List(v) | Value::Set(v) | Value::Vector(v) => Ok(v.len()),
            Value::Bag(runs) => Ok(runs.iter().map(|(_, n)| *n as usize).sum()),
            Value::Str(s) => Ok(s.chars().count()),
            other => Err(EvalError::TypeMismatch {
                op: "len",
                detail: format!("not a collection: {}", other.kind()),
            }),
        }
    }

    pub fn is_empty(&self) -> EvalResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Enumerate the elements of a collection value, in canonical order.
    /// Strings iterate as single-character strings (string = list(char)).
    pub fn elements(&self) -> EvalResult<Vec<Value>> {
        match self {
            Value::List(v) | Value::Set(v) | Value::Vector(v) => Ok(v.as_ref().clone()),
            Value::Bag(runs) => {
                let mut out = Vec::new();
                for (v, n) in runs.iter() {
                    for _ in 0..*n {
                        out.push(v.clone());
                    }
                }
                Ok(out)
            }
            Value::Str(s) => Ok(s.chars().map(|c| Value::str(&c.to_string())).collect()),
            other => Err(EvalError::TypeMismatch {
                op: "iterate",
                detail: format!("not a collection: {}", other.kind()),
            }),
        }
    }

    /// The monoid naturally associated with this collection value's shape,
    /// used by the evaluator to check generator legality dynamically (the
    /// type checker does it statically).
    pub fn source_monoid(&self) -> Option<Monoid> {
        match self {
            Value::List(_) | Value::Vector(_) | Value::Str(_) => Some(Monoid::List),
            Value::Set(_) => Some(Monoid::Set),
            Value::Bag(_) => Some(Monoid::Bag),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Value) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    /// A total order over all values: by shape rank, then contents. Floats
    /// use `total_cmp`; ints and floats comparing across shapes fall back to
    /// numeric comparison so `1 = 1.0` inside mixed collections behaves
    /// sensibly.
    fn cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Tuple(a), Tuple(b)) => a.as_slice().cmp(b.as_slice()),
            (Record(a), Record(b)) => {
                // Records are sorted by field name; compare field-wise with
                // names compared as strings (stable across interner runs).
                let mut ia = a.iter();
                let mut ib = b.iter();
                loop {
                    match (ia.next(), ib.next()) {
                        (None, None) => return Ordering::Equal,
                        (None, Some(_)) => return Ordering::Less,
                        (Some(_), None) => return Ordering::Greater,
                        (Some((na, va)), Some((nb, vb))) => {
                            let c = na.as_str().cmp(nb.as_str()).then_with(|| va.cmp(vb));
                            if c != Ordering::Equal {
                                return c;
                            }
                        }
                    }
                }
            }
            (List(a), List(b)) | (Set(a), Set(b)) | (Vector(a), Vector(b)) => {
                a.as_slice().cmp(b.as_slice())
            }
            (Bag(a), Bag(b)) => a.as_slice().cmp(b.as_slice()),
            (Obj(a), Obj(b)) => a.cmp(b),
            (Closure(a), Closure(b)) => a.id.cmp(&b.id),
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list_like(
            f: &mut fmt::Formatter<'_>,
            open: &str,
            close: &str,
            items: &[Value],
        ) -> fmt::Result {
            write!(f, "{open}")?;
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "{close}")
        }
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Record(fields) => {
                write!(f, "⟨")?;
                for (i, (n, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}={v}")?;
                }
                write!(f, "⟩")
            }
            Value::Tuple(items) => list_like(f, "(", ")", items),
            Value::List(items) => list_like(f, "[", "]", items),
            Value::Set(items) => list_like(f, "{", "}", items),
            Value::Bag(runs) => {
                write!(f, "{{{{")?;
                let mut first = true;
                for (v, n) in runs.iter() {
                    for _ in 0..*n {
                        if !first {
                            write!(f, ", ")?;
                        }
                        first = false;
                        write!(f, "{v}")?;
                    }
                }
                write!(f, "}}}}")
            }
            Value::Vector(items) => list_like(f, "⟦", "⟧", items),
            Value::Obj(oid) => write!(f, "{oid}"),
            Value::Closure(c) => write!(f, "λ{}.…", c.param),
        }
    }
}

// ---------------------------------------------------------------------------
// Value-level monoid operations.
// ---------------------------------------------------------------------------

/// `zero_M` as a value. The vector monoid needs a size and is handled by
/// [`zero_vector`].
pub fn zero(monoid: &Monoid) -> EvalResult<Value> {
    Ok(match monoid {
        Monoid::List | Monoid::OSet | Monoid::Sorted | Monoid::SortedBag => {
            Value::List(Arc::new(Vec::new()))
        }
        Monoid::Set => Value::Set(Arc::new(Vec::new())),
        Monoid::Bag => Value::Bag(Arc::new(Vec::new())),
        Monoid::Str => Value::str(""),
        Monoid::Sum => Value::Int(0),
        Monoid::Prod => Value::Int(1),
        // −∞ / +∞: represented as Null, absorbed by merge.
        Monoid::Max | Monoid::Min => Value::Null,
        Monoid::Some => Value::Bool(false),
        Monoid::All => Value::Bool(true),
        Monoid::VecOf(_) => {
            return Err(EvalError::Other(
                "zero of a vector monoid requires a size; use zero_vector".into(),
            ))
        }
    })
}

/// `zero_{M[n]}`: a vector of `n` copies of `zero_M`.
pub fn zero_vector(elem: &Monoid, n: usize) -> EvalResult<Value> {
    let z = zero(elem)?;
    Ok(Value::Vector(Arc::new(vec![z; n])))
}

/// `unit_M(v)`. For primitive monoids the unit is the identity injection
/// (the paper's `unit_sum(a) = a`); for collection monoids it builds a
/// singleton. Vector units are built by [`unit_vector`].
pub fn unit(monoid: &Monoid, v: Value) -> EvalResult<Value> {
    Ok(match monoid {
        Monoid::List | Monoid::OSet | Monoid::Sorted | Monoid::SortedBag => {
            Value::List(Arc::new(vec![v]))
        }
        Monoid::Set => Value::Set(Arc::new(vec![v])),
        Monoid::Bag => Value::Bag(Arc::new(vec![(v, 1)])),
        Monoid::Str => match v {
            s @ Value::Str(_) => s,
            other => {
                return Err(EvalError::TypeMismatch {
                    op: "unit_string",
                    detail: format!("expected string, got {}", other.kind()),
                })
            }
        },
        Monoid::Sum | Monoid::Prod | Monoid::Max | Monoid::Min => v,
        Monoid::Some | Monoid::All => Value::Bool(v.as_bool()?),
        Monoid::VecOf(_) => {
            return Err(EvalError::Other(
                "unit of a vector monoid takes (value, index, size); use unit_vector".into(),
            ))
        }
    })
}

/// `unit_{M[n]}(a, i)`: the paper's sparse unit vector — `zero_M` everywhere
/// except `a` at index `i` (e.g. `unit sum[4](8, 2) = (|0,0,8,0|)`).
pub fn unit_vector(elem: &Monoid, n: usize, a: Value, i: usize) -> EvalResult<Value> {
    if i >= n {
        return Err(EvalError::IndexOutOfBounds { index: i as i64, len: n });
    }
    let mut items = match zero_vector(elem, n)? {
        Value::Vector(v) => v.as_ref().clone(),
        _ => unreachable!(),
    };
    items[i] = unit(elem, a)?;
    Ok(Value::Vector(Arc::new(items)))
}

fn numeric_binop(
    op: &'static str,
    a: &Value,
    b: &Value,
    int_op: impl Fn(i64, i64) -> Option<i64>,
    float_op: impl Fn(f64, f64) -> f64,
) -> EvalResult<Value> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => int_op(*x, *y)
            .map(Value::Int)
            .ok_or_else(|| EvalError::Arithmetic(format!("{op} overflow on {x}, {y}"))),
        (Value::Int(x), Value::Float(y)) => Ok(Value::Float(float_op(*x as f64, *y))),
        (Value::Float(x), Value::Int(y)) => Ok(Value::Float(float_op(*x, *y as f64))),
        (Value::Float(x), Value::Float(y)) => Ok(Value::Float(float_op(*x, *y))),
        _ => Err(EvalError::TypeMismatch {
            op,
            detail: format!("expected numbers, got {} and {}", a.kind(), b.kind()),
        }),
    }
}

/// In-place fold for the common primitive acc/head shapes, skipping the
/// `unit` + `merge` round-trip (which rebuilds the accumulator `Value` per
/// element). Returns `false` for shapes it does not cover — mixed int/float
/// promotion, non-bool `some`/`all` heads — so those keep the exact
/// behaviour (including error text) of the generic path.
fn prim_fold_fast(monoid: &Monoid, acc: &mut Value, head: &Value) -> EvalResult<bool> {
    match (monoid, &mut *acc, head) {
        (Monoid::Sum, Value::Int(x), Value::Int(y)) => {
            let folded = x
                .checked_add(*y)
                .ok_or_else(|| EvalError::Arithmetic(format!("sum overflow on {x}, {y}")))?;
            *x = folded;
        }
        (Monoid::Sum, Value::Float(x), Value::Float(y)) => *x += y,
        (Monoid::Prod, Value::Int(x), Value::Int(y)) => {
            let folded = x
                .checked_mul(*y)
                .ok_or_else(|| EvalError::Arithmetic(format!("prod overflow on {x}, {y}")))?;
            *x = folded;
        }
        (Monoid::Prod, Value::Float(x), Value::Float(y)) => *x *= y,
        // max/min: `Null` is absorbing on either side; otherwise keep the
        // left value on ties, exactly as `merge` does.
        (Monoid::Max | Monoid::Min, _, Value::Null) => {}
        (Monoid::Max | Monoid::Min, a @ Value::Null, v) => *a = v.clone(),
        (Monoid::Max, a, v) => {
            if v > &*a {
                *a = v.clone();
            }
        }
        (Monoid::Min, a, v) => {
            if v < &*a {
                *a = v.clone();
            }
        }
        (Monoid::Some, Value::Bool(x), Value::Bool(y)) => *x = *x || *y,
        (Monoid::All, Value::Bool(x), Value::Bool(y)) => *x = *x && *y,
        _ => return Ok(false),
    }
    Ok(true)
}

/// Merge two sorted vectors, optionally dropping duplicates.
fn sorted_merge(a: &[Value], b: &[Value], dedup: bool) -> Vec<Value> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            Ordering::Equal => {
                out.push(a[i].clone());
                if !dedup {
                    out.push(b[j].clone());
                }
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    if dedup {
        out.dedup();
    }
    out
}

/// `a ⊕_M b`.
pub fn merge(monoid: &Monoid, a: &Value, b: &Value) -> EvalResult<Value> {
    let shape_err = |m: &Monoid| EvalError::TypeMismatch {
        op: "merge",
        detail: format!("cannot merge {} and {} with {}", a.kind(), b.kind(), m),
    };
    match monoid {
        // list ++: concatenation.
        Monoid::List => match (a, b) {
            (Value::List(x), Value::List(y)) => {
                let mut out = x.as_ref().clone();
                out.extend_from_slice(y);
                Ok(Value::List(Arc::new(out)))
            }
            _ => Err(shape_err(monoid)),
        },
        // set ∪.
        Monoid::Set => match (a, b) {
            (Value::Set(x), Value::Set(y)) => {
                Ok(Value::Set(Arc::new(sorted_merge(x, y, true))))
            }
            _ => Err(shape_err(monoid)),
        },
        // bag ⊎: additive union.
        Monoid::Bag => match (a, b) {
            (Value::Bag(x), Value::Bag(y)) => {
                let mut out: Vec<(Value, u64)> = Vec::with_capacity(x.len() + y.len());
                let (mut i, mut j) = (0, 0);
                while i < x.len() && j < y.len() {
                    match x[i].0.cmp(&y[j].0) {
                        Ordering::Less => {
                            out.push(x[i].clone());
                            i += 1;
                        }
                        Ordering::Greater => {
                            out.push(y[j].clone());
                            j += 1;
                        }
                        Ordering::Equal => {
                            out.push((x[i].0.clone(), x[i].1 + y[j].1));
                            i += 1;
                            j += 1;
                        }
                    }
                }
                out.extend_from_slice(&x[i..]);
                out.extend_from_slice(&y[j..]);
                Ok(Value::Bag(Arc::new(out)))
            }
            _ => Err(shape_err(monoid)),
        },
        // oset ∪̇: x ++ (y − x), the paper's duplicate-dropping append.
        Monoid::OSet => match (a, b) {
            (Value::List(x), Value::List(y)) => {
                let mut out = x.as_ref().clone();
                for item in y.iter() {
                    if !out.contains(item) {
                        out.push(item.clone());
                    }
                }
                Ok(Value::List(Arc::new(out)))
            }
            _ => Err(shape_err(monoid)),
        },
        // sorted: order-merge, duplicate-dropping (CI).
        Monoid::Sorted => match (a, b) {
            (Value::List(x), Value::List(y)) => {
                Ok(Value::List(Arc::new(sorted_merge(x, y, true))))
            }
            _ => Err(shape_err(monoid)),
        },
        // sortedbag: order-merge, duplicate-keeping (C).
        Monoid::SortedBag => match (a, b) {
            (Value::List(x), Value::List(y)) => {
                Ok(Value::List(Arc::new(sorted_merge(x, y, false))))
            }
            _ => Err(shape_err(monoid)),
        },
        Monoid::Str => match (a, b) {
            (Value::Str(x), Value::Str(y)) => {
                let mut s = String::with_capacity(x.len() + y.len());
                s.push_str(x);
                s.push_str(y);
                Ok(Value::Str(Arc::from(s.as_str())))
            }
            _ => Err(shape_err(monoid)),
        },
        Monoid::Sum => numeric_binop("sum", a, b, i64::checked_add, |x, y| x + y),
        Monoid::Prod => numeric_binop("prod", a, b, i64::checked_mul, |x, y| x * y),
        Monoid::Max => match (a, b) {
            (Value::Null, v) | (v, Value::Null) => Ok(v.clone()),
            (x, y) => Ok(if x >= y { x.clone() } else { y.clone() }),
        },
        Monoid::Min => match (a, b) {
            (Value::Null, v) | (v, Value::Null) => Ok(v.clone()),
            (x, y) => Ok(if x <= y { x.clone() } else { y.clone() }),
        },
        Monoid::Some => Ok(Value::Bool(a.as_bool()? || b.as_bool()?)),
        Monoid::All => Ok(Value::Bool(a.as_bool()? && b.as_bool()?)),
        // M[n]: pointwise merge; sizes must agree.
        Monoid::VecOf(elem) => match (a, b) {
            (Value::Vector(x), Value::Vector(y)) => {
                if x.len() != y.len() {
                    return Err(EvalError::TypeMismatch {
                        op: "merge",
                        detail: format!(
                            "vector size mismatch: {} vs {}",
                            x.len(),
                            y.len()
                        ),
                    });
                }
                let items = x
                    .iter()
                    .zip(y.iter())
                    .map(|(xa, yb)| merge(elem, xa, yb))
                    .collect::<EvalResult<Vec<_>>>()?;
                Ok(Value::Vector(Arc::new(items)))
            }
            _ => Err(shape_err(monoid)),
        },
    }
}

/// An incremental monoid accumulator.
///
/// Folding a comprehension as `acc = merge(acc, unit(x))` re-copies the
/// whole accumulator per element — `O(n²)` for collections. The
/// accumulator instead buffers elements and canonicalizes once in
/// [`Accumulator::finish`], which is observationally identical (the
/// buffered fold computes exactly `unit(x₁) ⊕ … ⊕ unit(xₙ)`) but linear
/// (up to the final sort). Primitive monoids fold directly.
#[derive(Debug)]
pub enum Accumulator {
    /// list/bag/set/sorted/sortedbag: buffer, canonicalize at the end.
    Buffered { monoid: Monoid, items: Vec<Value> },
    /// oset: ordered insert-if-absent (the `∪̇` fold), with a search index.
    OSet { items: Vec<Value>, seen: std::collections::BTreeSet<Value> },
    Str(String),
    Prim { monoid: Monoid, acc: Value },
}

impl Accumulator {
    pub fn new(monoid: &Monoid) -> EvalResult<Accumulator> {
        Ok(match monoid {
            Monoid::List | Monoid::Bag | Monoid::Set | Monoid::Sorted | Monoid::SortedBag => {
                Accumulator::Buffered { monoid: monoid.clone(), items: Vec::new() }
            }
            Monoid::OSet => Accumulator::OSet {
                items: Vec::new(),
                seen: std::collections::BTreeSet::new(),
            },
            Monoid::Str => Accumulator::Str(String::new()),
            Monoid::Sum | Monoid::Prod | Monoid::Max | Monoid::Min | Monoid::Some
            | Monoid::All => Accumulator::Prim { monoid: monoid.clone(), acc: zero(monoid)? },
            Monoid::VecOf(_) => {
                return Err(EvalError::Other(
                    "vector comprehensions accumulate through indexed slots".into(),
                ))
            }
        })
    }

    /// Fold in `unit(head)`.
    pub fn push_unit(&mut self, head: Value) -> EvalResult<()> {
        match self {
            Accumulator::Buffered { items, .. } => items.push(head),
            Accumulator::OSet { items, seen } => {
                if seen.insert(head.clone()) {
                    items.push(head);
                }
            }
            Accumulator::Str(s) => match head {
                Value::Str(piece) => s.push_str(&piece),
                other => {
                    return Err(EvalError::TypeMismatch {
                        op: "unit_string",
                        detail: format!("expected string, got {}", other.kind()),
                    })
                }
            },
            Accumulator::Prim { monoid, acc } => {
                if prim_fold_fast(monoid, acc, &head)? {
                    return Ok(());
                }
                let u = unit(monoid, head)?;
                *acc = merge(monoid, acc, &u)?;
            }
        }
        Ok(())
    }

    /// Fold in a whole monoid value (the homomorphism fold).
    pub fn merge_value(&mut self, v: Value) -> EvalResult<()> {
        match self {
            Accumulator::Buffered { items, .. } => items.extend(v.elements()?),
            Accumulator::OSet { items, seen } => {
                for e in v.elements()? {
                    if seen.insert(e.clone()) {
                        items.push(e);
                    }
                }
            }
            Accumulator::Str(s) => match v {
                Value::Str(piece) => s.push_str(&piece),
                other => {
                    return Err(EvalError::TypeMismatch {
                        op: "merge_string",
                        detail: format!("expected string, got {}", other.kind()),
                    })
                }
            },
            Accumulator::Prim { monoid, acc } => {
                *acc = merge(monoid, acc, &v)?;
            }
        }
        Ok(())
    }

    /// `some`/`all` have reached their absorbing element.
    pub fn absorbed(&self) -> bool {
        matches!(
            self,
            Accumulator::Prim { monoid: Monoid::Some, acc: Value::Bool(true) }
                | Accumulator::Prim { monoid: Monoid::All, acc: Value::Bool(false) }
        )
    }

    /// Canonicalize into the final monoid value.
    pub fn finish(self) -> EvalResult<Value> {
        Ok(match self {
            Accumulator::Buffered { monoid, mut items } => match monoid {
                Monoid::List => Value::list(items),
                Monoid::Bag => Value::bag_from(items),
                Monoid::Set => Value::set_from(items),
                Monoid::Sorted => {
                    items.sort();
                    items.dedup();
                    Value::list(items)
                }
                Monoid::SortedBag => {
                    items.sort();
                    Value::list(items)
                }
                _ => unreachable!("constructor restricts the monoid"),
            },
            Accumulator::OSet { items, .. } => Value::list(items),
            Accumulator::Str(s) => Value::str(&s),
            Accumulator::Prim { acc, .. } => acc,
        })
    }
}

/// Deterministic coercions (documented escape hatches outside the calculus;
/// see `UnOp::{ToBag, ToList, ToSet}`).
pub fn coerce_to_list(v: &Value) -> EvalResult<Value> {
    Ok(Value::list(v.elements()?))
}
pub fn coerce_to_bag(v: &Value) -> EvalResult<Value> {
    Ok(Value::bag_from(v.elements()?))
}
pub fn coerce_to_set(v: &Value) -> EvalResult<Value> {
    Ok(Value::set_from(v.elements()?))
}

/// Shift every object identity at or above `base` up by `offset`,
/// recursively through containers and captured closure environments.
///
/// This is the heap-reconciliation primitive for parallel execution: a
/// worker that cloned the shared heap at `len() == base` allocates OIDs
/// `base, base+1, …`; when its new states are appended to the shared heap
/// after `offset` states from earlier partitions, every reference the
/// worker created must shift by the same amount. The shift is monotone
/// (identities below `base` are untouched, those above move up together),
/// so the canonical sort order of sets and bags containing objects is
/// preserved.
pub fn remap_oids(v: &Value, base: u64, offset: u64) -> Value {
    if offset == 0 {
        return v.clone();
    }
    let map = |x: &Value| remap_oids(x, base, offset);
    match v {
        Value::Obj(Oid(o)) if *o >= base => Value::Obj(Oid(o + offset)),
        Value::Null
        | Value::Bool(_)
        | Value::Int(_)
        | Value::Float(_)
        | Value::Str(_)
        | Value::Obj(_) => v.clone(),
        Value::Record(fields) => Value::Record(Arc::new(
            fields.iter().map(|(n, x)| (*n, map(x))).collect(),
        )),
        Value::Tuple(items) => Value::Tuple(Arc::new(items.iter().map(map).collect())),
        Value::List(items) => Value::List(Arc::new(items.iter().map(map).collect())),
        // Monotone shift: canonical order survives element-wise mapping.
        Value::Set(items) => Value::Set(Arc::new(items.iter().map(map).collect())),
        Value::Bag(runs) => Value::Bag(Arc::new(
            runs.iter().map(|(x, n)| (map(x), *n)).collect(),
        )),
        Value::Vector(items) => Value::Vector(Arc::new(items.iter().map(map).collect())),
        Value::Closure(c) => {
            let mut bindings = Vec::new();
            let mut node = c.env.0.as_deref();
            while let Some(n) = node {
                bindings.push((n.name, map(&n.value)));
                node = n.rest.0.as_deref();
            }
            // Rebuild innermost-last so shadowing order is preserved.
            bindings.reverse();
            Value::Closure(Arc::new(Closure {
                param: c.param,
                body: c.body.clone(),
                env: Env::from_bindings(bindings),
                id: c.id,
            }))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn remap_oids_shifts_only_the_new_range() {
        let v = Value::record_from(vec![
            ("old", Value::Obj(Oid(3))),
            ("new", Value::Obj(Oid(10))),
            (
                "nested",
                Value::set_from(vec![Value::Obj(Oid(10)), Value::Obj(Oid(12)), Value::Int(1)]),
            ),
        ]);
        let r = remap_oids(&v, 10, 5);
        assert_eq!(r.field(Symbol::new("old")), Some(&Value::Obj(Oid(3))));
        assert_eq!(r.field(Symbol::new("new")), Some(&Value::Obj(Oid(15))));
        assert_eq!(
            r.field(Symbol::new("nested")),
            Some(&Value::set_from(vec![
                Value::Obj(Oid(15)),
                Value::Obj(Oid(17)),
                Value::Int(1)
            ]))
        );
        // offset 0 is the identity.
        assert_eq!(remap_oids(&v, 10, 0), v);
    }

    #[test]
    fn set_is_canonical() {
        let a = Value::set_from(ints(&[3, 1, 2, 3, 1]));
        let b = Value::set_from(ints(&[1, 2, 3]));
        assert_eq!(a, b);
        assert_eq!(a.len().unwrap(), 3);
    }

    #[test]
    fn bag_counts_duplicates() {
        let b = Value::bag_from(ints(&[4, 5, 4]));
        assert_eq!(b.len().unwrap(), 3);
        assert_eq!(b.elements().unwrap(), ints(&[4, 4, 5]));
        // Bags with same multiset content are equal regardless of build order.
        assert_eq!(b, Value::bag_from(ints(&[5, 4, 4])));
        assert_ne!(b, Value::bag_from(ints(&[4, 5])));
    }

    /// The paper's oset example: [2,5,3,1] ∪̇ [3,2,6] = [2,5,3,1,6].
    #[test]
    fn paper_oset_merge() {
        let x = Value::list(ints(&[2, 5, 3, 1]));
        let y = Value::list(ints(&[3, 2, 6]));
        let r = merge(&Monoid::OSet, &x, &y).unwrap();
        assert_eq!(r, Value::list(ints(&[2, 5, 3, 1, 6])));
    }

    /// The paper's sum[4] example: merging (|0,1,2,0|) and (|3,0,2,1|)
    /// pointwise gives (|3,1,4,1|); unit sum[4](8,2) = (|0,0,8,0|).
    #[test]
    fn paper_vector_monoid_examples() {
        let m = Monoid::VecOf(Box::new(Monoid::Sum));
        let a = Value::vector(ints(&[0, 1, 2, 0]));
        let b = Value::vector(ints(&[3, 0, 2, 1]));
        assert_eq!(merge(&m, &a, &b).unwrap(), Value::vector(ints(&[3, 1, 4, 1])));
        assert_eq!(
            unit_vector(&Monoid::Sum, 4, Value::Int(8), 2).unwrap(),
            Value::vector(ints(&[0, 0, 8, 0]))
        );
        assert_eq!(zero_vector(&Monoid::Sum, 4).unwrap(), Value::vector(ints(&[0, 0, 0, 0])));
    }

    #[test]
    fn max_min_absorb_null_zero() {
        assert_eq!(merge(&Monoid::Max, &Value::Null, &Value::Int(3)).unwrap(), Value::Int(3));
        assert_eq!(merge(&Monoid::Min, &Value::Int(3), &Value::Null).unwrap(), Value::Int(3));
        assert_eq!(
            merge(&Monoid::Max, &Value::Int(3), &Value::Int(7)).unwrap(),
            Value::Int(7)
        );
    }

    #[test]
    fn string_monoid_concatenates() {
        let r = merge(&Monoid::Str, &Value::str("ab"), &Value::str("cd")).unwrap();
        assert_eq!(r, Value::str("abcd"));
        assert_eq!(zero(&Monoid::Str).unwrap(), Value::str(""));
    }

    #[test]
    fn sorted_merge_is_ci() {
        let x = Value::list(ints(&[1, 3, 5]));
        let y = Value::list(ints(&[1, 2, 5, 9]));
        let r = merge(&Monoid::Sorted, &x, &y).unwrap();
        assert_eq!(r, Value::list(ints(&[1, 2, 3, 5, 9])));
        // idempotence
        assert_eq!(merge(&Monoid::Sorted, &x, &x).unwrap(), x);
        // commutativity
        assert_eq!(merge(&Monoid::Sorted, &y, &x).unwrap(), r);
    }

    #[test]
    fn sortedbag_keeps_duplicates() {
        let x = Value::list(ints(&[1, 3]));
        let y = Value::list(ints(&[1, 2]));
        let r = merge(&Monoid::SortedBag, &x, &y).unwrap();
        assert_eq!(r, Value::list(ints(&[1, 1, 2, 3])));
    }

    #[test]
    fn numeric_coercion_int_float() {
        let r = merge(&Monoid::Sum, &Value::Int(1), &Value::Float(2.5)).unwrap();
        assert_eq!(r, Value::Float(3.5));
    }

    #[test]
    fn sum_overflow_is_an_error() {
        let r = merge(&Monoid::Sum, &Value::Int(i64::MAX), &Value::Int(1));
        assert!(matches!(r, Err(EvalError::Arithmetic(_))));
    }

    #[test]
    fn env_shadows_innermost() {
        let x = Symbol::new("x");
        let env = Env::empty().bind(x, Value::Int(1)).bind(x, Value::Int(2));
        assert_eq!(env.lookup(x), Some(&Value::Int(2)));
        assert_eq!(env.lookup(Symbol::new("nope")), None);
    }

    #[test]
    fn total_order_across_kinds_is_consistent() {
        let mut vals = vec![
            Value::str("a"),
            Value::Int(5),
            Value::Null,
            Value::Bool(true),
            Value::Float(2.5),
            Value::list(ints(&[1])),
        ];
        vals.sort();
        // Sorting twice gives the same order (total, antisymmetric).
        let again = {
            let mut v = vals.clone();
            v.sort();
            v
        };
        assert_eq!(vals, again);
        // Int/Float compare numerically.
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(2.5) < Value::Int(3));
        assert_eq!(Value::Int(2), Value::Float(2.0));
    }

    #[test]
    fn record_comparison_is_field_name_stable() {
        let a = Value::record_from(vec![("x", Value::Int(1)), ("y", Value::Int(2))]);
        let b = Value::record_from(vec![("y", Value::Int(2)), ("x", Value::Int(1))]);
        assert_eq!(a, b);
    }

    #[test]
    fn coercions_are_deterministic() {
        let s = Value::set_from(ints(&[3, 1, 2]));
        assert_eq!(coerce_to_list(&s).unwrap(), Value::list(ints(&[1, 2, 3])));
        let l = Value::list(ints(&[2, 1, 2]));
        assert_eq!(coerce_to_set(&l).unwrap(), Value::set_from(ints(&[1, 2])));
        assert_eq!(coerce_to_bag(&l).unwrap(), Value::bag_from(ints(&[1, 2, 2])));
    }

    #[test]
    fn scratch_row_reuses_nodes_across_fills() {
        let base = Env::empty().bind(Symbol::new("base"), Value::Int(0));
        let mut scratch = ScratchRow::new();
        let a = Symbol::new("a");
        let b = Symbol::new("b");
        let first = scratch.fill(&base, &[(a, Value::Int(1)), (b, Value::Int(2))]);
        assert_eq!(first.lookup(b), Some(&Value::Int(2)));
        assert_eq!(first.lookup(a), Some(&Value::Int(1)));
        assert_eq!(first.lookup(Symbol::new("base")), Some(&Value::Int(0)));
        let first_node = first.0.as_ref().map(Arc::as_ptr).unwrap();
        // Second fill with the same shape: values change, nodes don't.
        let second = scratch.fill(&base, &[(a, Value::Int(10)), (b, Value::Int(20))]);
        assert_eq!(second.lookup(b), Some(&Value::Int(20)));
        assert_eq!(second.lookup(a), Some(&Value::Int(10)));
        let second_node = second.0.as_ref().map(Arc::as_ptr).unwrap();
        assert_eq!(first_node, second_node, "chain nodes are reused in place");
    }

    #[test]
    fn scratch_row_rebuilds_when_a_consumer_retains_the_row() {
        let base = Env::empty();
        let mut scratch = ScratchRow::new();
        let x = Symbol::new("x");
        // A consumer (e.g. a captured closure environment) keeps the row
        // alive across fills; in-place mutation would corrupt it.
        let retained = scratch.fill(&base, &[(x, Value::Int(1))]).clone();
        let next = scratch.fill(&base, &[(x, Value::Int(2))]);
        assert_eq!(next.lookup(x), Some(&Value::Int(2)));
        assert_eq!(retained.lookup(x), Some(&Value::Int(1)), "retained row is untouched");
        // Shape changes (different binding count) also rebuild correctly.
        let y = Symbol::new("y");
        let wider = scratch.fill(&base, &[(x, Value::Int(3)), (y, Value::Int(4))]);
        assert_eq!(wider.lookup(x), Some(&Value::Int(3)));
        assert_eq!(wider.lookup(y), Some(&Value::Int(4)));
        let empty = scratch.fill(&base, &[]);
        assert_eq!(empty.lookup(x), None);
    }
}
