//! Interned identifiers.
//!
//! Every variable, record label, class name, and extent name in the calculus
//! is a [`Symbol`]: a small copyable handle into a global string interner.
//! Interning makes substitution, free-variable analysis, and normalization
//! cheap (symbol comparison is an integer comparison) — important because the
//! normalizer rewrites terms to a fixpoint.
//!
//! The interner also hands out *fresh* symbols (`Symbol::fresh`), which the
//! normalizer uses for capture-avoiding variable renaming (the paper's rules
//! 5 and 6 "may require some variable renaming to avoid name conflicts").

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, hash, and compare.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    names: Vec<&'static str>,
    table: HashMap<&'static str, u32>,
    fresh_counter: u64,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            table: HashMap::new(),
            fresh_counter: 0,
        })
    })
}

impl Symbol {
    /// Intern `name` and return its symbol. Idempotent.
    pub fn new(name: &str) -> Symbol {
        let mut i = interner().lock().unwrap();
        if let Some(&id) = i.table.get(name) {
            return Symbol(id);
        }
        let id = u32::try_from(i.names.len()).expect("interner overflow");
        // Leaking is fine: symbols live for the whole process and the set of
        // distinct names in any workload is small and bounded.
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        i.names.push(leaked);
        i.table.insert(leaked, id);
        Symbol(id)
    }

    /// A fresh symbol guaranteed distinct from every symbol produced so far,
    /// based on `hint` for readability (e.g. `x` becomes `x%3`).
    ///
    /// `%` cannot appear in parsed identifiers, so fresh names can never
    /// collide with source-level names.
    pub fn fresh(hint: &str) -> Symbol {
        let n = {
            let mut i = interner().lock().unwrap();
            i.fresh_counter += 1;
            i.fresh_counter
        };
        let base = hint.split('%').next().unwrap_or(hint);
        Symbol::new(&format!("{base}%{n}"))
    }

    /// The interned string.
    pub fn as_str(&self) -> &'static str {
        interner().lock().unwrap().names[self.0 as usize]
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::new(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::new(&s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let a = Symbol::new("hello");
        let b = Symbol::new("hello");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "hello");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        assert_ne!(Symbol::new("a"), Symbol::new("b"));
    }

    #[test]
    fn fresh_symbols_are_unique() {
        let a = Symbol::fresh("x");
        let b = Symbol::fresh("x");
        assert_ne!(a, b);
        assert!(a.as_str().starts_with("x%"));
    }

    #[test]
    fn fresh_from_fresh_does_not_stack_suffixes() {
        let a = Symbol::fresh("v");
        let b = Symbol::fresh(a.as_str());
        // `v%1` refreshed gives `v%k`, not `v%1%k`.
        assert_eq!(b.as_str().matches('%').count(), 1);
    }

    #[test]
    fn display_matches_name() {
        let s = Symbol::new("city");
        assert_eq!(format!("{s}"), "city");
        assert_eq!(format!("{s:?}"), "city");
    }
}
