//! Process-wide metrics: counters, gauges, and log-bucketed latency
//! histograms, exported as Prometheus text format or [`Json`].
//!
//! PR 1 made a *single* query observable (`EXPLAIN ANALYZE`); this module
//! makes the *fleet* observable — cumulative counters, latency
//! distributions, and per-rule normalization accounting across every
//! query a process runs. The design is dependency-free and mirrors the
//! usual client-library shape:
//!
//! * a [`Registry`] owns named series; registration takes a lock, but
//!   the returned [`Counter`]/[`Gauge`]/[`Histogram`] handles are
//!   `Arc`-shared atomics, so the hot path is a single
//!   `fetch_add(Relaxed)` — cache the handle in a `OnceLock` and never
//!   touch the lock again;
//! * series are identified by a metric name plus ordered labels
//!   (`normalize_rule_fired_total{rule="beta"}`), one series per label
//!   combination;
//! * [`Histogram`]s are log₂-bucketed: bucket *i* counts observations
//!   `v ≤ 2^i` (the last bucket is +∞), which spans 1 ns to ~4.6 s in
//!   63 buckets with ≤ 2× relative error — plenty for latency work.
//!   [`HistogramSnapshot::quantile`] reads p50/p95/p99 back out;
//! * [`Registry::snapshot`] captures a consistent-enough point-in-time
//!   view; [`Snapshot::diff`] subtracts an earlier snapshot so tests
//!   and the bench harness can meter a *known workload* without caring
//!   what ran before;
//! * [`Snapshot::to_prometheus`] renders text exposition format
//!   (validated by [`validate_prometheus_text`]) and
//!   [`Snapshot::to_json`] renders through the repo's own [`Json`].
//!
//! The process-wide registry is [`global()`]. Instrumented layers
//! (store, normalizer, executor probes, the umbrella OQL path) all feed
//! it; nothing is recorded on paths that opt out (the `NoProbe`
//! executor stays zero-cost).

use crate::json::{escape_into, Json};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: bucket `i < 63` counts observations
/// `≤ 2^i`; bucket 63 is the +∞ overflow.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (heap sizes, pool occupancy).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A log₂-bucketed histogram of `u64` observations (typically
/// nanoseconds). Recording is lock-free: one bucket increment plus
/// count/sum updates.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// The bucket an observation lands in: the smallest `i` with `v ≤ 2^i`
/// (so a value exactly on a power of two lands in *its own* bucket, not
/// the next one up), clamped to the +∞ bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v <= 1 {
        0
    } else {
        (64 - (v - 1).leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// The inclusive upper bound of bucket `i` (`None` for the +∞ bucket).
pub fn bucket_bound(i: usize) -> Option<u64> {
    if i < HISTOGRAM_BUCKETS - 1 {
        Some(1u64 << i)
    } else {
        None
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    #[inline]
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Observe a nanosecond duration held as `u128` (the type
    /// `Instant::elapsed().as_nanos()` returns), saturating.
    #[inline]
    pub fn observe_nanos(&self, nanos: u128) {
        self.observe(u64::try_from(nanos).unwrap_or(u64::MAX));
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// One registered series: a metric name plus its ordered labels.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A registry of named metric series. Cheap to share (`Arc` the handles,
/// not the registry); all recording is atomic.
#[derive(Debug, Default)]
pub struct Registry {
    series: Mutex<BTreeMap<SeriesKey, Metric>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    SeriesKey {
        name: name.to_string(),
        labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
    }
}

impl Registry {
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the label-less counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Get or register a counter series. Panics if `name`+`labels` is
    /// already registered as a different metric type — that is a
    /// programming error, not a runtime condition.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        let mut series = self.series.lock().unwrap();
        match series
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            other => panic!("`{name}` is registered as a {}", other.kind()),
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        let mut series = self.series.lock().unwrap();
        match series
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            other => panic!("`{name}` is registered as a {}", other.kind()),
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        let mut series = self.series.lock().unwrap();
        match series
            .entry(key(name, labels))
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            other => panic!("`{name}` is registered as a {}", other.kind()),
        }
    }

    /// A point-in-time view of every registered series. Each series is
    /// read atomically; the snapshot as a whole is not a transaction,
    /// which is the usual (and sufficient) exporter guarantee.
    pub fn snapshot(&self) -> Snapshot {
        let series = self.series.lock().unwrap();
        Snapshot {
            series: series
                .iter()
                .map(|(k, m)| SeriesSnapshot {
                    key: k.clone(),
                    value: match m {
                        Metric::Counter(c) => MetricValue::Counter(c.get()),
                        Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                        Metric::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                    },
                })
                .collect(),
        }
    }
}

/// The process-wide registry every instrumented layer records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

// ---------------------------------------------------------------------------
// Snapshots.
// ---------------------------------------------------------------------------

/// Frozen value of one series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(HistogramSnapshot),
}

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (*not* cumulative), length
    /// [`HISTOGRAM_BUCKETS`].
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`) read from the buckets: the
    /// rank-`⌈q·count⌉` observation, linearly interpolated inside the
    /// bucket that holds it (observations are assumed uniform across a
    /// bucket's `(lower, upper]` range, so uniform data recovers exact
    /// quantiles; skewed data is off by at most the bucket width).
    /// `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            let before = seen;
            seen += n;
            if seen >= rank {
                // The +∞ bucket has no bound; the mean of what landed
                // there is the best point estimate we can give.
                let Some(upper) = bucket_bound(i) else {
                    return Some(self.sum.checked_div(self.count).unwrap_or(u64::MAX));
                };
                let lower = if i == 0 { 0 } else { bucket_bound(i - 1).unwrap_or(0) };
                let into = (rank - before) as f64 / *n as f64;
                return Some((lower as f64 + (upper - lower) as f64 * into).round() as u64);
            }
        }
        None
    }

    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> Option<u64> {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }
}

/// One series in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeriesSnapshot {
    pub key: SeriesKey,
    pub value: MetricValue,
}

/// A frozen view of a [`Registry`], ordered by series key.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    pub series: Vec<SeriesSnapshot>,
}

impl Snapshot {
    /// Look up a series by name and labels.
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricValue> {
        let k = key(name, labels);
        self.series.iter().find(|s| s.key == k).map(|s| &s.value)
    }

    /// Counter value (0 when absent — counters that never fired are
    /// simply unregistered).
    pub fn counter(&self, name: &str) -> u64 {
        self.counter_with(name, &[])
    }

    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.get(name, labels) {
            Some(MetricValue::Counter(n)) => *n,
            _ => 0,
        }
    }

    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name, &[]) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Option<&HistogramSnapshot> {
        match self.get(name, labels) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }

    /// `self − earlier`: what a workload between two snapshots did.
    /// Counters and histogram buckets subtract (saturating, so a series
    /// born after `earlier` passes through unchanged); gauges keep
    /// their current value — a gauge is a level, not a flow.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let before: BTreeMap<&SeriesKey, &MetricValue> =
            earlier.series.iter().map(|s| (&s.key, &s.value)).collect();
        Snapshot {
            series: self
                .series
                .iter()
                .map(|s| {
                    let value = match (&s.value, before.get(&s.key)) {
                        (MetricValue::Counter(now), Some(MetricValue::Counter(then))) => {
                            MetricValue::Counter(now.saturating_sub(*then))
                        }
                        (MetricValue::Histogram(now), Some(MetricValue::Histogram(then))) => {
                            MetricValue::Histogram(HistogramSnapshot {
                                buckets: now
                                    .buckets
                                    .iter()
                                    .zip(&then.buckets)
                                    .map(|(a, b)| a.saturating_sub(*b))
                                    .collect(),
                                count: now.count.saturating_sub(then.count),
                                sum: now.sum.saturating_sub(then.sum),
                            })
                        }
                        (v, _) => v.clone(),
                    };
                    SeriesSnapshot { key: s.key.clone(), value }
                })
                .collect(),
        }
    }

    /// Render in Prometheus text exposition format. Histograms emit
    /// cumulative `_bucket{le=…}` series plus `_sum` and `_count`;
    /// label values are escaped with the same helper the JSON writer
    /// uses ([`crate::json::escape_into`]).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut typed: BTreeMap<&str, &'static str> = BTreeMap::new();
        for s in &self.series {
            let kind = match &s.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            // One TYPE line per metric name, before its first sample.
            if typed.insert(&s.key.name, kind).is_none() {
                out.push_str("# TYPE ");
                out.push_str(&s.key.name);
                out.push(' ');
                out.push_str(kind);
                out.push('\n');
            }
            match &s.value {
                MetricValue::Counter(n) => {
                    write_sample(&mut out, &s.key.name, &s.key.labels, None, &n.to_string());
                }
                MetricValue::Gauge(v) => {
                    write_sample(&mut out, &s.key.name, &s.key.labels, None, &v.to_string());
                }
                MetricValue::Histogram(h) => {
                    let bucket_name = format!("{}_bucket", s.key.name);
                    let mut cumulative = 0u64;
                    for (i, n) in h.buckets.iter().enumerate() {
                        cumulative += n;
                        // Keep the exposition readable: skip empty
                        // buckets below the first and past the last
                        // observation. Cumulative counts are unaffected,
                        // and the +∞ bucket (i = 63) is always emitted.
                        if *n == 0
                            && (cumulative == 0 || cumulative == h.count)
                            && i < HISTOGRAM_BUCKETS - 1
                        {
                            continue;
                        }
                        let le = match bucket_bound(i) {
                            Some(b) => b.to_string(),
                            None => "+Inf".to_string(),
                        };
                        write_sample(
                            &mut out,
                            &bucket_name,
                            &s.key.labels,
                            Some(("le", &le)),
                            &cumulative.to_string(),
                        );
                    }
                    write_sample(
                        &mut out,
                        &format!("{}_sum", s.key.name),
                        &s.key.labels,
                        None,
                        &h.sum.to_string(),
                    );
                    write_sample(
                        &mut out,
                        &format!("{}_count", s.key.name),
                        &s.key.labels,
                        None,
                        &h.count.to_string(),
                    );
                }
            }
        }
        out
    }

    /// Render as a JSON document: one object per series with `name`,
    /// `labels`, `type`, and the value (histograms carry count/sum,
    /// p50/p95/p99, and the non-empty buckets).
    pub fn to_json(&self) -> Json {
        Json::Arr(
            self.series
                .iter()
                .map(|s| {
                    let labels = Json::Obj(
                        s.key
                            .labels
                            .iter()
                            .map(|(k, v)| (k.clone(), Json::str(v.clone())))
                            .collect(),
                    );
                    let mut fields = vec![
                        ("name", Json::str(s.key.name.clone())),
                        ("labels", labels),
                    ];
                    match &s.value {
                        MetricValue::Counter(n) => {
                            fields.push(("type", Json::str("counter")));
                            fields.push(("value", Json::from(*n)));
                        }
                        MetricValue::Gauge(v) => {
                            fields.push(("type", Json::str("gauge")));
                            fields.push(("value", Json::Int(*v)));
                        }
                        MetricValue::Histogram(h) => {
                            fields.push(("type", Json::str("histogram")));
                            fields.push(("count", Json::from(h.count)));
                            fields.push(("sum", Json::from(h.sum)));
                            fields.push(("p50", opt_u64(h.p50())));
                            fields.push(("p95", opt_u64(h.p95())));
                            fields.push(("p99", opt_u64(h.p99())));
                            fields.push((
                                "buckets",
                                Json::Arr(
                                    h.buckets
                                        .iter()
                                        .enumerate()
                                        .filter(|(_, n)| **n > 0)
                                        .map(|(i, n)| {
                                            Json::obj(vec![
                                                (
                                                    "le",
                                                    match bucket_bound(i) {
                                                        Some(b) => Json::from(b),
                                                        None => Json::str("+Inf"),
                                                    },
                                                ),
                                                ("count", Json::from(*n)),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ));
                        }
                    }
                    Json::obj(fields)
                })
                .collect(),
        )
    }
}

fn opt_u64(v: Option<u64>) -> Json {
    v.map(Json::from).unwrap_or(Json::Null)
}

/// One `name{labels} value` exposition line. `extra` appends a label
/// (histogram `le`) after the series' own labels.
fn write_sample(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    extra: Option<(&str, &str)>,
    value: &str,
) {
    out.push_str(name);
    let extra_iter = extra.iter().map(|(k, v)| (*k, *v));
    let mut all = labels.iter().map(|(k, v)| (k.as_str(), v.as_str())).chain(extra_iter).peekable();
    if all.peek().is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in all {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            escape_into(out, v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

// ---------------------------------------------------------------------------
// Prometheus text-format validation (for tests and the bench harness).
// ---------------------------------------------------------------------------

/// Check that `text` is well-formed Prometheus text exposition format:
/// every line is a comment (`# HELP`/`# TYPE`), blank, or a sample
/// `name{label="value",…} value`, with legal metric/label identifiers,
/// properly quoted-and-escaped label values, and a numeric sample value
/// (`+Inf`/`-Inf`/`NaN` allowed). Returns the first offending line.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    for (lineno, line) in text.lines().enumerate() {
        validate_line(line).map_err(|e| format!("line {}: {e}: `{line}`", lineno + 1))?;
    }
    Ok(())
}

fn validate_line(line: &str) -> Result<(), String> {
    if line.is_empty() {
        return Ok(());
    }
    if let Some(rest) = line.strip_prefix('#') {
        let rest = rest.trim_start();
        if rest.starts_with("TYPE ") {
            let mut parts = rest.split_whitespace();
            parts.next(); // TYPE
            let name = parts.next().ok_or("TYPE without metric name")?;
            validate_name(name)?;
            let kind = parts.next().ok_or("TYPE without kind")?;
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("unknown metric type `{kind}`"));
            }
        }
        // HELP and free comments are unconstrained.
        return Ok(());
    }
    let bytes = line.as_bytes();
    let name_end = bytes
        .iter()
        .position(|&b| b == b'{' || b == b' ')
        .ok_or("sample line without value")?;
    validate_name(&line[..name_end])?;
    let mut rest = &line[name_end..];
    if let Some(after_brace) = rest.strip_prefix('{') {
        rest = validate_labels(after_brace)?;
    }
    let value = rest.trim_start();
    if value.is_empty() {
        return Err("missing sample value".into());
    }
    // Value (and optional timestamp).
    let mut parts = value.split_whitespace();
    let v = parts.next().unwrap();
    if !matches!(v, "+Inf" | "-Inf" | "NaN") && v.parse::<f64>().is_err() {
        return Err(format!("non-numeric sample value `{v}`"));
    }
    if let Some(ts) = parts.next() {
        if ts.parse::<i64>().is_err() {
            return Err(format!("non-integer timestamp `{ts}`"));
        }
    }
    if parts.next().is_some() {
        return Err("trailing tokens after timestamp".into());
    }
    Ok(())
}

fn validate_name(name: &str) -> Result<(), String> {
    let mut chars = name.chars();
    let ok_first = |c: char| c.is_ascii_alphabetic() || c == '_' || c == ':';
    match chars.next() {
        Some(c) if ok_first(c) => {}
        _ => return Err(format!("bad metric name `{name}`")),
    }
    if chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':') {
        Ok(())
    } else {
        Err(format!("bad metric name `{name}`"))
    }
}

/// Validate `label="value",…}` (the part after `{`); returns what
/// follows the closing brace.
fn validate_labels(mut rest: &str) -> Result<&str, String> {
    loop {
        if let Some(after) = rest.strip_prefix('}') {
            return Ok(after);
        }
        let eq = rest.find('=').ok_or("label without `=`")?;
        let label = &rest[..eq];
        if label.is_empty()
            || !label.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_')
            || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            return Err(format!("bad label name `{label}`"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or("label value not quoted")?;
        // Scan the quoted value, honoring backslash escapes.
        let mut chars = rest.char_indices();
        let close = loop {
            match chars.next() {
                None => return Err("unterminated label value".into()),
                Some((_, '\\')) => {
                    if chars.next().is_none() {
                        return Err("dangling escape in label value".into());
                    }
                }
                Some((i, '"')) => break i,
                Some(_) => {}
            }
        };
        rest = &rest[close + 1..];
        if let Some(after) = rest.strip_prefix(',') {
            rest = after;
        } else if !rest.starts_with('}') {
            return Err("expected `,` or `}` after label value".into());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let r = Registry::new();
        let c = r.counter("requests_total");
        c.inc();
        c.add(4);
        let g = r.gauge("pool_size");
        g.set(7);
        g.add(-2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("requests_total"), 5);
        assert_eq!(snap.gauge("pool_size"), Some(5));
        // Handles are shared: a second lookup hits the same atomic.
        r.counter("requests_total").inc();
        assert_eq!(r.snapshot().counter("requests_total"), 6);
    }

    #[test]
    fn labeled_series_are_distinct() {
        let r = Registry::new();
        r.counter_with("rule_fired", &[("rule", "beta")]).add(3);
        r.counter_with("rule_fired", &[("rule", "proj")]).add(1);
        let snap = r.snapshot();
        assert_eq!(snap.counter_with("rule_fired", &[("rule", "beta")]), 3);
        assert_eq!(snap.counter_with("rule_fired", &[("rule", "proj")]), 1);
        assert_eq!(snap.counter_with("rule_fired", &[("rule", "other")]), 0);
    }

    #[test]
    #[should_panic(expected = "registered as a counter")]
    fn type_confusion_panics() {
        let r = Registry::new();
        r.counter("x").inc();
        let _ = r.gauge("x");
    }

    #[test]
    fn histogram_bucket_boundaries_on_powers_of_two() {
        // A value exactly 2^k lands in the bucket whose inclusive upper
        // bound is 2^k — not the next one up.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        for k in 0..63u32 {
            let v = 1u64 << k;
            let i = bucket_index(v);
            assert_eq!(
                bucket_bound(i),
                Some(v),
                "2^{k} must land in the bucket bounded by itself"
            );
            if v > 1 {
                assert_eq!(bucket_index(v + 1), i + 1, "2^{k}+1 spills to the next bucket");
            }
        }
        // Everything past 2^62 lands in +Inf.
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_bound(HISTOGRAM_BUCKETS - 1), None);
    }

    #[test]
    fn histogram_quantiles() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        // Uniform data across whole buckets interpolates to the exact
        // quantile (1..=64 fill their buckets completely).
        assert_eq!(s.p50(), Some(50), "interpolated p50 of 1..=100 is exact");
        // 65..=100 only part-fills the (64, 128] bucket, so tail
        // quantiles interpolate over the full bucket range — still
        // within the bucket, never past its bound.
        let p95 = s.p95().unwrap();
        assert!((95..=128).contains(&p95), "p95 = {p95}");
        let p99 = s.p99().unwrap();
        assert!((p95..=128).contains(&p99), "p99 = {p99}");
        assert!(Histogram::default().snapshot().p50().is_none());
    }

    #[test]
    fn quantiles_interpolate_within_a_bucket() {
        // 512 values uniformly filling the (512, 1024] bucket. Before
        // interpolation every quantile snapped to the bucket bound 1024,
        // overstating the median by 2×; now each rank lands on its exact
        // value.
        let h = Histogram::default();
        for v in 513..=1024u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.quantile(0.5), Some(768), "exact p50 of 513..=1024");
        assert_eq!(s.quantile(1.0), Some(1024), "max rank still hits the bound");
        // The smallest rank interpolates just past the lower bound.
        let p_min = s.quantile(0.001).unwrap();
        assert!((513..=514).contains(&p_min), "p0.1 = {p_min}");
        // Monotone in q.
        let qs: Vec<u64> =
            [0.1, 0.25, 0.5, 0.75, 0.9, 0.99].iter().map(|&q| s.quantile(q).unwrap()).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
    }

    #[test]
    fn snapshot_diff_subtracts_counters_and_keeps_gauges() {
        let r = Registry::new();
        r.counter("c").add(10);
        r.gauge("g").set(3);
        r.histogram("h").observe(5);
        let before = r.snapshot();
        r.counter("c").add(7);
        r.gauge("g").set(9);
        r.histogram("h").observe(5);
        r.histogram("h").observe(4096);
        r.counter_with("born_later", &[]).inc();
        let d = r.snapshot().diff(&before);
        assert_eq!(d.counter("c"), 7);
        assert_eq!(d.gauge("g"), Some(9), "gauges are levels, not flows");
        let h = d.histogram_with("h", &[]).unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 5 + 4096);
        assert_eq!(d.counter("born_later"), 1, "new series pass through");
    }

    #[test]
    fn empty_registry_exports_cleanly() {
        let r = Registry::new();
        let snap = r.snapshot();
        let text = snap.to_prometheus();
        assert_eq!(text, "");
        validate_prometheus_text(&text).unwrap();
        assert_eq!(snap.to_json().render(), "[]");
    }

    #[test]
    fn prometheus_export_is_valid_and_escaped() {
        let r = Registry::new();
        r.counter_with("ops_total", &[("label", "tricky \"quote\" \\slash\nnewline")])
            .add(2);
        r.gauge("level").set(-4);
        r.histogram_with("latency_nanos", &[("phase", "parse")]).observe(1000);
        let text = r.snapshot().to_prometheus();
        validate_prometheus_text(&text).unwrap();
        assert!(text.contains("# TYPE ops_total counter"), "{text}");
        assert!(text.contains(r#"label="tricky \"quote\" \\slash\nnewline""#), "{text}");
        assert!(text.contains("latency_nanos_bucket{phase=\"parse\",le=\"1024\"} 1"), "{text}");
        assert!(text.contains("latency_nanos_bucket{phase=\"parse\",le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("latency_nanos_sum{phase=\"parse\"} 1000"), "{text}");
        assert!(text.contains("latency_nanos_count{phase=\"parse\"} 1"), "{text}");
        assert!(text.contains("level -4"), "{text}");
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        for bad in [
            "1bad_name 3",
            "name{unclosed=\"x\" 3",
            "name{bad-label=\"x\"} 3",
            "name{l=\"v\"} not-a-number",
            "name{l=unquoted} 3",
            "no_value",
        ] {
            assert!(
                validate_prometheus_text(bad).is_err(),
                "`{bad}` should be rejected"
            );
        }
        validate_prometheus_text("ok_name{l=\"v\"} 3 1234567\nplain 1.5\nx +Inf\n").unwrap();
    }

    #[test]
    fn json_export_carries_quantiles() {
        let r = Registry::new();
        let h = r.histogram("lat");
        for v in [10u64, 20, 30, 4000] {
            h.observe(v);
        }
        let json = r.snapshot().to_json().render();
        assert!(json.contains("\"p50\""), "{json}");
        assert!(json.contains("\"p95\""), "{json}");
        assert!(json.contains("\"buckets\""), "{json}");
    }

    #[test]
    fn concurrent_recording_is_consistent() {
        let r = Arc::new(Registry::new());
        let mut handles = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                let c = r.counter("shared");
                let h = r.histogram("hist");
                for i in 0..1000u64 {
                    c.inc();
                    h.observe(i);
                }
            }));
        }
        for t in handles {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.counter("shared"), 4000);
        assert_eq!(snap.histogram_with("hist", &[]).unwrap().count, 4000);
    }

    #[test]
    fn histogram_extreme_observations() {
        let h = Histogram::default();
        h.observe(0);
        h.observe(u64::MAX);
        let snap = h.snapshot();
        assert_eq!(snap.count, 2);
        // Sum saturates the atomic add naturally: 0 + u64::MAX.
        assert_eq!(snap.sum, u64::MAX);
        assert_eq!(snap.buckets[0], 1, "0 lands in the first bucket");
        assert_eq!(
            snap.buckets[HISTOGRAM_BUCKETS - 1],
            1,
            "u64::MAX lands in the +Inf bucket"
        );
        // p50 is the first bucket's bound; p99 falls in +Inf, whose
        // point estimate is the mean of everything observed.
        assert_eq!(snap.quantile(0.5), Some(1));
        assert_eq!(snap.quantile(0.99), Some(snap.sum / snap.count));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let snap = Histogram::default().snapshot();
        assert_eq!(snap.count, 0);
        assert_eq!(snap.quantile(0.0), None);
        assert_eq!(snap.p50(), None);
        assert_eq!(snap.p95(), None);
        assert_eq!(snap.p99(), None);
    }

    #[test]
    fn diff_of_identical_registries_is_all_zero() {
        let r = Registry::new();
        r.counter("c").add(5);
        r.gauge("g").set(3);
        r.histogram("h").observe(100);
        let a = r.snapshot();
        let b = r.snapshot();
        let d = b.diff(&a);
        // Same series set, every flow zeroed; the gauge keeps its level.
        assert_eq!(d.series.len(), b.series.len());
        assert_eq!(d.counter("c"), 0);
        assert_eq!(d.gauge("g"), Some(3));
        let h = d.histogram_with("h", &[]).unwrap();
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0);
        assert!(h.buckets.iter().all(|&n| n == 0));
        // And a diff of two truly empty registries is empty outright.
        let empty = Registry::new();
        let e = empty.snapshot().diff(&empty.snapshot());
        assert!(e.series.is_empty());
    }
}
