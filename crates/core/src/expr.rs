//! The abstract syntax of the monoid comprehension calculus.
//!
//! The term language (paper §2.4) is:
//!
//! ```text
//! e ::= c | v | e.A | ⟨A1=e1,…⟩ | (e1,…,en) | e1 op e2 | if e1 then e2 else e3
//!     | λv. e | e1 e2 | let v = e1 in e2
//!     | zero_M | unit_M(e) | e1 ⊕_M e2
//!     | hom[→M](λv. e)(u)                    -- monoid homomorphism
//!     | M{ e | q1, …, qn }                   -- monoid comprehension
//!     | M[e_n]{ e_v [ e_i ] | q1, …, qn }    -- vector comprehension (§4.1)
//!     | x[i]                                 -- vector indexing
//!     | new(e) | !e | e1 := e2               -- identity & updates (§4.2)
//! q ::= v ← e                                -- generator
//!     | a[i] ← e                             -- vector generator (§4.1)
//!     | v ≡ e                                -- binding
//!     | e                                    -- filter predicate
//! ```
//!
//! The comprehension `M{ e | q̄ }` reduces to nested homomorphisms
//! (paper §2.4):
//!
//! ```text
//! M{ e | }          =  unit_M(e)          (collection M)    /   e   (primitive M)
//! M{ e | v ← u, q̄ } =  hom[N→M](λv. M{ e | q̄ })(u)    where N is inferred from u
//! M{ e | p, q̄ }     =  if p then M{ e | q̄ } else zero_M
//! M{ e | v ≡ u, q̄ } =  M{ e | q̄ }[u/v]
//! ```

use crate::monoid::Monoid;
use crate::symbol::Symbol;
use std::fmt;
use std::sync::Arc;

/// Scalar literals.
#[derive(Debug, Clone, PartialEq)]
pub enum Literal {
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(Arc<str>),
    /// OQL `nil`; also the zero of `max`/`min`.
    Null,
}

impl fmt::Display for Literal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Literal::Bool(b) => write!(f, "{b}"),
            Literal::Int(i) => write!(f, "{i}"),
            Literal::Float(x) => write!(f, "{x}"),
            Literal::Str(s) => write!(f, "{s:?}"),
            Literal::Null => write!(f, "null"),
        }
    }
}

/// Binary operators over scalars.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// OQL `like`: string pattern matching with `%` wildcards. The right
    /// operand is the pattern.
    Like,
}

impl BinOp {
    pub fn is_comparison(self) -> bool {
        matches!(self, BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge)
    }
    pub fn is_arith(self) -> bool {
        matches!(self, BinOp::Add | BinOp::Sub | BinOp::Mul | BinOp::Div | BinOp::Mod)
    }
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "≠",
            BinOp::Lt => "<",
            BinOp::Le => "≤",
            BinOp::Gt => ">",
            BinOp::Ge => "≥",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Like => "like",
        }
    }
}

/// Unary operators, including the documented escape-hatch coercions (which
/// are *not* homomorphisms; they are well-defined only because our sets and
/// bags are canonically ordered — see `value.rs`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Not,
    Neg,
    /// `element(e)`: the sole element of a singleton collection (OQL).
    Element,
    /// Deterministic coercion set/list/vector → bag.
    ToBag,
    /// Deterministic coercion set/bag/vector → list (canonical order).
    ToList,
    /// Deterministic coercion list/bag → set.
    ToSet,
    /// Length of a vector (`§4.1`).
    VecLen,
    /// Reverse a list or vector (used by `order by … desc` translation).
    Reverse,
    /// Is the value `null`?
    IsNull,
}

impl UnOp {
    pub fn name(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "-",
            UnOp::Element => "element",
            UnOp::ToBag => "to_bag",
            UnOp::ToList => "to_list",
            UnOp::ToSet => "to_set",
            UnOp::VecLen => "veclen",
            UnOp::Reverse => "reverse",
            UnOp::IsNull => "is_null",
        }
    }
}

/// A comprehension qualifier.
#[derive(Debug, Clone, PartialEq)]
pub enum Qual {
    /// Generator `v ← e`: `v` ranges over the collection `e`.
    Gen(Symbol, Expr),
    /// Vector generator `a[i] ← e` (§4.1): `a` ranges over the elements of
    /// the vector `e` with `i` bound to each element's index.
    VecGen { elem: Symbol, index: Symbol, source: Expr },
    /// Binding `v ≡ e` (the paper's variable-binding convention): `v` names
    /// the value of `e` in the rest of the comprehension.
    Bind(Symbol, Expr),
    /// Filter predicate.
    Pred(Expr),
}

/// A calculus expression. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    Lit(Literal),
    Var(Symbol),
    /// A late-bound query parameter `$name` (or `$1`): a leaf whose value
    /// is supplied at execution time by a prepared statement's bindings.
    /// It has no free variables, never rewrites, and type-checks as a
    /// fresh type variable resolved per call site.
    Param(Symbol),
    /// Record construction `⟨A1=e1, …⟩`. Field order is preserved for
    /// display but semantically irrelevant.
    Record(Vec<(Symbol, Expr)>),
    /// Tuple construction.
    Tuple(Vec<Expr>),
    /// Field projection `e.A`; auto-dereferences objects/class instances,
    /// so path expressions like `c.hotels` work as in OQL.
    Proj(Box<Expr>, Symbol),
    /// Positional projection `e.i` on tuples.
    TupleProj(Box<Expr>, usize),
    BinOp(BinOp, Box<Expr>, Box<Expr>),
    UnOp(UnOp, Box<Expr>),
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    Lambda(Symbol, Box<Expr>),
    Apply(Box<Expr>, Box<Expr>),
    Let(Symbol, Box<Expr>, Box<Expr>),
    /// `zero_M`.
    Zero(Monoid),
    /// `unit_M(e)`; for the vector monoid `M[n]` the operand is the pair
    /// `(value, index)` as in the paper's `unit sum[4](8, 2)`.
    Unit(Monoid, Box<Expr>),
    /// `e1 ⊕_M e2`.
    Merge(Monoid, Box<Expr>, Box<Expr>),
    /// Collection literal `[e1,…]` / `{e1,…}` / `{{e1,…}}` — sugar for
    /// `unit(e1) ⊕ … ⊕ unit(en)` kept as a node for readability.
    CollLit(Monoid, Vec<Expr>),
    /// Vector literal (a dense `M[n]` value).
    VecLit(Vec<Expr>),
    /// The monoid homomorphism `hom[→M](λ var. body)(source)`. The source
    /// monoid `N` is inferred from `source`'s type; legality requires
    /// `props(N) ⊆ props(M)`.
    Hom { monoid: Monoid, var: Symbol, body: Box<Expr>, source: Box<Expr> },
    /// The monoid comprehension `M{ head | quals }`.
    Comp { monoid: Monoid, head: Box<Expr>, quals: Vec<Qual> },
    /// The vector comprehension `M[size]{ value [ index ] | quals }` (§4.1):
    /// builds an `M[n]` value by merging `unit(value, index)` contributions
    /// pointwise with `M`.
    VecComp {
        elem_monoid: Monoid,
        size: Box<Expr>,
        value: Box<Expr>,
        index: Box<Expr>,
        quals: Vec<Qual>,
    },
    /// Vector indexing `x[i]`.
    VecIndex(Box<Expr>, Box<Expr>),
    /// `new(e)`: allocate an object with state `e`, returning its identity.
    New(Box<Expr>),
    /// `!e`: dereference an object.
    Deref(Box<Expr>),
    /// `e1 := e2`: update an object's state; evaluates to `true` so it can
    /// be used as a qualifier (paper §4.2).
    Assign(Box<Expr>, Box<Expr>),
}

#[allow(clippy::should_implement_trait)] // DSL builders mirror operator names
impl Expr {
    // ---- constructors (the embedded DSL used throughout tests/benches) ----

    pub fn int(i: i64) -> Expr {
        Expr::Lit(Literal::Int(i))
    }
    pub fn float(x: f64) -> Expr {
        Expr::Lit(Literal::Float(x))
    }
    pub fn bool(b: bool) -> Expr {
        Expr::Lit(Literal::Bool(b))
    }
    pub fn str(s: &str) -> Expr {
        Expr::Lit(Literal::Str(Arc::from(s)))
    }
    pub fn null() -> Expr {
        Expr::Lit(Literal::Null)
    }
    pub fn var(name: impl Into<Symbol>) -> Expr {
        Expr::Var(name.into())
    }
    /// A late-bound parameter `$name`.
    pub fn param(name: impl Into<Symbol>) -> Expr {
        Expr::Param(name.into())
    }
    pub fn proj(self, field: impl Into<Symbol>) -> Expr {
        Expr::Proj(Box::new(self), field.into())
    }
    pub fn tproj(self, index: usize) -> Expr {
        Expr::TupleProj(Box::new(self), index)
    }
    pub fn record(fields: Vec<(&str, Expr)>) -> Expr {
        Expr::Record(fields.into_iter().map(|(n, e)| (Symbol::new(n), e)).collect())
    }
    pub fn binop(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::BinOp(op, Box::new(lhs), Box::new(rhs))
    }
    pub fn eq(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Eq, self, rhs)
    }
    pub fn like(self, pattern: Expr) -> Expr {
        Expr::binop(BinOp::Like, self, pattern)
    }
    pub fn ne(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Ne, self, rhs)
    }
    pub fn lt(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Lt, self, rhs)
    }
    pub fn le(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Le, self, rhs)
    }
    pub fn gt(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Gt, self, rhs)
    }
    pub fn ge(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Ge, self, rhs)
    }
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Add, self, rhs)
    }
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Sub, self, rhs)
    }
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Mul, self, rhs)
    }
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Div, self, rhs)
    }
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::And, self, rhs)
    }
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::binop(BinOp::Or, self, rhs)
    }
    pub fn not(self) -> Expr {
        Expr::UnOp(UnOp::Not, Box::new(self))
    }
    pub fn if_(cond: Expr, then: Expr, els: Expr) -> Expr {
        Expr::If(Box::new(cond), Box::new(then), Box::new(els))
    }
    pub fn lambda(param: impl Into<Symbol>, body: Expr) -> Expr {
        Expr::Lambda(param.into(), Box::new(body))
    }
    pub fn apply(self, arg: Expr) -> Expr {
        Expr::Apply(Box::new(self), Box::new(arg))
    }
    pub fn let_(v: impl Into<Symbol>, def: Expr, body: Expr) -> Expr {
        Expr::Let(v.into(), Box::new(def), Box::new(body))
    }
    pub fn unit(monoid: Monoid, e: Expr) -> Expr {
        Expr::Unit(monoid, Box::new(e))
    }
    pub fn merge(monoid: Monoid, a: Expr, b: Expr) -> Expr {
        Expr::Merge(monoid, Box::new(a), Box::new(b))
    }
    pub fn list_of(items: Vec<Expr>) -> Expr {
        Expr::CollLit(Monoid::List, items)
    }
    pub fn set_of(items: Vec<Expr>) -> Expr {
        Expr::CollLit(Monoid::Set, items)
    }
    pub fn bag_of(items: Vec<Expr>) -> Expr {
        Expr::CollLit(Monoid::Bag, items)
    }
    pub fn comp(monoid: Monoid, head: Expr, quals: Vec<Qual>) -> Expr {
        Expr::Comp { monoid, head: Box::new(head), quals }
    }
    pub fn hom(monoid: Monoid, var: impl Into<Symbol>, body: Expr, source: Expr) -> Expr {
        Expr::Hom { monoid, var: var.into(), body: Box::new(body), source: Box::new(source) }
    }
    pub fn vec_comp(
        elem_monoid: Monoid,
        size: Expr,
        value: Expr,
        index: Expr,
        quals: Vec<Qual>,
    ) -> Expr {
        Expr::VecComp {
            elem_monoid,
            size: Box::new(size),
            value: Box::new(value),
            index: Box::new(index),
            quals,
        }
    }
    pub fn vec_index(self, i: Expr) -> Expr {
        Expr::VecIndex(Box::new(self), Box::new(i))
    }
    pub fn new_obj(state: Expr) -> Expr {
        Expr::New(Box::new(state))
    }
    pub fn deref(self) -> Expr {
        Expr::Deref(Box::new(self))
    }
    pub fn assign(self, value: Expr) -> Expr {
        Expr::Assign(Box::new(self), Box::new(value))
    }

    /// Generator qualifier `v ← e`.
    pub fn gen(v: impl Into<Symbol>, e: Expr) -> Qual {
        Qual::Gen(v.into(), e)
    }
    /// Binding qualifier `v ≡ e`.
    pub fn bind(v: impl Into<Symbol>, e: Expr) -> Qual {
        Qual::Bind(v.into(), e)
    }
    /// Filter qualifier.
    pub fn pred(e: Expr) -> Qual {
        Qual::Pred(e)
    }
    /// Vector generator qualifier `a[i] ← e`.
    pub fn vec_gen(a: impl Into<Symbol>, i: impl Into<Symbol>, e: Expr) -> Qual {
        Qual::VecGen { elem: a.into(), index: i.into(), source: e }
    }

    /// Number of AST nodes (used to bound property tests and report
    /// normalization statistics).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Visit every sub-expression (including `self`), pre-order.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Lit(_) | Expr::Var(_) | Expr::Param(_) | Expr::Zero(_) => {}
            Expr::Record(fields) => fields.iter().for_each(|(_, e)| e.visit(f)),
            Expr::Tuple(items) | Expr::CollLit(_, items) | Expr::VecLit(items) => {
                items.iter().for_each(|e| e.visit(f));
            }
            Expr::Proj(e, _) | Expr::TupleProj(e, _) | Expr::UnOp(_, e) | Expr::Lambda(_, e)
            | Expr::Unit(_, e) | Expr::New(e) | Expr::Deref(e) => e.visit(f),
            Expr::BinOp(_, a, b)
            | Expr::Apply(a, b)
            | Expr::Merge(_, a, b)
            | Expr::VecIndex(a, b)
            | Expr::Assign(a, b)
            | Expr::Let(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::If(c, t, e) => {
                c.visit(f);
                t.visit(f);
                e.visit(f);
            }
            Expr::Hom { body, source, .. } => {
                body.visit(f);
                source.visit(f);
            }
            Expr::Comp { head, quals, .. } => {
                head.visit(f);
                for q in quals {
                    match q {
                        Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => e.visit(f),
                        Qual::VecGen { source, .. } => source.visit(f),
                    }
                }
            }
            Expr::VecComp { size, value, index, quals, .. } => {
                size.visit(f);
                value.visit(f);
                index.visit(f);
                for q in quals {
                    match q {
                        Qual::Gen(_, e) | Qual::Bind(_, e) | Qual::Pred(e) => e.visit(f),
                        Qual::VecGen { source, .. } => source.visit(f),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        // sum{ a | a ← [1,2,3], a ≤ 2 }
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("a"),
            vec![
                Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)])),
                Expr::pred(Expr::var("a").le(Expr::int(2))),
            ],
        );
        assert!(matches!(e, Expr::Comp { monoid: Monoid::Sum, .. }));
        assert!(e.size() > 5);
    }

    #[test]
    fn visit_reaches_all_nodes() {
        let e = Expr::if_(
            Expr::bool(true),
            Expr::var("x").add(Expr::int(1)),
            Expr::int(0),
        );
        let mut count = 0;
        e.visit(&mut |_| count += 1);
        assert_eq!(count, 6); // if, true, +, x, 1, 0
    }

    #[test]
    fn size_counts_comprehension_parts() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::var("xs")), Expr::pred(Expr::bool(true))],
        );
        assert_eq!(e.size(), 4); // comp, head var, gen source var, pred bool
    }
}
