//! SRU — structural recursion over the union presentation, the baseline
//! the paper positions itself against (§5, citing Breazu-Tannen, Buneman &
//! Naqvi \[4, 6, 5\]).
//!
//! `sru(z, f, ⊕)(A)` folds a collection `A` by mapping each element with
//! `f` and combining with a *user-supplied* operation `⊕` starting from
//! `z`. It is strictly more expressive than the monoid homomorphism — but
//! it is only well-defined when `(⊕, z)` satisfies the algebraic laws
//! matching the *input* collection: associativity and identity always,
//! commutativity for bags and sets, idempotence for sets. "These
//! properties are hard to check by a compiler \[6\], which makes the SRU
//! operation impractical" — the monoid calculus's answer is to fix a
//! vocabulary of monoids whose laws are known once and for all.
//!
//! This module implements SRU faithfully, including the impracticality:
//! the laws cannot be checked statically, so [`sru`] optionally *probes*
//! them dynamically on the actual elements ([`LawCheck::Probe`]) and
//! reports violations — e.g. the paper's `1 = sru(0, λx.1, +)({a})`
//! inconsistency is caught at run time, where `hom[set→sum]` is rejected
//! at *compile* time. The benchmark harness uses this to reproduce the
//! §5 comparison.

use crate::error::{EvalError, EvalResult};
use crate::eval::Evaluator;
use crate::monoid::Props;
use crate::value::{Env, Value};

/// How to treat the (statically uncheckable) law obligations of an SRU
/// application.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LawCheck {
    /// Trust the caller (the paper's point: silently wrong on misuse).
    Trust,
    /// Probe the required laws on the elements actually encountered and
    /// fail with [`EvalError::Other`] on a counterexample. Exponential in
    /// nothing, quadratic in the sample size.
    Probe,
}

/// A user-supplied binary operation as a Rust closure over values.
pub type MergeFn<'a> = dyn Fn(&mut Evaluator, &Value, &Value) -> EvalResult<Value> + 'a;
/// A user-supplied unary mapping.
pub type MapFn<'a> = dyn Fn(&mut Evaluator, &Value) -> EvalResult<Value> + 'a;

/// The laws a source collection imposes on the SRU combine operation.
pub fn required_props(source: &Value) -> EvalResult<Props> {
    source
        .source_monoid()
        .map(|m| m.props())
        .ok_or_else(|| EvalError::TypeMismatch {
            op: "sru",
            detail: format!("not a collection: {}", source.kind()),
        })
}

/// Structural recursion on the union presentation:
/// `sru(z, f, ⊕)(A) = f(a₁) ⊕ … ⊕ f(aₙ)`, `z` on empty.
///
/// With [`LawCheck::Probe`], identity, associativity, and the
/// commutativity/idempotence required by the source's collection kind are
/// verified on the mapped elements; a violation is an error describing the
/// counterexample (the situation the monoid calculus excludes statically).
pub fn sru(
    ev: &mut Evaluator,
    source: &Value,
    zero: &Value,
    map: &MapFn<'_>,
    combine: &MergeFn<'_>,
    check: LawCheck,
) -> EvalResult<Value> {
    let required = required_props(source)?;
    let elements = source.elements()?;
    let mapped = elements
        .iter()
        .map(|e| map(ev, e))
        .collect::<EvalResult<Vec<_>>>()?;

    if check == LawCheck::Probe {
        probe_laws(ev, zero, &mapped, combine, required)?;
    }

    let mut acc = zero.clone();
    for v in &mapped {
        acc = combine(ev, &acc, v)?;
    }
    Ok(acc)
}

/// Check the laws on a sample (all pairs of mapped elements, capped).
fn probe_laws(
    ev: &mut Evaluator,
    zero: &Value,
    mapped: &[Value],
    combine: &MergeFn<'_>,
    required: Props,
) -> EvalResult<()> {
    const CAP: usize = 8;
    let sample: Vec<&Value> = mapped.iter().take(CAP).collect();
    for a in &sample {
        // identity
        let za = combine(ev, zero, a)?;
        let az = combine(ev, a, zero)?;
        if &za != *a || &az != *a {
            return Err(EvalError::Other(format!(
                "SRU law violation: zero is not an identity on {a}"
            )));
        }
        if required.idempotent {
            let aa = combine(ev, a, a)?;
            if &aa != *a {
                return Err(EvalError::Other(format!(
                    "SRU law violation: combine is not idempotent on {a} \
                     (required by a set-valued source); the monoid calculus \
                     rejects this statically"
                )));
            }
        }
        for b in &sample {
            if required.commutative {
                let ab = combine(ev, a, b)?;
                let ba = combine(ev, b, a)?;
                if ab != ba {
                    return Err(EvalError::Other(format!(
                        "SRU law violation: combine is not commutative on \
                         ({a}, {b}) (required by an unordered source)"
                    )));
                }
            }
            for c in &sample {
                let ab = combine(ev, a, b)?;
                let ab_c = combine(ev, &ab, c)?;
                let bc = combine(ev, b, c)?;
                let a_bc = combine(ev, a, &bc)?;
                if ab_c != a_bc {
                    return Err(EvalError::Other(format!(
                        "SRU law violation: combine is not associative on \
                         ({a}, {b}, {c})"
                    )));
                }
            }
        }
    }
    Ok(())
}

/// Convenience: SRU with value-level closures and a fresh environment —
/// the form used by the experiments harness.
pub fn sru_closed(
    source: &Value,
    zero: &Value,
    map: impl Fn(&Value) -> Value,
    combine: impl Fn(&Value, &Value) -> EvalResult<Value>,
    check: LawCheck,
) -> EvalResult<Value> {
    let mut ev = Evaluator::new();
    let _ = Env::empty();
    sru(
        &mut ev,
        source,
        zero,
        &|_, v| Ok(map(v)),
        &|_, a, b| combine(a, b),
        check,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::merge;
    use crate::monoid::Monoid;

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn sru_subsumes_monoid_homs() {
        // bag cardinality via SRU == hom[bag→sum].
        let bag = Value::bag_from(ints(&[7, 7, 9]));
        let r = sru_closed(
            &bag,
            &Value::Int(0),
            |_| Value::Int(1),
            |a, b| merge(&Monoid::Sum, a, b),
            LawCheck::Probe,
        )
        .unwrap();
        assert_eq!(r, Value::Int(3));
    }

    /// The paper's §2.3 inconsistency: set cardinality with `+`. SRU
    /// accepts it silently under Trust (and produces an answer that
    /// depends on the set's internal construction); Probe catches it.
    #[test]
    fn set_cardinality_with_plus_is_caught_by_probe() {
        let set = Value::set_from(ints(&[5, 7]));
        let trusted = sru_closed(
            &set,
            &Value::Int(0),
            |_| Value::Int(1),
            |a, b| merge(&Monoid::Sum, a, b),
            LawCheck::Trust,
        )
        .unwrap();
        // Trust silently computes *a* number — dependent on representation.
        assert_eq!(trusted, Value::Int(2));
        let probed = sru_closed(
            &set,
            &Value::Int(0),
            |_| Value::Int(1),
            |a, b| merge(&Monoid::Sum, a, b),
            LawCheck::Probe,
        );
        let err = probed.unwrap_err().to_string();
        assert!(err.contains("not idempotent"), "{err}");
    }

    #[test]
    fn non_commutative_combine_over_bag_is_caught() {
        // Combining with list-append over a bag source: order-dependent.
        let bag = Value::bag_from(ints(&[1, 2]));
        let r = sru_closed(
            &bag,
            &Value::list(vec![]),
            |v| Value::list(vec![v.clone()]),
            |a, b| merge(&Monoid::List, a, b),
            LawCheck::Probe,
        );
        let err = r.unwrap_err().to_string();
        assert!(err.contains("not commutative"), "{err}");
    }

    #[test]
    fn non_associative_combine_is_caught() {
        // Absolute difference has identity 0 on naturals but is not
        // associative: ||1−2|−3| = 2 while |1−|2−3|| = 0.
        let list = Value::list(ints(&[1, 2, 3]));
        let r = sru_closed(
            &list,
            &Value::Int(0),
            std::clone::Clone::clone,
            |a, b| {
                let (Value::Int(x), Value::Int(y)) = (a, b) else {
                    return Err(EvalError::Other("ints only".into()));
                };
                Ok(Value::Int((x - y).abs()))
            },
            LawCheck::Probe,
        );
        let err = r.unwrap_err().to_string();
        assert!(err.contains("not associative"), "{err}");
    }

    #[test]
    fn bad_zero_is_caught() {
        let list = Value::list(ints(&[1]));
        let r = sru_closed(
            &list,
            &Value::Int(1), // 1 is not the identity of +
            std::clone::Clone::clone,
            |a, b| merge(&Monoid::Sum, a, b),
            LawCheck::Probe,
        );
        let err = r.unwrap_err().to_string();
        assert!(err.contains("identity"), "{err}");
    }

    #[test]
    fn list_source_imposes_no_extra_laws() {
        // Over a list, any associative op with identity is fine — e.g.
        // string-append-like concatenation via lists.
        let list = Value::list(ints(&[1, 2, 3]));
        let r = sru_closed(
            &list,
            &Value::list(vec![]),
            |v| Value::list(vec![v.clone()]),
            |a, b| merge(&Monoid::List, a, b),
            LawCheck::Probe,
        )
        .unwrap();
        assert_eq!(r, Value::list(ints(&[1, 2, 3])));
    }

    #[test]
    fn sru_expressiveness_beyond_homs() {
        // SRU can express "first element" of a list through the
        // left-biased monoid (keep-left, null identity) — a lawful monoid
        // outside the calculus's fixed vocabulary. The probe accepts it
        // (the laws do hold); the point of the fixed vocabulary is that
        // *users never carry the obligation*, not that every lawful fold
        // is expressible.
        let list = Value::list(ints(&[42, 1, 2]));
        let keep_left = |a: &Value, b: &Value| {
            Ok(if matches!(a, Value::Null) { b.clone() } else { a.clone() })
        };
        let first =
            sru_closed(&list, &Value::Null, std::clone::Clone::clone, keep_left, LawCheck::Probe)
                .unwrap();
        assert_eq!(first, Value::Int(42));
        // …but the same fold over a *bag* requires commutativity, which
        // keep-left lacks; the probe rejects it, because "first of an
        // unordered collection" is exactly the kind of inconsistency the
        // restriction exists for.
        let bag = Value::bag_from(ints(&[1, 2]));
        let probed =
            sru_closed(&bag, &Value::Null, std::clone::Clone::clone, keep_left, LawCheck::Probe);
        let err = probed.unwrap_err().to_string();
        assert!(err.contains("not commutative"), "{err}");
    }
}
