//! The object heap — identity and updates (paper §4.2).
//!
//! The paper models `new`/`!`/`:=` with a monoid of *state transformers*
//! that thread an object heap ("bindings from OIDs to object states")
//! through every operation. Operationally that is exactly a mutable heap
//! threaded left-to-right through evaluation, which is what we implement:
//! the evaluator owns a [`Heap`] and qualifiers see each other's effects in
//! order, reproducing all four of the paper's examples (see
//! `tests/identity_updates.rs`).

use crate::error::{EvalError, EvalResult};
use crate::value::{Oid, Value};
use std::sync::Arc;

/// A growable store of object states indexed by [`Oid`].
///
/// Storage is copy-on-write: the state vector lives behind an `Arc`, so
/// cloning a heap is O(1) regardless of how many objects it holds. A
/// mutation (`alloc`/`set`) on a heap whose storage is shared with a
/// clone first unshares it (one deep copy), leaving every other clone
/// untouched — which is exactly the snapshot-isolation contract the
/// store builds on: readers holding a snapshot keep seeing the heap as
/// it was, writers commit new epochs against their own copy.
#[derive(Debug, Clone)]
pub struct Heap {
    states: Arc<Vec<Value>>,
    /// Bumped on every mutation (`alloc`/`set`). Consumers (the store's
    /// mutation epoch, index staleness checks) compare versions to detect
    /// that the heap changed between two points in time; the counter
    /// travels with the heap through clone and `mem::take`/restore cycles.
    version: u64,
}

impl Default for Heap {
    fn default() -> Heap {
        Heap { states: Arc::new(Vec::new()), version: 0 }
    }
}

impl Heap {
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Allocate a new object with the given state; returns its identity.
    /// Distinct calls always produce distinct OIDs (the paper's first
    /// example: `some{ !x = !y | x ← new(1), y ← new(1) }` is true — equal
    /// *states* — while `x = y` would be false — distinct *identities*).
    pub fn alloc(&mut self, state: Value) -> Oid {
        let states = Arc::make_mut(&mut self.states);
        let oid = Oid(states.len() as u64);
        states.push(state);
        self.version += 1;
        oid
    }

    /// Dereference: the current state of `oid`.
    pub fn get(&self, oid: Oid) -> EvalResult<&Value> {
        self.states
            .get(oid.0 as usize)
            .ok_or(EvalError::InvalidOid(oid.0))
    }

    /// Update the state of `oid`.
    pub fn set(&mut self, oid: Oid, state: Value) -> EvalResult<()> {
        if (oid.0 as usize) >= self.states.len() {
            return Err(EvalError::InvalidOid(oid.0));
        }
        let states = Arc::make_mut(&mut self.states);
        states[oid.0 as usize] = state;
        self.version += 1;
        Ok(())
    }

    /// Do `self` and `other` share the same underlying storage (i.e. is
    /// cloning between them still free)? Diagnostic for the COW tests —
    /// equal answers do not require shared storage.
    pub fn shares_storage_with(&self, other: &Heap) -> bool {
        Arc::ptr_eq(&self.states, &other.states)
    }

    /// Mutation counter: strictly increases across `alloc`/`set` calls.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The states allocated at or after index `base`, in allocation order
    /// — what a worker that cloned this heap at `len() == base` has added
    /// since. Used by the parallel driver to reconcile worker heaps.
    pub fn states_from(&self, base: usize) -> &[Value] {
        &self.states[base.min(self.states.len())..]
    }

    /// Number of live objects.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Iterate over `(oid, state)` pairs (used by stores to snapshot).
    pub fn iter(&self) -> impl Iterator<Item = (Oid, &Value)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, v)| (Oid(i as u64), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_allocations_distinct_identities() {
        let mut h = Heap::new();
        let a = h.alloc(Value::Int(1));
        let b = h.alloc(Value::Int(1));
        assert_ne!(a, b);
        assert_eq!(h.get(a).unwrap(), h.get(b).unwrap());
    }

    #[test]
    fn set_updates_state() {
        let mut h = Heap::new();
        let a = h.alloc(Value::Int(1));
        h.set(a, Value::Int(42)).unwrap();
        assert_eq!(h.get(a).unwrap(), &Value::Int(42));
    }

    #[test]
    fn version_tracks_mutations() {
        let mut h = Heap::new();
        let v0 = h.version();
        let a = h.alloc(Value::Int(1));
        assert!(h.version() > v0);
        let v1 = h.version();
        h.set(a, Value::Int(2)).unwrap();
        assert!(h.version() > v1);
        // Clones carry the version; reads do not bump it.
        let c = h.clone();
        assert_eq!(c.version(), h.version());
        let _ = h.get(a).unwrap();
        assert_eq!(c.version(), h.version());
    }

    #[test]
    fn states_from_returns_the_tail() {
        let mut h = Heap::new();
        h.alloc(Value::Int(0));
        let base = h.len();
        h.alloc(Value::Int(1));
        h.alloc(Value::Int(2));
        assert_eq!(h.states_from(base), &[Value::Int(1), Value::Int(2)]);
        assert_eq!(h.states_from(h.len() + 10), &[] as &[Value]);
    }

    #[test]
    fn clones_share_storage_until_written() {
        let mut h = Heap::new();
        let a = h.alloc(Value::Int(1));
        let snapshot = h.clone();
        assert!(snapshot.shares_storage_with(&h), "clone is O(1)");
        // Writing through one side unshares it; the other keeps the old
        // states and version.
        h.set(a, Value::Int(2)).unwrap();
        assert!(!snapshot.shares_storage_with(&h));
        assert_eq!(snapshot.get(a).unwrap(), &Value::Int(1));
        assert_eq!(h.get(a).unwrap(), &Value::Int(2));
        assert!(h.version() > snapshot.version());
        // Allocation on the writer is invisible to the snapshot.
        let b = h.alloc(Value::Int(3));
        assert_eq!(snapshot.len(), 1);
        assert!(snapshot.get(b).is_err());
        // Once unshared, further writes stay in place (no copies needed).
        let states_before = Arc::as_ptr(&h.states);
        h.set(a, Value::Int(4)).unwrap();
        assert_eq!(Arc::as_ptr(&h.states), states_before);
    }

    #[test]
    fn dangling_oid_is_an_error() {
        let h = Heap::new();
        assert!(matches!(h.get(Oid(7)), Err(EvalError::InvalidOid(7))));
        let mut h = h;
        assert!(h.set(Oid(7), Value::Null).is_err());
    }
}
