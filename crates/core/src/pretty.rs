//! Pretty-printing of calculus expressions in the paper's notation:
//! `set{ (a, b) | a ← [1, 2, 3], b ← {{4, 5}} }`, `hom[→sum](λx. …)(u)`,
//! `sum[n]{ a [i] | a[i] ← x }`, `!x`, `x := e`, and so on.
//!
//! The printer is used by the normalization trace (so derivations read like
//! the paper's §3.1 walk-through), by `EXPLAIN` in the algebra crate, and by
//! error messages.

use crate::expr::{Expr, Qual};
use crate::monoid::Monoid;
use std::fmt;

/// Wrapper giving an [`Expr`] a paper-notation `Display`.
pub struct Pretty<'a>(pub &'a Expr);

impl fmt::Display for Pretty<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self.0, 0)
    }
}

/// Render an expression to a `String` in paper notation.
pub fn pretty(e: &Expr) -> String {
    Pretty(e).to_string()
}

/// Precedence levels: higher binds tighter. Used to parenthesize minimally.
fn prec(e: &Expr) -> u8 {
    match e {
        Expr::BinOp(op, ..) => match op {
            crate::expr::BinOp::Or => 1,
            crate::expr::BinOp::And => 2,
            crate::expr::BinOp::Eq
            | crate::expr::BinOp::Ne
            | crate::expr::BinOp::Lt
            | crate::expr::BinOp::Le
            | crate::expr::BinOp::Gt
            | crate::expr::BinOp::Ge
            | crate::expr::BinOp::Like => 3,
            crate::expr::BinOp::Add | crate::expr::BinOp::Sub => 4,
            crate::expr::BinOp::Mul | crate::expr::BinOp::Div | crate::expr::BinOp::Mod => 5,
        },
        Expr::Merge(..) => 3,
        Expr::Lambda(..) | Expr::Let(..) | Expr::If(..) | Expr::Assign(..) => 0,
        _ => 10,
    }
}

fn write_parenthesized(
    f: &mut fmt::Formatter<'_>,
    e: &Expr,
    min_prec: u8,
) -> fmt::Result {
    if prec(e) < min_prec {
        write!(f, "(")?;
        write_expr(f, e, 0)?;
        write!(f, ")")
    } else {
        write_expr(f, e, min_prec)
    }
}

fn write_list(
    f: &mut fmt::Formatter<'_>,
    items: &[Expr],
    open: &str,
    close: &str,
) -> fmt::Result {
    write!(f, "{open}")?;
    for (i, e) in items.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write_expr(f, e, 0)?;
    }
    write!(f, "{close}")
}

fn write_qual(f: &mut fmt::Formatter<'_>, q: &Qual) -> fmt::Result {
    match q {
        Qual::Gen(v, e) => {
            write!(f, "{v} ← ")?;
            write_expr(f, e, 0)
        }
        Qual::VecGen { elem, index, source } => {
            write!(f, "{elem}[{index}] ← ")?;
            write_expr(f, source, 0)
        }
        Qual::Bind(v, e) => {
            write!(f, "{v} ≡ ")?;
            write_expr(f, e, 0)
        }
        Qual::Pred(e) => write_expr(f, e, 0),
    }
}

fn write_quals(f: &mut fmt::Formatter<'_>, quals: &[Qual]) -> fmt::Result {
    for (i, q) in quals.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        write_qual(f, q)?;
    }
    Ok(())
}

fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr, min_prec: u8) -> fmt::Result {
    match e {
        Expr::Lit(lit) => write!(f, "{lit}"),
        Expr::Var(v) => write!(f, "{v}"),
        // The symbol already carries its `$` prefix.
        Expr::Param(p) => write!(f, "{p}"),
        Expr::Record(fields) => {
            write!(f, "⟨")?;
            for (i, (n, fe)) in fields.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{n}=")?;
                write_expr(f, fe, 0)?;
            }
            write!(f, "⟩")
        }
        Expr::Tuple(items) => write_list(f, items, "(", ")"),
        Expr::Proj(inner, field) => {
            write_parenthesized(f, inner, 10)?;
            write!(f, ".{field}")
        }
        Expr::TupleProj(inner, i) => {
            write_parenthesized(f, inner, 10)?;
            write!(f, ".{i}")
        }
        Expr::BinOp(op, a, b) => {
            let p = prec(e);
            write_parenthesized(f, a, p)?;
            write!(f, " {} ", op.symbol())?;
            write_parenthesized(f, b, p + 1)
        }
        Expr::UnOp(op, inner) => {
            write!(f, "{}(", op.name())?;
            write_expr(f, inner, 0)?;
            write!(f, ")")
        }
        Expr::If(c, t, els) => {
            write!(f, "if ")?;
            write_expr(f, c, 0)?;
            write!(f, " then ")?;
            write_expr(f, t, 0)?;
            write!(f, " else ")?;
            write_expr(f, els, min_prec.max(1))
        }
        Expr::Lambda(param, body) => {
            write!(f, "λ{param}. ")?;
            write_expr(f, body, 0)
        }
        Expr::Apply(func, arg) => {
            write_parenthesized(f, func, 10)?;
            write!(f, "(")?;
            write_expr(f, arg, 0)?;
            write!(f, ")")
        }
        Expr::Let(v, def, body) => {
            write!(f, "let {v} = ")?;
            write_expr(f, def, 1)?;
            write!(f, " in ")?;
            write_expr(f, body, 0)
        }
        Expr::Zero(m) => write!(f, "zero[{m}]"),
        Expr::Unit(m, inner) => {
            write!(f, "unit[{m}](")?;
            write_expr(f, inner, 0)?;
            write!(f, ")")
        }
        Expr::Merge(m, a, b) => {
            let sym = merge_symbol(m);
            write_parenthesized(f, a, 3)?;
            write!(f, " {sym} ")?;
            write_parenthesized(f, b, 4)
        }
        Expr::CollLit(m, items) => match m {
            Monoid::List => write_list(f, items, "[", "]"),
            Monoid::Set => write_list(f, items, "{", "}"),
            Monoid::Bag => write_list(f, items, "{{", "}}"),
            other => {
                write!(f, "{other}")?;
                write_list(f, items, "[", "]")
            }
        },
        Expr::VecLit(items) => write_list(f, items, "⟦", "⟧"),
        Expr::Hom { monoid, var, body, source } => {
            write!(f, "hom[→{monoid}](λ{var}. ")?;
            write_expr(f, body, 0)?;
            write!(f, ")(")?;
            write_expr(f, source, 0)?;
            write!(f, ")")
        }
        Expr::Comp { monoid, head, quals } => {
            write!(f, "{monoid}{{ ")?;
            write_expr(f, head, 0)?;
            if !quals.is_empty() {
                write!(f, " | ")?;
                write_quals(f, quals)?;
            }
            write!(f, " }}")
        }
        Expr::VecComp { elem_monoid, size, value, index, quals } => {
            write!(f, "{elem_monoid}[")?;
            write_expr(f, size, 0)?;
            write!(f, "]{{ ")?;
            write_expr(f, value, 0)?;
            write!(f, " [")?;
            write_expr(f, index, 0)?;
            write!(f, "]")?;
            if !quals.is_empty() {
                write!(f, " | ")?;
                write_quals(f, quals)?;
            }
            write!(f, " }}")
        }
        Expr::VecIndex(v, i) => {
            write_parenthesized(f, v, 10)?;
            write!(f, "[")?;
            write_expr(f, i, 0)?;
            write!(f, "]")
        }
        Expr::New(state) => {
            write!(f, "new(")?;
            write_expr(f, state, 0)?;
            write!(f, ")")
        }
        Expr::Deref(inner) => {
            write!(f, "!")?;
            write_parenthesized(f, inner, 10)
        }
        Expr::Assign(target, value) => {
            write_parenthesized(f, target, 10)?;
            write!(f, " := ")?;
            write_expr(f, value, 1)
        }
    }
}

fn merge_symbol(m: &Monoid) -> &'static str {
    match m {
        Monoid::List | Monoid::Str => "++",
        Monoid::Set | Monoid::OSet => "∪",
        Monoid::Bag => "⊎",
        Monoid::Sorted | Monoid::SortedBag => "⋈ₛ",
        Monoid::Sum => "+",
        Monoid::Prod => "×",
        Monoid::Max => "max",
        Monoid::Min => "min",
        Monoid::Some => "∨",
        Monoid::All => "∧",
        Monoid::VecOf(_) => "⊕ᵥ",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_renders_in_paper_notation() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::Tuple(vec![Expr::var("a"), Expr::var("b")]),
            vec![
                Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)])),
                Expr::gen("b", Expr::bag_of(vec![Expr::int(4), Expr::int(5)])),
            ],
        );
        assert_eq!(pretty(&e), "set{ (a, b) | a ← [1, 2, 3], b ← {{4, 5}} }");
    }

    #[test]
    fn operators_parenthesize_minimally() {
        // (1 + 2) * 3 keeps parens; 1 + 2 * 3 does not add them.
        let e1 = Expr::int(1).add(Expr::int(2)).mul(Expr::int(3));
        assert_eq!(pretty(&e1), "(1 + 2) * 3");
        let e2 = Expr::int(1).add(Expr::int(2).mul(Expr::int(3)));
        assert_eq!(pretty(&e2), "1 + 2 * 3");
    }

    #[test]
    fn identity_ops_render() {
        let e = Expr::var("x").assign(Expr::var("x").deref().add(Expr::var("e")));
        assert_eq!(pretty(&e), "x := !x + e");
    }

    #[test]
    fn vector_comprehension_renders() {
        let e = Expr::vec_comp(
            Monoid::Sum,
            Expr::var("n"),
            Expr::var("a"),
            Expr::var("i"),
            vec![Expr::vec_gen("a", "i", Expr::var("x"))],
        );
        assert_eq!(pretty(&e), "sum[n]{ a [i] | a[i] ← x }");
    }

    #[test]
    fn path_expression_renders() {
        let e = Expr::var("c").proj("hotels");
        assert_eq!(pretty(&e), "c.hotels");
    }
}
