//! Error types for the calculus: type errors (including the paper's C/I
//! legality violations) and evaluation errors.

use crate::monoid::Monoid;
use crate::symbol::Symbol;
use crate::types::Type;
use std::fmt;

/// An error raised while type-checking a calculus expression.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// A variable was used but never bound.
    UnboundVariable(Symbol),
    /// Two types failed to unify.
    Mismatch { expected: Type, found: Type, context: String },
    /// The paper's central restriction: `hom[M→N]` (and hence a generator
    /// drawing from an `M`-collection inside an `N`-comprehension) is legal
    /// only when the commutativity/idempotence properties of `M` are a
    /// subset of those of `N`. E.g. `sum{ x | x ← someSet }` is rejected
    /// because `∪` is idempotent but `+` is not.
    IllegalHomomorphism { from: Monoid, to: Monoid, context: String },
    /// A generator's source expression is not a collection.
    NotACollection { found: Type, context: String },
    /// Record/projection errors.
    NoSuchField { record: Type, field: Symbol },
    /// Something that must be a function (e.g. a `sorted[f]` key) is not.
    NotAFunction { found: Type, context: String },
    /// The occurs check failed during unification (infinite type).
    InfiniteType,
    /// Anything else, with a human-readable description.
    Other(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::UnboundVariable(v) => write!(f, "unbound variable `{v}`"),
            TypeError::Mismatch { expected, found, context } => {
                write!(f, "type mismatch in {context}: expected `{expected}`, found `{found}`")
            }
            TypeError::IllegalHomomorphism { from, to, context } => write!(
                f,
                "illegal homomorphism {from} → {to} in {context}: the \
                 commutativity/idempotence properties of {from} are not a subset \
                 of those of {to} (Fegaras & Maier §2.3)"
            ),
            TypeError::NotACollection { found, context } => {
                write!(f, "generator source in {context} is not a collection: `{found}`")
            }
            TypeError::NoSuchField { record, field } => {
                write!(f, "type `{record}` has no field `{field}`")
            }
            TypeError::NotAFunction { found, context } => {
                write!(f, "expected a function in {context}, found `{found}`")
            }
            TypeError::InfiniteType => write!(f, "cannot construct infinite type"),
            TypeError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TypeError {}

/// An error raised while evaluating a calculus expression.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// A variable had no binding at runtime (should be prevented by
    /// type checking, but the evaluator is independently safe).
    UnboundVariable(Symbol),
    /// A `$param` placeholder was evaluated without a binding for it —
    /// the prepared statement was executed with incomplete `Params`.
    UnboundParameter(Symbol),
    /// An operation was applied to values of the wrong shape.
    TypeMismatch { op: &'static str, detail: String },
    /// Dangling or foreign OID dereference.
    InvalidOid(u64),
    /// Division by zero or integer overflow.
    Arithmetic(String),
    /// Vector index out of range.
    IndexOutOfBounds { index: i64, len: usize },
    /// `element(e)` on a collection that does not contain exactly one value.
    ElementCardinality(usize),
    /// Recursion/step budget exhausted (guards the property-test generators
    /// and any adversarial input against runaway evaluation).
    BudgetExhausted,
    /// Anything else.
    Other(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable `{v}` at runtime"),
            EvalError::UnboundParameter(p) => {
                write!(f, "no binding supplied for parameter `{p}`")
            }
            EvalError::TypeMismatch { op, detail } => {
                write!(f, "runtime type mismatch in `{op}`: {detail}")
            }
            EvalError::InvalidOid(o) => write!(f, "invalid object identifier #{o}"),
            EvalError::Arithmetic(msg) => write!(f, "arithmetic error: {msg}"),
            EvalError::IndexOutOfBounds { index, len } => {
                write!(f, "vector index {index} out of bounds (len {len})")
            }
            EvalError::ElementCardinality(n) => {
                write!(f, "element() applied to a collection with {n} elements (expected 1)")
            }
            EvalError::BudgetExhausted => write!(f, "evaluation budget exhausted"),
            EvalError::Other(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Result alias for type checking.
pub type TypeResult<T> = Result<T, TypeError>;
/// Result alias for evaluation.
pub type EvalResult<T> = Result<T, EvalError>;
