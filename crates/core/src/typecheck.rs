//! Type inference for the calculus, including the paper's monoid-legality
//! check.
//!
//! Inference is syntax-directed with a light unification layer (type
//! variables arise only from lambdas without annotations, empty literals,
//! and polymorphic zeros). For every generator `v ← u` inside an
//! `M`-comprehension, the collection monoid `N` of `u` is *inferred from
//! `u`'s type* (the paper: "the collection monoid N associated with the
//! expression u in x ← u is inferred"), and the comprehension is rejected
//! unless `props(N) ⊆ props(M)` — so `sum{ x | x ← someSet }` is a static
//! [`TypeError::IllegalHomomorphism`], exactly the paper's example that
//! set cardinality is not expressible as `hom[set→sum]`.
//!
//! Numeric widening: `int` and `float` unify to `float` (OQL arithmetic);
//! `null` unifies with everything (OQL `nil`, and the `max`/`min` zero).

use crate::error::{TypeError, TypeResult};
use crate::expr::{BinOp, Expr, Literal, Qual, UnOp};
use crate::monoid::Monoid;
use crate::symbol::Symbol;
use crate::types::{CollKind, Schema, Type};

/// A typing environment: lexical bindings of variables to types.
#[derive(Debug, Clone, Default)]
pub struct TypeEnv {
    bindings: Vec<(Symbol, Type)>,
}

impl TypeEnv {
    pub fn new() -> TypeEnv {
        TypeEnv::default()
    }

    pub fn bind(&self, name: Symbol, ty: Type) -> TypeEnv {
        let mut bindings = self.bindings.clone();
        bindings.push((name, ty));
        TypeEnv { bindings }
    }

    pub fn lookup(&self, name: Symbol) -> Option<&Type> {
        self.bindings.iter().rev().find(|(n, _)| *n == name).map(|(_, t)| t)
    }
}

/// The inference engine. Holds the unification substitution and an optional
/// schema for resolving class fields and extent names.
#[derive(Debug)]
pub struct TypeChecker<'s> {
    schema: Option<&'s Schema>,
    /// `subst[i]` is the binding of type variable `τi`, if solved.
    subst: Vec<Option<Type>>,
    /// One type variable per `$param` name, so every occurrence of the
    /// same placeholder unifies to a single (late-bound) type.
    param_types: Vec<(Symbol, Type)>,
}

/// Infer the type of a closed expression (no schema).
pub fn infer(e: &Expr) -> TypeResult<Type> {
    let mut tc = TypeChecker::new();
    let t = tc.infer_in(&TypeEnv::new(), e)?;
    Ok(tc.resolve(&t))
}

impl<'s> TypeChecker<'s> {
    pub fn new() -> TypeChecker<'s> {
        TypeChecker { schema: None, subst: Vec::new(), param_types: Vec::new() }
    }

    pub fn with_schema(schema: &'s Schema) -> TypeChecker<'s> {
        TypeChecker { schema: Some(schema), subst: Vec::new(), param_types: Vec::new() }
    }

    /// Infer and fully resolve the type of `e` under `env`.
    pub fn check(&mut self, env: &TypeEnv, e: &Expr) -> TypeResult<Type> {
        let t = self.infer_in(env, e)?;
        Ok(self.resolve(&t))
    }

    fn fresh(&mut self) -> Type {
        let id = self.subst.len() as u32;
        self.subst.push(None);
        Type::Var(id)
    }

    /// Chase variable bindings one level.
    fn shallow(&self, t: &Type) -> Type {
        let mut t = t.clone();
        while let Type::Var(v) = t {
            match &self.subst[v as usize] {
                Some(bound) => t = bound.clone(),
                None => return Type::Var(v),
            }
        }
        t
    }

    /// Fully resolve a type (chase all variables recursively).
    pub fn resolve(&self, t: &Type) -> Type {
        match self.shallow(t) {
            Type::Record(fields) => Type::Record(
                fields.into_iter().map(|(n, ft)| (n, self.resolve(&ft))).collect(),
            ),
            Type::Tuple(items) => {
                Type::Tuple(items.iter().map(|i| self.resolve(i)).collect())
            }
            Type::Coll(k, elem) => Type::Coll(k, Box::new(self.resolve(&elem))),
            Type::Vector(elem) => Type::Vector(Box::new(self.resolve(&elem))),
            Type::Obj(state) => Type::Obj(Box::new(self.resolve(&state))),
            Type::Fn(a, r) => {
                Type::Fn(Box::new(self.resolve(&a)), Box::new(self.resolve(&r)))
            }
            other => other,
        }
    }

    fn occurs(&self, var: u32, t: &Type) -> bool {
        match self.shallow(t) {
            Type::Var(v) => v == var,
            Type::Record(fields) => fields.iter().any(|(_, ft)| self.occurs(var, ft)),
            Type::Tuple(items) => items.iter().any(|i| self.occurs(var, i)),
            Type::Coll(_, elem) | Type::Vector(elem) | Type::Obj(elem) => {
                self.occurs(var, &elem)
            }
            Type::Fn(a, r) => self.occurs(var, &a) || self.occurs(var, &r),
            _ => false,
        }
    }

    /// Unify two types; returns the unified type. `null` absorbs into the
    /// other side; `int`/`float` widen to `float`.
    pub fn unify(&mut self, a: &Type, b: &Type, context: &str) -> TypeResult<Type> {
        let a = self.shallow(a);
        let b = self.shallow(b);
        match (&a, &b) {
            (Type::Var(v), Type::Var(w)) if v == w => Ok(a),
            (Type::Var(v), other) | (other, Type::Var(v)) => {
                if self.occurs(*v, other) {
                    return Err(TypeError::InfiniteType);
                }
                self.subst[*v as usize] = Some(other.clone());
                Ok(other.clone())
            }
            (Type::Null, other) | (other, Type::Null) => Ok(other.clone()),
            (Type::Int, Type::Float) | (Type::Float, Type::Int) => Ok(Type::Float),
            (Type::Bool, Type::Bool)
            | (Type::Int, Type::Int)
            | (Type::Float, Type::Float)
            | (Type::Str, Type::Str) => Ok(a),
            (Type::Class(c1), Type::Class(c2)) => {
                if c1 == c2 {
                    return Ok(a);
                }
                if let Some(schema) = self.schema {
                    if schema.is_subclass(*c1, *c2) {
                        return Ok(Type::Class(*c2));
                    }
                    if schema.is_subclass(*c2, *c1) {
                        return Ok(Type::Class(*c1));
                    }
                }
                Err(TypeError::Mismatch {
                    expected: a.clone(),
                    found: b.clone(),
                    context: context.to_string(),
                })
            }
            (Type::Record(f1), Type::Record(f2)) => {
                if f1.len() != f2.len()
                    || f1.iter().zip(f2.iter()).any(|((n1, _), (n2, _))| n1 != n2)
                {
                    return Err(TypeError::Mismatch {
                        expected: a.clone(),
                        found: b.clone(),
                        context: context.to_string(),
                    });
                }
                let fields = f1
                    .iter()
                    .zip(f2.iter())
                    .map(|((n, t1), (_, t2))| Ok((*n, self.unify(t1, t2, context)?)))
                    .collect::<TypeResult<Vec<_>>>()?;
                Ok(Type::Record(fields))
            }
            (Type::Tuple(t1), Type::Tuple(t2)) if t1.len() == t2.len() => {
                let items = t1
                    .iter()
                    .zip(t2.iter())
                    .map(|(x, y)| self.unify(x, y, context))
                    .collect::<TypeResult<Vec<_>>>()?;
                Ok(Type::Tuple(items))
            }
            (Type::Coll(k1, e1), Type::Coll(k2, e2)) if k1 == k2 => {
                let elem = self.unify(e1, e2, context)?;
                Ok(Type::Coll(*k1, Box::new(elem)))
            }
            (Type::Vector(e1), Type::Vector(e2)) => {
                Ok(Type::Vector(Box::new(self.unify(e1, e2, context)?)))
            }
            (Type::Obj(s1), Type::Obj(s2)) => {
                Ok(Type::Obj(Box::new(self.unify(s1, s2, context)?)))
            }
            (Type::Fn(a1, r1), Type::Fn(a2, r2)) => {
                let arg = self.unify(a1, a2, context)?;
                let ret = self.unify(r1, r2, context)?;
                Ok(Type::func(arg, ret))
            }
            _ => Err(TypeError::Mismatch {
                expected: a.clone(),
                found: b.clone(),
                context: context.to_string(),
            }),
        }
    }

    fn expect_numeric(&mut self, t: &Type, context: &str) -> TypeResult<Type> {
        match self.shallow(t) {
            Type::Int => Ok(Type::Int),
            Type::Float => Ok(Type::Float),
            Type::Null => Ok(Type::Null),
            v @ Type::Var(_) => self.unify(&v, &Type::Int, context),
            other => Err(TypeError::Mismatch {
                expected: Type::Int,
                found: other,
                context: context.to_string(),
            }),
        }
    }

    /// The collection monoid of a generator source type — the "N" that the
    /// paper infers for `x ← u`.
    fn source_monoid(&mut self, src_ty: &Type, context: &str) -> TypeResult<(Monoid, Type)> {
        match self.shallow(src_ty) {
            Type::Coll(kind, elem) => Ok((kind.monoid(), *elem)),
            // A vector iterates in index order, like a list; a string is
            // list(char) per Table 1.
            Type::Vector(elem) => Ok((Monoid::List, *elem)),
            Type::Str => Ok((Monoid::List, Type::Str)),
            v @ Type::Var(_) => {
                // Default an unconstrained source to a list of a fresh
                // element type (the safest monoid: props = ∅).
                let elem = self.fresh();
                self.unify(&v, &Type::list(elem.clone()), context)?;
                Ok((Monoid::List, elem))
            }
            other => Err(TypeError::NotACollection {
                found: other,
                context: context.to_string(),
            }),
        }
    }

    /// The type of an `M`-comprehension with head type `h`.
    fn comp_result_type(&mut self, monoid: &Monoid, h: Type, ctx: &str) -> TypeResult<Type> {
        Ok(match monoid {
            Monoid::List | Monoid::OSet | Monoid::Sorted | Monoid::SortedBag => Type::list(h),
            Monoid::Set => Type::set(h),
            Monoid::Bag => Type::bag(h),
            Monoid::Str => {
                self.unify(&h, &Type::Str, ctx)?;
                Type::Str
            }
            Monoid::Sum | Monoid::Prod => self.expect_numeric(&h, ctx)?,
            Monoid::Max | Monoid::Min => h,
            Monoid::Some | Monoid::All => {
                self.unify(&h, &Type::Bool, ctx)?;
                Type::Bool
            }
            Monoid::VecOf(_) => {
                return Err(TypeError::Other(
                    "vector-monoid comprehensions use the VecComp form".into(),
                ))
            }
        })
    }

    /// Auto-dereference objects and classes, as projection does.
    fn deref_type(&mut self, t: &Type, context: &str) -> TypeResult<Type> {
        match self.shallow(t) {
            Type::Obj(state) => Ok(*state),
            Type::Class(name) => {
                let schema = self.schema.ok_or_else(|| {
                    TypeError::Other(format!(
                        "class `{name}` used without a schema in {context}"
                    ))
                })?;
                schema.class_state(name).ok_or_else(|| {
                    TypeError::Other(format!("unknown class `{name}` in {context}"))
                })
            }
            other => Ok(other),
        }
    }

    fn infer_quals(
        &mut self,
        env: &TypeEnv,
        quals: &[Qual],
        out_monoid: &Monoid,
    ) -> TypeResult<TypeEnv> {
        let mut env = env.clone();
        for q in quals {
            match q {
                Qual::Gen(v, src) => {
                    let src_ty = self.infer_in(&env, src)?;
                    // §4.2 idiom: `x ← new(s)` binds the object itself once.
                    if let t @ (Type::Obj(_) | Type::Class(_)) = self.shallow(&src_ty) {
                        env = env.bind(*v, t);
                        continue;
                    }
                    let (n, elem) = self.source_monoid(&src_ty, "generator")?;
                    if !n.hom_legal_to(out_monoid) {
                        return Err(TypeError::IllegalHomomorphism {
                            from: n,
                            to: out_monoid.clone(),
                            context: format!("generator `{v} ← …`"),
                        });
                    }
                    env = env.bind(*v, elem);
                }
                Qual::VecGen { elem, index, source } => {
                    let src_ty = self.infer_in(&env, source)?;
                    let elem_ty = match self.shallow(&src_ty) {
                        Type::Vector(e) => *e,
                        v @ Type::Var(_) => {
                            let e = self.fresh();
                            self.unify(&v, &Type::vector(e.clone()), "vector generator")?;
                            e
                        }
                        other => {
                            return Err(TypeError::NotACollection {
                                found: other,
                                context: "vector generator".into(),
                            })
                        }
                    };
                    env = env.bind(*elem, elem_ty).bind(*index, Type::Int);
                }
                Qual::Bind(v, e) => {
                    let t = self.infer_in(&env, e)?;
                    env = env.bind(*v, t);
                }
                Qual::Pred(p) => {
                    let t = self.infer_in(&env, p)?;
                    self.unify(&t, &Type::Bool, "filter predicate")?;
                }
            }
        }
        Ok(env)
    }

    /// Core inference.
    pub fn infer_in(&mut self, env: &TypeEnv, e: &Expr) -> TypeResult<Type> {
        match e {
            Expr::Lit(l) => Ok(match l {
                Literal::Bool(_) => Type::Bool,
                Literal::Int(_) => Type::Int,
                Literal::Float(_) => Type::Float,
                Literal::Str(_) => Type::Str,
                Literal::Null => Type::Null,
            }),
            Expr::Var(v) => {
                if let Some(t) = env.lookup(*v) {
                    return Ok(t.clone());
                }
                if let Some(schema) = self.schema {
                    if let Some(t) = schema.name_type(*v) {
                        return Ok(t.clone());
                    }
                }
                Err(TypeError::UnboundVariable(*v))
            }
            Expr::Param(p) => {
                // Late-bound: one fresh type variable per parameter name,
                // shared by every occurrence so `$p` has a single type.
                if let Some((_, t)) = self.param_types.iter().find(|(n, _)| n == p) {
                    return Ok(t.clone());
                }
                let t = self.fresh();
                self.param_types.push((*p, t.clone()));
                Ok(t)
            }
            Expr::Record(fields) => {
                let typed = fields
                    .iter()
                    .map(|(n, fe)| Ok((*n, self.infer_in(env, fe)?)))
                    .collect::<TypeResult<Vec<_>>>()?;
                Ok(Type::record(typed))
            }
            Expr::Tuple(items) => {
                let typed = items
                    .iter()
                    .map(|i| self.infer_in(env, i))
                    .collect::<TypeResult<Vec<_>>>()?;
                Ok(Type::Tuple(typed))
            }
            Expr::Proj(inner, field) => {
                let t = self.infer_in(env, inner)?;
                let base = self.deref_type(&t, "projection")?;
                match &base {
                    Type::Record(_) => base.field(*field).cloned().ok_or_else(|| {
                        TypeError::NoSuchField { record: base.clone(), field: *field }
                    }),
                    other => Err(TypeError::NoSuchField {
                        record: other.clone(),
                        field: *field,
                    }),
                }
            }
            Expr::TupleProj(inner, idx) => {
                let t = self.infer_in(env, inner)?;
                match self.shallow(&t) {
                    Type::Tuple(items) => items.get(*idx).cloned().ok_or_else(|| {
                        TypeError::Other(format!(
                            "tuple index {idx} out of bounds for {}",
                            Type::Tuple(items.clone())
                        ))
                    }),
                    other => Err(TypeError::Mismatch {
                        expected: Type::Tuple(vec![]),
                        found: other,
                        context: "tuple projection".into(),
                    }),
                }
            }
            Expr::BinOp(op, a, b) => {
                let ta = self.infer_in(env, a)?;
                let tb = self.infer_in(env, b)?;
                match op {
                    BinOp::And | BinOp::Or => {
                        self.unify(&ta, &Type::Bool, "boolean operator")?;
                        self.unify(&tb, &Type::Bool, "boolean operator")?;
                        Ok(Type::Bool)
                    }
                    _ if op.is_comparison() => {
                        self.unify(&ta, &tb, "comparison")?;
                        Ok(Type::Bool)
                    }
                    BinOp::Like => {
                        self.unify(&ta, &Type::Str, "like")?;
                        self.unify(&tb, &Type::Str, "like")?;
                        Ok(Type::Bool)
                    }
                    BinOp::Add => {
                        // `+` doubles as string concatenation.
                        if matches!(self.shallow(&ta), Type::Str)
                            || matches!(self.shallow(&tb), Type::Str)
                        {
                            self.unify(&ta, &Type::Str, "string concatenation")?;
                            self.unify(&tb, &Type::Str, "string concatenation")?;
                            return Ok(Type::Str);
                        }
                        let na = self.expect_numeric(&ta, "arithmetic")?;
                        let nb = self.expect_numeric(&tb, "arithmetic")?;
                        self.unify(&na, &nb, "arithmetic")
                    }
                    _ => {
                        let na = self.expect_numeric(&ta, "arithmetic")?;
                        let nb = self.expect_numeric(&tb, "arithmetic")?;
                        self.unify(&na, &nb, "arithmetic")
                    }
                }
            }
            Expr::UnOp(op, inner) => {
                let t = self.infer_in(env, inner)?;
                match op {
                    UnOp::Not => {
                        self.unify(&t, &Type::Bool, "not")?;
                        Ok(Type::Bool)
                    }
                    UnOp::Neg => self.expect_numeric(&t, "negation"),
                    UnOp::IsNull => Ok(Type::Bool),
                    UnOp::Element => {
                        let (_, elem) = self.source_monoid(&t, "element")?;
                        Ok(elem)
                    }
                    UnOp::ToBag => {
                        let (_, elem) = self.source_monoid(&t, "to_bag")?;
                        Ok(Type::bag(elem))
                    }
                    UnOp::ToList => {
                        let (_, elem) = self.source_monoid(&t, "to_list")?;
                        Ok(Type::list(elem))
                    }
                    UnOp::ToSet => {
                        let (_, elem) = self.source_monoid(&t, "to_set")?;
                        Ok(Type::set(elem))
                    }
                    UnOp::Reverse => match self.shallow(&t) {
                        ok @ (Type::Vector(_) | Type::Coll(CollKind::List, _)) => Ok(ok),
                        other => Err(TypeError::Mismatch {
                            expected: Type::list(Type::Var(0)),
                            found: other,
                            context: "reverse".into(),
                        }),
                    },
                    UnOp::VecLen => match self.shallow(&t) {
                        Type::Vector(_) | Type::Coll(CollKind::List, _) => Ok(Type::Int),
                        other => Err(TypeError::Mismatch {
                            expected: Type::vector(Type::Var(0)),
                            found: other,
                            context: "veclen".into(),
                        }),
                    },
                }
            }
            Expr::If(c, t, f) => {
                let tc = self.infer_in(env, c)?;
                self.unify(&tc, &Type::Bool, "if condition")?;
                let tt = self.infer_in(env, t)?;
                let tf = self.infer_in(env, f)?;
                self.unify(&tt, &tf, "if branches")
            }
            Expr::Lambda(param, body) => {
                let pt = self.fresh();
                let bt = self.infer_in(&env.bind(*param, pt.clone()), body)?;
                Ok(Type::func(pt, bt))
            }
            Expr::Apply(f, arg) => {
                let ft = self.infer_in(env, f)?;
                let at = self.infer_in(env, arg)?;
                let rt = self.fresh();
                match self.shallow(&ft) {
                    Type::Fn(a, r) => {
                        self.unify(&a, &at, "application argument")?;
                        self.unify(&r, &rt, "application result")?;
                        Ok(rt)
                    }
                    v @ Type::Var(_) => {
                        self.unify(&v, &Type::func(at, rt.clone()), "application")?;
                        Ok(rt)
                    }
                    other => Err(TypeError::NotAFunction {
                        found: other,
                        context: "application".into(),
                    }),
                }
            }
            Expr::Let(v, def, body) => {
                let dt = self.infer_in(env, def)?;
                self.infer_in(&env.bind(*v, dt), body)
            }
            Expr::Zero(m) => match m {
                Monoid::List | Monoid::OSet | Monoid::Sorted | Monoid::SortedBag => {
                    let elem = self.fresh();
                    Ok(Type::list(elem))
                }
                Monoid::Set => Ok(Type::set(self.fresh())),
                Monoid::Bag => Ok(Type::bag(self.fresh())),
                Monoid::Str => Ok(Type::Str),
                Monoid::Sum | Monoid::Prod => Ok(Type::Int),
                Monoid::Max | Monoid::Min => Ok(Type::Null),
                Monoid::Some | Monoid::All => Ok(Type::Bool),
                Monoid::VecOf(_) => Err(TypeError::Other(
                    "zero of a vector monoid requires a size".into(),
                )),
            },
            Expr::Unit(m, inner) => {
                let t = self.infer_in(env, inner)?;
                self.comp_result_type(m, t, "unit")
            }
            Expr::Merge(m, a, b) => {
                let ta = self.infer_in(env, a)?;
                let tb = self.infer_in(env, b)?;
                let t = self.unify(&ta, &tb, "merge")?;
                // Sanity: the merged type must match the monoid's carrier.
                let elem = self.fresh();
                let carrier = match m {
                    Monoid::List | Monoid::OSet | Monoid::Sorted | Monoid::SortedBag => {
                        Some(Type::list(elem))
                    }
                    Monoid::Set => Some(Type::set(elem)),
                    Monoid::Bag => Some(Type::bag(elem)),
                    Monoid::Str => Some(Type::Str),
                    Monoid::Some | Monoid::All => Some(Type::Bool),
                    Monoid::Sum | Monoid::Prod => {
                        self.expect_numeric(&t, "merge")?;
                        None
                    }
                    Monoid::Max | Monoid::Min => None,
                    Monoid::VecOf(_) => {
                        let inner_elem = self.fresh();
                        Some(Type::vector(inner_elem))
                    }
                };
                match carrier {
                    Some(c) => self.unify(&t, &c, "merge carrier"),
                    None => Ok(t),
                }
            }
            Expr::CollLit(m, items) => {
                let mut elem = self.fresh();
                for i in items {
                    let it = self.infer_in(env, i)?;
                    elem = self.unify(&elem, &it, "collection literal")?;
                }
                self.comp_result_type(m, elem, "collection literal")
            }
            Expr::VecLit(items) => {
                let mut elem = self.fresh();
                for i in items {
                    let it = self.infer_in(env, i)?;
                    elem = self.unify(&elem, &it, "vector literal")?;
                }
                Ok(Type::vector(elem))
            }
            Expr::Hom { monoid, var, body, source } => {
                let src_ty = self.infer_in(env, source)?;
                let (n, elem) = self.source_monoid(&src_ty, "hom source")?;
                if !n.hom_legal_to(monoid) {
                    return Err(TypeError::IllegalHomomorphism {
                        from: n,
                        to: monoid.clone(),
                        context: "hom".into(),
                    });
                }
                let bt = self.infer_in(&env.bind(*var, elem), body)?;
                // The body produces M-values which merge to the result; its
                // type *is* the result type, constrained to M's carrier.
                let elem2 = self.fresh();
                let carrier = match monoid {
                    Monoid::List | Monoid::OSet | Monoid::Sorted | Monoid::SortedBag => {
                        Type::list(elem2)
                    }
                    Monoid::Set => Type::set(elem2),
                    Monoid::Bag => Type::bag(elem2),
                    Monoid::Str => Type::Str,
                    Monoid::Some | Monoid::All => Type::Bool,
                    Monoid::Sum | Monoid::Prod => {
                        return self.expect_numeric(&bt, "hom body");
                    }
                    Monoid::Max | Monoid::Min => return Ok(bt),
                    Monoid::VecOf(_) => Type::vector(elem2),
                };
                self.unify(&bt, &carrier, "hom body")
            }
            Expr::Comp { monoid, head, quals } => {
                let inner_env = self.infer_quals(env, quals, monoid)?;
                let ht = self.infer_in(&inner_env, head)?;
                self.comp_result_type(monoid, ht, "comprehension head")
            }
            Expr::VecComp { elem_monoid, size, value, index, quals } => {
                let st = self.infer_in(env, size)?;
                self.unify(&st, &Type::Int, "vector comprehension size")?;
                let out = Monoid::VecOf(Box::new(elem_monoid.clone()));
                let inner_env = self.infer_quals(env, quals, &out)?;
                let it = self.infer_in(&inner_env, index)?;
                self.unify(&it, &Type::Int, "vector comprehension index")?;
                let vt = self.infer_in(&inner_env, value)?;
                let elem_t = match elem_monoid {
                    // Nested `M[n]` element: the head is already a vector.
                    Monoid::VecOf(_) => {
                        let inner = self.fresh();
                        self.unify(&vt, &Type::vector(inner), "vector element")?
                    }
                    _ => self.comp_result_type(elem_monoid, vt, "vector element")?,
                };
                Ok(Type::vector(elem_t))
            }
            Expr::VecIndex(v, i) => {
                let it = self.infer_in(env, i)?;
                self.unify(&it, &Type::Int, "index")?;
                let vt = self.infer_in(env, v)?;
                match self.shallow(&vt) {
                    Type::Vector(elem) | Type::Coll(CollKind::List, elem) => Ok(*elem),
                    tv @ Type::Var(_) => {
                        let elem = self.fresh();
                        self.unify(&tv, &Type::vector(elem.clone()), "index")?;
                        Ok(elem)
                    }
                    other => Err(TypeError::Mismatch {
                        expected: Type::vector(Type::Var(0)),
                        found: other,
                        context: "index".into(),
                    }),
                }
            }
            Expr::New(state) => {
                let st = self.infer_in(env, state)?;
                Ok(Type::obj(st))
            }
            Expr::Deref(inner) => {
                let t = self.infer_in(env, inner)?;
                match self.shallow(&t) {
                    Type::Obj(state) => Ok(*state),
                    Type::Class(c) => self.deref_type(&Type::Class(c), "deref"),
                    tv @ Type::Var(_) => {
                        let state = self.fresh();
                        self.unify(&tv, &Type::obj(state.clone()), "deref")?;
                        Ok(state)
                    }
                    other => Err(TypeError::Mismatch {
                        expected: Type::obj(Type::Var(0)),
                        found: other,
                        context: "deref".into(),
                    }),
                }
            }
            Expr::Assign(target, value) => {
                let tt = self.infer_in(env, target)?;
                let vt = self.infer_in(env, value)?;
                match self.shallow(&tt) {
                    Type::Obj(state) => {
                        self.unify(&state, &vt, "assignment")?;
                        Ok(Type::Bool)
                    }
                    tv @ Type::Var(_) => {
                        self.unify(&tv, &Type::obj(vt), "assignment")?;
                        Ok(Type::Bool)
                    }
                    other => Err(TypeError::Mismatch {
                        expected: Type::obj(Type::Var(0)),
                        found: other,
                        context: "assignment".into(),
                    }),
                }
            }
        }
    }
}

impl Default for TypeChecker<'_> {
    fn default() -> Self {
        TypeChecker::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::ClassDef;

    #[test]
    fn literals_and_arithmetic() {
        assert_eq!(infer(&Expr::int(1).add(Expr::int(2))).unwrap(), Type::Int);
        assert_eq!(
            infer(&Expr::int(1).add(Expr::float(2.0))).unwrap(),
            Type::Float
        );
        assert_eq!(
            infer(&Expr::str("a").add(Expr::str("b"))).unwrap(),
            Type::Str
        );
        assert!(infer(&Expr::int(1).add(Expr::bool(true))).is_err());
    }

    #[test]
    fn comprehension_types() {
        // set{ a | a ← [1,2,3] } : set(int)
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::list_of(vec![Expr::int(1)]))],
        );
        assert_eq!(infer(&e).unwrap(), Type::set(Type::Int));
        // sum over a bag: int.
        let e2 = Expr::comp(
            Monoid::Sum,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::bag_of(vec![Expr::int(1)]))],
        );
        assert_eq!(infer(&e2).unwrap(), Type::Int);
    }

    #[test]
    fn illegal_homomorphism_is_static_error() {
        // sum{ a | a ← {1,2} } — set into sum: rejected.
        let e = Expr::comp(
            Monoid::Sum,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::set_of(vec![Expr::int(1), Expr::int(2)]))],
        );
        assert!(matches!(
            infer(&e),
            Err(TypeError::IllegalHomomorphism { from: Monoid::Set, to: Monoid::Sum, .. })
        ));
    }

    #[test]
    fn set_to_sorted_is_legal() {
        let e = Expr::comp(
            Monoid::Sorted,
            Expr::var("a"),
            vec![Expr::gen("a", Expr::set_of(vec![Expr::int(1)]))],
        );
        assert_eq!(infer(&e).unwrap(), Type::list(Type::Int));
    }

    #[test]
    fn lambda_inference() {
        // λx. x + 1 : int → int
        let e = Expr::lambda("x", Expr::var("x").add(Expr::int(1)));
        assert_eq!(infer(&e).unwrap(), Type::func(Type::Int, Type::Int));
    }

    #[test]
    fn schema_resolves_extents_and_paths() {
        let mut schema = Schema::new();
        schema.add_class(ClassDef {
            name: Symbol::new("City"),
            state: Type::record(vec![
                (Symbol::new("name"), Type::Str),
                (Symbol::new("hotels"), Type::list(Type::Class(Symbol::new("Hotel")))),
            ]),
            extent: Some(Symbol::new("Cities")),
            superclass: None,
        });
        schema.add_class(ClassDef {
            name: Symbol::new("Hotel"),
            state: Type::record(vec![(Symbol::new("name"), Type::Str)]),
            extent: None,
            superclass: None,
        });
        // bag{ h.name | c ← Cities, c.name = "P", h ← c.hotels } : bag(string)
        let e = Expr::comp(
            Monoid::Bag,
            Expr::var("h").proj("name"),
            vec![
                Expr::gen("c", Expr::var("Cities")),
                Expr::pred(Expr::var("c").proj("name").eq(Expr::str("P"))),
                Expr::gen("h", Expr::var("c").proj("hotels")),
            ],
        );
        let mut tc = TypeChecker::with_schema(&schema);
        let t = tc.check(&TypeEnv::new(), &e).unwrap();
        assert_eq!(t, Type::bag(Type::Str));
    }

    #[test]
    fn identity_ops_type() {
        // new(1) : obj(int); !new(1) : int; new(1) := 2 : bool
        assert_eq!(infer(&Expr::new_obj(Expr::int(1))).unwrap(), Type::obj(Type::Int));
        assert_eq!(infer(&Expr::new_obj(Expr::int(1)).deref()).unwrap(), Type::Int);
        assert_eq!(
            infer(&Expr::new_obj(Expr::int(1)).assign(Expr::int(2))).unwrap(),
            Type::Bool
        );
        assert!(infer(&Expr::new_obj(Expr::int(1)).assign(Expr::bool(true))).is_err());
    }

    #[test]
    fn vector_comprehension_types() {
        let e = Expr::vec_comp(
            Monoid::Sum,
            Expr::int(4),
            Expr::var("a"),
            Expr::var("i"),
            vec![Expr::vec_gen("a", "i", Expr::VecLit(vec![Expr::int(1)]))],
        );
        assert_eq!(infer(&e).unwrap(), Type::vector(Type::Int));
    }

    #[test]
    fn predicates_must_be_boolean() {
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("a"),
            vec![
                Expr::gen("a", Expr::list_of(vec![Expr::int(1)])),
                Expr::pred(Expr::int(3)),
            ],
        );
        assert!(infer(&e).is_err());
    }

    #[test]
    fn quantifier_comprehensions_are_boolean() {
        let e = Expr::comp(
            Monoid::Some,
            Expr::var("a").gt(Expr::int(0)),
            vec![Expr::gen("a", Expr::set_of(vec![Expr::int(1)]))],
        );
        assert_eq!(infer(&e).unwrap(), Type::Bool);
    }

    #[test]
    fn if_branches_unify_with_null() {
        let e = Expr::if_(Expr::bool(true), Expr::int(1), Expr::null());
        assert_eq!(infer(&e).unwrap(), Type::Int);
    }

    #[test]
    fn subclass_unification() {
        let mut schema = Schema::new();
        schema.add_class(ClassDef {
            name: Symbol::new("Person2"),
            state: Type::record(vec![(Symbol::new("name"), Type::Str)]),
            extent: None,
            superclass: None,
        });
        schema.add_class(ClassDef {
            name: Symbol::new("Employee2"),
            state: Type::record(vec![(Symbol::new("salary"), Type::Int)]),
            extent: None,
            superclass: Some(Symbol::new("Person2")),
        });
        let mut tc = TypeChecker::with_schema(&schema);
        let t = tc
            .unify(
                &Type::Class(Symbol::new("Employee2")),
                &Type::Class(Symbol::new("Person2")),
                "test",
            )
            .unwrap();
        assert_eq!(t, Type::Class(Symbol::new("Person2")));
    }
}
