//! # monoid-calculus
//!
//! A complete implementation of the **monoid comprehension calculus** from
//! Leonidas Fegaras and David Maier, *Towards an Effective Calculus for
//! Object Query Languages*, SIGMOD 1995.
//!
//! The calculus is a processing framework for object-oriented query
//! languages (OQL of ODMG-93 in particular). Its single bulk operator — the
//! *monoid homomorphism* — uniformly captures queries over multiple
//! collection types (sets, bags, lists, ordered sets, sorted lists,
//! strings), aggregations (`sum`, `max`, …), quantifiers (`some`, `all`),
//! vectors and arrays (§4.1), and object identity and updates (§4.2).
//! Monoid *comprehensions* are the surface syntax for homomorphisms, and a
//! small pattern-based rewrite system (§3.1, Table 3) normalizes any
//! composition of comprehensions into a canonical form that maximizes
//! pipelining.
//!
//! ## Crate layout
//!
//! * [`monoid`] — Table 1: the monoids, their C/I properties, and the `≤`
//!   legality relation for homomorphisms.
//! * [`types`] + [`typecheck`] — the type language and inference, enforcing
//!   the C/I restriction statically.
//! * [`expr`] — the term language (comprehensions, homomorphisms, vector
//!   comprehensions, `new`/`!`/`:=`).
//! * [`value`] + [`heap`] + [`eval`] — canonical runtime values, the object
//!   heap, and the evaluator (state-transformer semantics for updates).
//! * [`subst`] — capture-avoiding substitution.
//! * [`normalize`] — the Table 3 rewrite system with rule-by-rule traces.
//! * [`sru`] — the SRU baseline the paper argues against (§5), with
//!   dynamic law probing demonstrating why its obligations are
//!   impractical to discharge.
//! * [`pretty`] + [`parse`] — paper-notation printing and parsing
//!   (`parse(pretty(e)) = e` on the comprehension fragment).
//! * [`trace`] + [`json`] — query-lifecycle timing shared with the front
//!   and back ends, and the dependency-free JSON writer that serializes
//!   profiles.
//! * [`analysis`] — static analysis: effect inference ([`analysis::effects`]),
//!   the per-rewrite stage invariant verifier ([`analysis::verify`]), and
//!   the MC001–MC006 lint pass ([`analysis::lint`]) behind `oqlint`
//!   (`docs/analysis.md`).
//! * [`metrics`] — the process-wide registry of counters, gauges, and
//!   log-bucketed latency histograms every layer records into, with
//!   Prometheus text and JSON exporters (`docs/observability.md`).
//! * [`recorder`] — the process-wide query flight recorder: a
//!   fixed-capacity ring of per-query [`recorder::QueryRecord`]s plus
//!   the slow-query capture log, fed by the serving and algebra layers
//!   (`docs/observability.md`).
//!
//! ## Quick taste
//!
//! ```
//! use monoid_calculus::prelude::*;
//!
//! // set{ (a,b) | a ← [1,2,3], b ← {{4,5}} }  — a list joined with a bag,
//! // returning a set (the paper's first worked example).
//! let q = Expr::comp(
//!     Monoid::Set,
//!     Expr::Tuple(vec![Expr::var("a"), Expr::var("b")]),
//!     vec![
//!         Expr::gen("a", Expr::list_of(vec![Expr::int(1), Expr::int(2), Expr::int(3)])),
//!         Expr::gen("b", Expr::bag_of(vec![Expr::int(4), Expr::int(5)])),
//!     ],
//! );
//! let result = eval_closed(&q).unwrap();
//! assert_eq!(result.len().unwrap(), 6);
//! ```

pub mod analysis;
pub mod error;
pub mod eval;
pub mod expr;
pub mod heap;
pub mod json;
pub mod metrics;
pub mod monoid;
pub mod normalize;
pub mod parse;
pub mod pretty;
pub mod recorder;
pub mod sru;
pub mod subst;
pub mod symbol;
pub mod trace;
pub mod typecheck;
pub mod types;
pub mod value;

/// Convenient glob-import of the common API surface.
pub mod prelude {
    pub use crate::analysis::{
        effects_of, lint, AnalysisReport, Code, Diagnostic, EffectSummary, Effects, Severity,
        Span, SpanMap, VerifyError,
    };
    pub use crate::error::{EvalError, EvalResult, TypeError, TypeResult};
    pub use crate::eval::{eval_closed, Evaluator};
    pub use crate::expr::{BinOp, Expr, Literal, Qual, UnOp};
    pub use crate::heap::Heap;
    pub use crate::monoid::{Monoid, Props};
    pub use crate::json::Json;
    pub use crate::metrics::{Counter, Gauge, Histogram, Registry, Snapshot};
    pub use crate::normalize::{normalize, normalize_traced, NormalizeStats, Rule, TraceStep};
    pub use crate::trace::{Phase, PhaseTiming, QueryTrace};
    pub use crate::parse::parse_expr;
    pub use crate::pretty::{pretty, Pretty};
    pub use crate::recorder::{CacheDisposition, FlightRecorder, QueryRecord, SlowQueryCapture};
    pub use crate::subst::{free_vars, subst};
    pub use crate::symbol::Symbol;
    pub use crate::typecheck::{infer, TypeChecker};
    pub use crate::types::{ClassDef, CollKind, Schema, Type};
    pub use crate::value::{Env, Oid, Value};
}
