//! A minimal JSON document model and writer.
//!
//! The build environment vendors no serialization framework, so the few
//! places that emit machine-readable output (query profiles, bench
//! reports) build a [`Json`] value and render it. Only output is needed —
//! there is deliberately no parser.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    /// Rendered with enough precision to round-trip; non-finite values
    /// render as `null` (JSON has no NaN/∞).
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object — key order is stable in the output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render as a compact single-line JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Escape `s` for embedding inside a double-quoted string literal:
/// backslash-escapes `"`, `\`, `\n`, `\r`, `\t`, and `\u00XX` for other
/// control characters. This one helper backs both the JSON writer and
/// the Prometheus label-value escaping in [`crate::metrics`] — the
/// escape sets agree on everything a metric or operator label can
/// contain, so sharing it keeps the two exporters from drifting.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh `String` (convenience for tests
/// and callers without a buffer in hand).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Counts in this codebase are far below i64::MAX; saturate rather
        // than wrap if one ever is not.
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<u128> for Json {
    fn from(n: u128) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let j = Json::obj(vec![
            ("name", Json::str("scan")),
            ("rows", Json::Int(42)),
            ("sel", Json::Float(0.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"scan","rows":42,"sel":0.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn shared_escape_helper_covers_both_exporters() {
        // The same helper backs JSON strings and Prometheus label
        // values: quotes, backslashes, newlines, tabs, controls.
        assert_eq!(escape_str("plain"), "plain");
        assert_eq!(escape_str("a\"b"), "a\\\"b");
        assert_eq!(escape_str("back\\slash"), "back\\\\slash");
        assert_eq!(escape_str("line\nbreak\ttab\rcr"), "line\\nbreak\\ttab\\rcr");
        assert_eq!(escape_str("\u{2}"), "\\u0002");
        // Unicode (operator labels use ← and ⟨⟩) passes through raw.
        assert_eq!(escape_str("Scan c ← Cities"), "Scan c ← Cities");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj(vec![("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        assert_eq!(j.render_pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }
}
