//! A minimal JSON document model, writer, and reader.
//!
//! The build environment vendors no serialization framework, so the few
//! places that emit machine-readable output (query profiles, bench
//! reports, recorder journals) build a [`Json`] value and render it.
//! [`Json::parse`] is the matching reader — a small recursive-descent
//! parser that exists so tools can consume their own output (the bench
//! regression gate diffs a fresh run against a committed baseline file,
//! and `oqltop` replays dumped journals).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Int(i64),
    /// Rendered with enough precision to round-trip; non-finite values
    /// render as `null` (JSON has no NaN/∞).
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Insertion-ordered object — key order is stable in the output.
    Obj(Vec<(String, Json)>),
}

impl Json {
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Render as a compact single-line JSON document.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Render with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out
    }

    /// Parse a JSON document. Integers without a fraction or exponent
    /// that fit `i64` become [`Json::Int`]; everything else numeric
    /// becomes [`Json::Float`]. Errors carry a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos < p.bytes.len() {
            return Err(format!("trailing content at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` for non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// Numeric value as `f64` (accepts both [`Json::Int`] and
    /// [`Json::Float`] — bench reports mix the two).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(x) => Some(*x),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => write_float(out, *x),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_float(out: &mut String, x: f64) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    escape_into(out, s);
    out.push('"');
}

/// Escape `s` for embedding inside a double-quoted string literal:
/// backslash-escapes `"`, `\`, `\n`, `\r`, `\t`, and `\u00XX` for other
/// control characters. This one helper backs both the JSON writer and
/// the Prometheus label-value escaping in [`crate::metrics`] — the
/// escape sets agree on everything a metric or operator label can
/// contain, so sharing it keeps the two exporters from drifting.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// [`escape_into`] returning a fresh `String` (convenience for tests
/// and callers without a buffer in hand).
pub fn escape_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    escape_into(&mut out, s);
    out
}

/// Nesting depth beyond which [`Json::parse`] refuses to recurse — a
/// guard against stack exhaustion on adversarial input, far above any
/// document this codebase emits.
const MAX_PARSE_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_PARSE_DEPTH {
            return Err(format!("nesting deeper than {MAX_PARSE_DEPTH} at byte {}", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Json::Null),
            Some(b't') => self.eat_literal("true", Json::Bool(true)),
            Some(b'f') => self.eat_literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy the longest run without escapes or quotes.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.escape(&mut out)?;
                }
                _ => return Err(format!("unterminated string at byte {}", self.pos)),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), String> {
        let Some(b) = self.peek() else {
            return Err("unexpected end of input in escape".to_string());
        };
        self.pos += 1;
        match b {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'u' => {
                let hi = self.hex4()?;
                let c = if (0xD800..0xDC00).contains(&hi) {
                    // Surrogate pair: the low half must follow as \uXXXX.
                    if !self.bytes[self.pos..].starts_with(b"\\u") {
                        return Err(format!("lone high surrogate at byte {}", self.pos));
                    }
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(format!("invalid low surrogate at byte {}", self.pos));
                    }
                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(code)
                } else {
                    char::from_u32(hi)
                };
                out.push(c.ok_or_else(|| format!("invalid code point at byte {}", self.pos))?);
            }
            other => return Err(format!("bad escape `\\{}` at byte {}", other as char, self.pos)),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        let hex = self
            .bytes
            .get(self.pos..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let n = u32::from_str_radix(hex, 16)
            .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
        self.pos = end;
        Ok(n)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII digits");
        if !is_float {
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Json::Int(n));
            }
        }
        text.parse::<f64>()
            .map(Json::Float)
            .map_err(|_| format!("bad number `{text}` at byte {start}"))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<i64> for Json {
    fn from(n: i64) -> Json {
        Json::Int(n)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        // Counts in this codebase are far below i64::MAX; saturate rather
        // than wrap if one ever is not.
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<u128> for Json {
    fn from(n: u128) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(i64::try_from(n).unwrap_or(i64::MAX))
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let j = Json::obj(vec![
            ("name", Json::str("scan")),
            ("rows", Json::Int(42)),
            ("sel", Json::Float(0.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(
            j.render(),
            r#"{"name":"scan","rows":42,"sel":0.5,"flags":[true,null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let j = Json::str("a\"b\\c\nd\u{1}");
        assert_eq!(j.render(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn shared_escape_helper_covers_both_exporters() {
        // The same helper backs JSON strings and Prometheus label
        // values: quotes, backslashes, newlines, tabs, controls.
        assert_eq!(escape_str("plain"), "plain");
        assert_eq!(escape_str("a\"b"), "a\\\"b");
        assert_eq!(escape_str("back\\slash"), "back\\\\slash");
        assert_eq!(escape_str("line\nbreak\ttab\rcr"), "line\\nbreak\\ttab\\rcr");
        assert_eq!(escape_str("\u{2}"), "\\u0002");
        // Unicode (operator labels use ← and ⟨⟩) passes through raw.
        assert_eq!(escape_str("Scan c ← Cities"), "Scan c ← Cities");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::Float(f64::NAN).render(), "null");
        assert_eq!(Json::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let j = Json::obj(vec![("xs", Json::Arr(vec![Json::Int(1), Json::Int(2)]))]);
        assert_eq!(j.render_pretty(), "{\n  \"xs\": [\n    1,\n    2\n  ]\n}");
    }

    #[test]
    fn parse_round_trips_rendered_documents() {
        let j = Json::obj(vec![
            ("name", Json::str("Scan c ← Cities")),
            ("rows", Json::Int(-42)),
            ("sel", Json::Float(0.5)),
            ("flags", Json::Arr(vec![Json::Bool(true), Json::Null])),
            ("nested", Json::obj(vec![("escaped", Json::str("a\"b\\c\nd\u{1}"))])),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        assert_eq!(Json::parse(&j.render()).unwrap(), j);
        assert_eq!(Json::parse(&j.render_pretty()).unwrap(), j);
    }

    #[test]
    fn parse_distinguishes_ints_from_floats() {
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
        assert_eq!(Json::parse("-7").unwrap(), Json::Int(-7));
        assert_eq!(Json::parse("7.5").unwrap(), Json::Float(7.5));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        // i64 overflow degrades to float rather than erroring.
        assert_eq!(
            Json::parse("99999999999999999999").unwrap(),
            Json::Float(1e20)
        );
    }

    #[test]
    fn parse_handles_unicode_escapes() {
        assert_eq!(Json::parse(r#""←""#).unwrap(), Json::str("←"));
        // Surrogate pair for 𝄞 (U+1D11E).
        assert_eq!(Json::parse(r#""𝄞""#).unwrap(), Json::str("𝄞"));
        assert!(Json::parse(r#""\ud834""#).is_err(), "lone surrogate rejected");
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"k\":}", "tru", "\"open", "[1] junk", "{'k':1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parse_caps_nesting_depth() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
        let ok = "[".repeat(50) + &"]".repeat(50);
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn accessors_select_by_shape() {
        let j = Json::parse(r#"{"a": 1, "b": "x", "c": [true], "d": 2.5}"#).unwrap();
        assert_eq!(j.get("a").and_then(Json::as_i64), Some(1));
        assert_eq!(j.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(j.get("a").and_then(Json::as_f64), Some(1.0));
        assert_eq!(j.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(j.get("c").and_then(Json::as_arr).map(<[Json]>::len), Some(1));
        assert_eq!(j.get("d").and_then(Json::as_f64), Some(2.5));
        assert_eq!(j.get("missing"), None);
        assert_eq!(Json::Int(-1).as_u64(), None, "negative is not u64");
        assert_eq!(Json::Str("s".into()).as_i64(), None);
    }
}
