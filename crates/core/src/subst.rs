//! Free variables and capture-avoiding substitution.
//!
//! The paper's variable-binding convention is
//! `M{ e | q, x ← u, s } = M{ e[u/x] | q, s[u/x] }` — substitution is how
//! both the semantics and the normalization rules (Table 3) are stated, so
//! it must be exactly right. Binders are: `λv.e`, `let v = e1 in e2`,
//! `hom[→M](λv.e)(u)`, and comprehension qualifiers `v ← e` / `v ≡ e` /
//! `a[i] ← e` (each scopes over the *following* qualifiers and the head).
//!
//! Rules 5 and 6 of Table 3 "may require some variable renaming to avoid
//! name conflicts" — [`subst`] renames bound variables to fresh symbols
//! whenever they would capture a free variable of the replacement.

use crate::expr::{Expr, Qual};
use crate::symbol::Symbol;
use std::collections::HashSet;

/// The free variables of `e`.
pub fn free_vars(e: &Expr) -> HashSet<Symbol> {
    let mut out = HashSet::new();
    collect_free(e, &mut HashSet::new(), &mut out);
    out
}

fn collect_free(e: &Expr, bound: &mut HashSet<Symbol>, out: &mut HashSet<Symbol>) {
    match e {
        Expr::Var(v) => {
            if !bound.contains(v) {
                out.insert(*v);
            }
        }
        Expr::Lit(_) | Expr::Param(_) | Expr::Zero(_) => {}
        Expr::Record(fields) => {
            for (_, fe) in fields {
                collect_free(fe, bound, out);
            }
        }
        Expr::Tuple(items) | Expr::CollLit(_, items) | Expr::VecLit(items) => {
            for i in items {
                collect_free(i, bound, out);
            }
        }
        Expr::Proj(inner, _) | Expr::TupleProj(inner, _) | Expr::UnOp(_, inner)
        | Expr::Unit(_, inner) | Expr::New(inner) | Expr::Deref(inner) => {
            collect_free(inner, bound, out);
        }
        Expr::BinOp(_, a, b)
        | Expr::Apply(a, b)
        | Expr::Merge(_, a, b)
        | Expr::VecIndex(a, b)
        | Expr::Assign(a, b) => {
            collect_free(a, bound, out);
            collect_free(b, bound, out);
        }
        Expr::If(c, t, f) => {
            collect_free(c, bound, out);
            collect_free(t, bound, out);
            collect_free(f, bound, out);
        }
        Expr::Lambda(param, body) => {
            let fresh = bound.insert(*param);
            collect_free(body, bound, out);
            if fresh {
                bound.remove(param);
            }
        }
        Expr::Let(v, def, body) => {
            collect_free(def, bound, out);
            let fresh = bound.insert(*v);
            collect_free(body, bound, out);
            if fresh {
                bound.remove(v);
            }
        }
        Expr::Hom { var, body, source, .. } => {
            collect_free(source, bound, out);
            let fresh = bound.insert(*var);
            collect_free(body, bound, out);
            if fresh {
                bound.remove(var);
            }
        }
        Expr::Comp { head, quals, .. } => {
            collect_free_quals(quals, head, None, bound, out);
        }
        Expr::VecComp { size, value, index, quals, .. } => {
            collect_free(size, bound, out);
            collect_free_quals(quals, value, Some(index), bound, out);
        }
    }
}

/// Qualifiers scope left-to-right over the rest and the head(s).
fn collect_free_quals(
    quals: &[Qual],
    head: &Expr,
    extra_head: Option<&Expr>,
    bound: &mut HashSet<Symbol>,
    out: &mut HashSet<Symbol>,
) {
    let mut newly_bound: Vec<Symbol> = Vec::new();
    for q in quals {
        match q {
            Qual::Gen(v, src) | Qual::Bind(v, src) => {
                collect_free(src, bound, out);
                if bound.insert(*v) {
                    newly_bound.push(*v);
                }
            }
            Qual::VecGen { elem, index, source } => {
                collect_free(source, bound, out);
                if bound.insert(*elem) {
                    newly_bound.push(*elem);
                }
                if bound.insert(*index) {
                    newly_bound.push(*index);
                }
            }
            Qual::Pred(p) => collect_free(p, bound, out),
        }
    }
    collect_free(head, bound, out);
    if let Some(extra) = extra_head {
        collect_free(extra, bound, out);
    }
    for v in newly_bound {
        bound.remove(&v);
    }
}

/// Capture-avoiding substitution `e[replacement / var]`.
pub fn subst(e: &Expr, var: Symbol, replacement: &Expr) -> Expr {
    // Fast path: nothing to do if `var` is not free in `e`.
    if !free_vars(e).contains(&var) {
        return e.clone();
    }
    let repl_fv = free_vars(replacement);
    subst_inner(e, var, replacement, &repl_fv)
}

fn subst_inner(e: &Expr, var: Symbol, repl: &Expr, repl_fv: &HashSet<Symbol>) -> Expr {
    let go = |x: &Expr| subst_inner(x, var, repl, repl_fv);
    match e {
        Expr::Var(v) if *v == var => repl.clone(),
        Expr::Var(_) | Expr::Lit(_) | Expr::Param(_) | Expr::Zero(_) => e.clone(),
        Expr::Record(fields) => {
            Expr::Record(fields.iter().map(|(n, fe)| (*n, go(fe))).collect())
        }
        Expr::Tuple(items) => Expr::Tuple(items.iter().map(go).collect()),
        Expr::CollLit(m, items) => Expr::CollLit(m.clone(), items.iter().map(go).collect()),
        Expr::VecLit(items) => Expr::VecLit(items.iter().map(go).collect()),
        Expr::Proj(inner, f) => Expr::Proj(Box::new(go(inner)), *f),
        Expr::TupleProj(inner, i) => Expr::TupleProj(Box::new(go(inner)), *i),
        Expr::UnOp(op, inner) => Expr::UnOp(*op, Box::new(go(inner))),
        Expr::Unit(m, inner) => Expr::Unit(m.clone(), Box::new(go(inner))),
        Expr::New(inner) => Expr::New(Box::new(go(inner))),
        Expr::Deref(inner) => Expr::Deref(Box::new(go(inner))),
        Expr::BinOp(op, a, b) => Expr::BinOp(*op, Box::new(go(a)), Box::new(go(b))),
        Expr::Apply(a, b) => Expr::Apply(Box::new(go(a)), Box::new(go(b))),
        Expr::Merge(m, a, b) => Expr::Merge(m.clone(), Box::new(go(a)), Box::new(go(b))),
        Expr::VecIndex(a, b) => Expr::VecIndex(Box::new(go(a)), Box::new(go(b))),
        Expr::Assign(a, b) => Expr::Assign(Box::new(go(a)), Box::new(go(b))),
        Expr::If(c, t, f) => Expr::If(Box::new(go(c)), Box::new(go(t)), Box::new(go(f))),
        Expr::Lambda(param, body) => {
            if *param == var {
                e.clone() // shadowed
            } else if repl_fv.contains(param) {
                // α-rename to avoid capturing a free var of the replacement.
                let fresh = Symbol::fresh(param.as_str());
                let renamed = subst(body, *param, &Expr::Var(fresh));
                Expr::Lambda(fresh, Box::new(go(&renamed)))
            } else {
                Expr::Lambda(*param, Box::new(go(body)))
            }
        }
        Expr::Let(v, def, body) => {
            let def2 = go(def);
            if *v == var {
                Expr::Let(*v, Box::new(def2), body.clone())
            } else if repl_fv.contains(v) {
                let fresh = Symbol::fresh(v.as_str());
                let renamed = subst(body, *v, &Expr::Var(fresh));
                Expr::Let(fresh, Box::new(def2), Box::new(go(&renamed)))
            } else {
                Expr::Let(*v, Box::new(def2), Box::new(go(body)))
            }
        }
        Expr::Hom { monoid, var: hv, body, source } => {
            let source2 = go(source);
            if *hv == var {
                Expr::Hom {
                    monoid: monoid.clone(),
                    var: *hv,
                    body: body.clone(),
                    source: Box::new(source2),
                }
            } else if repl_fv.contains(hv) {
                let fresh = Symbol::fresh(hv.as_str());
                let renamed = subst(body, *hv, &Expr::Var(fresh));
                Expr::Hom {
                    monoid: monoid.clone(),
                    var: fresh,
                    body: Box::new(go(&renamed)),
                    source: Box::new(source2),
                }
            } else {
                Expr::Hom {
                    monoid: monoid.clone(),
                    var: *hv,
                    body: Box::new(go(body)),
                    source: Box::new(source2),
                }
            }
        }
        Expr::Comp { monoid, head, quals } => {
            let (quals2, head2, _) =
                subst_quals(quals, head, None, var, repl, repl_fv);
            Expr::Comp { monoid: monoid.clone(), head: Box::new(head2), quals: quals2 }
        }
        Expr::VecComp { elem_monoid, size, value, index, quals } => {
            let size2 = go(size);
            let (quals2, value2, index2) =
                subst_quals(quals, value, Some(index), var, repl, repl_fv);
            Expr::VecComp {
                elem_monoid: elem_monoid.clone(),
                size: Box::new(size2),
                value: Box::new(value2),
                index: Box::new(index2.expect("extra head present")),
                quals: quals2,
            }
        }
    }
}

/// Substitute through a qualifier list: sources are substituted until a
/// qualifier (re)binds `var`; binders whose names collide with the
/// replacement's free variables are α-renamed in the remainder.
fn subst_quals(
    quals: &[Qual],
    head: &Expr,
    extra_head: Option<&Expr>,
    var: Symbol,
    repl: &Expr,
    repl_fv: &HashSet<Symbol>,
) -> (Vec<Qual>, Expr, Option<Expr>) {
    let mut out: Vec<Qual> = Vec::with_capacity(quals.len());
    // Work on owned copies so α-renaming can rewrite the tail.
    let mut rest: Vec<Qual> = quals.to_vec();
    let mut head = head.clone();
    let mut extra = extra_head.cloned();
    let mut i = 0;
    while i < rest.len() {
        let q = rest[i].clone();
        match q {
            Qual::Pred(p) => {
                out.push(Qual::Pred(subst_inner(&p, var, repl, repl_fv)));
                i += 1;
            }
            Qual::Gen(v, ref src) | Qual::Bind(v, ref src) => {
                let is_gen = matches!(q, Qual::Gen(..));
                let src2 = subst_inner(src, var, repl, repl_fv);
                let rebuild = move |v: Symbol, s: Expr| {
                    if is_gen {
                        Qual::Gen(v, s)
                    } else {
                        Qual::Bind(v, s)
                    }
                };
                if v == var {
                    // Shadowed: stop substituting in the tail.
                    out.push(rebuild(v, src2));
                    out.extend_from_slice(&rest[i + 1..]);
                    return (out, head, extra);
                }
                if repl_fv.contains(&v) {
                    let fresh = Symbol::fresh(v.as_str());
                    rename_tail(&mut rest[i + 1..], &mut head, extra.as_mut(), v, fresh);
                    out.push(rebuild(fresh, src2));
                } else {
                    out.push(rebuild(v, src2));
                }
                i += 1;
            }
            Qual::VecGen { elem, index, source } => {
                let src2 = subst_inner(&source, var, repl, repl_fv);
                if elem == var || index == var {
                    out.push(Qual::VecGen { elem, index, source: src2 });
                    out.extend_from_slice(&rest[i + 1..]);
                    return (out, head, extra);
                }
                let mut elem2 = elem;
                let mut index2 = index;
                if repl_fv.contains(&elem) {
                    let fresh = Symbol::fresh(elem.as_str());
                    rename_tail(&mut rest[i + 1..], &mut head, extra.as_mut(), elem, fresh);
                    elem2 = fresh;
                }
                if repl_fv.contains(&index) {
                    let fresh = Symbol::fresh(index.as_str());
                    rename_tail(&mut rest[i + 1..], &mut head, extra.as_mut(), index, fresh);
                    index2 = fresh;
                }
                out.push(Qual::VecGen { elem: elem2, index: index2, source: src2 });
                i += 1;
            }
        }
    }
    let head2 = subst_inner(&head, var, repl, repl_fv);
    let extra2 = extra.map(|e| subst_inner(&e, var, repl, repl_fv));
    (out, head2, extra2)
}

/// Rename every free occurrence of `old` to `new` in a qualifier tail and
/// head(s). Exposed to the normalizer, which must rename the binders of an
/// inner comprehension when splicing its qualifiers into an outer one
/// (Table 3 rules 5 and 6 "may require some variable renaming").
pub(crate) fn rename_tail(
    tail: &mut [Qual],
    head: &mut Expr,
    extra: Option<&mut Expr>,
    old: Symbol,
    new: Symbol,
) {
    let new_var = Expr::Var(new);
    let mut shadowed = false;
    for q in tail.iter_mut() {
        if shadowed {
            break;
        }
        match q {
            Qual::Pred(p) => *p = subst(p, old, &new_var),
            Qual::Gen(v, src) | Qual::Bind(v, src) => {
                *src = subst(src, old, &new_var);
                if *v == old {
                    shadowed = true;
                }
            }
            Qual::VecGen { elem, index, source } => {
                *source = subst(source, old, &new_var);
                if *elem == old || *index == old {
                    shadowed = true;
                }
            }
        }
    }
    if !shadowed {
        *head = subst(head, old, &new_var);
        if let Some(extra) = extra {
            *extra = subst(extra, old, &new_var);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::monoid::Monoid;

    fn s(name: &str) -> Symbol {
        Symbol::new(name)
    }

    #[test]
    fn free_vars_respects_lambda_binding() {
        let e = Expr::lambda("x", Expr::var("x").add(Expr::var("y")));
        let fv = free_vars(&e);
        assert!(fv.contains(&s("y")));
        assert!(!fv.contains(&s("x")));
    }

    #[test]
    fn free_vars_respects_qualifier_scoping() {
        // set{ x + z | x ← xs, y ← f(x), y > 0 }
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("x").add(Expr::var("z")),
            vec![
                Expr::gen("x", Expr::var("xs")),
                Expr::gen("y", Expr::var("f").apply(Expr::var("x"))),
                Expr::pred(Expr::var("y").gt(Expr::int(0))),
            ],
        );
        let fv = free_vars(&e);
        assert_eq!(
            fv,
            [s("z"), s("xs"), s("f")].into_iter().collect::<HashSet<_>>()
        );
    }

    #[test]
    fn subst_replaces_free_occurrences_only() {
        // (λx. x + y)[x := 5] leaves the bound x alone;
        // (λx. x + y)[y := 5] substitutes.
        let e = Expr::lambda("x", Expr::var("x").add(Expr::var("y")));
        assert_eq!(subst(&e, s("x"), &Expr::int(5)), e);
        let e2 = subst(&e, s("y"), &Expr::int(5));
        assert_eq!(e2, Expr::lambda("x", Expr::var("x").add(Expr::int(5))));
    }

    #[test]
    fn subst_avoids_capture_in_lambda() {
        // (λx. x + y)[y := x]  must NOT become λx. x + x.
        let e = Expr::lambda("x", Expr::var("x").add(Expr::var("y")));
        let r = subst(&e, s("y"), &Expr::var("x"));
        match r {
            Expr::Lambda(p, body) => {
                assert_ne!(p, s("x"), "binder must be renamed");
                assert_eq!(*body, Expr::var(p.as_str()).add(Expr::var("x")));
            }
            other => panic!("expected lambda, got {other:?}"),
        }
    }

    #[test]
    fn subst_stops_at_shadowing_generator() {
        // set{ x | x ← x }[x := ys]: only the source is free.
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::var("x"))],
        );
        let r = subst(&e, s("x"), &Expr::var("ys"));
        let expected = Expr::comp(
            Monoid::Set,
            Expr::var("x"),
            vec![Expr::gen("x", Expr::var("ys"))],
        );
        assert_eq!(r, expected);
    }

    #[test]
    fn subst_avoids_capture_in_generator() {
        // set{ (v, w) | v ← xs }[w := v]  must rename the generator's v.
        let e = Expr::comp(
            Monoid::Set,
            Expr::Tuple(vec![Expr::var("v"), Expr::var("w")]),
            vec![Expr::gen("v", Expr::var("xs"))],
        );
        let r = subst(&e, s("w"), &Expr::var("v"));
        match &r {
            Expr::Comp { quals, head, .. } => {
                let Qual::Gen(fresh, _) = &quals[0] else { panic!() };
                assert_ne!(*fresh, s("v"));
                assert_eq!(
                    **head,
                    Expr::Tuple(vec![Expr::var(fresh.as_str()), Expr::var("v")])
                );
            }
            other => panic!("expected comp, got {other:?}"),
        }
    }

    #[test]
    fn subst_into_let_body_respects_shadow() {
        // (let x = y in x)[x := 1] → unchanged body; def substituted for y.
        let e = Expr::let_("x", Expr::var("y"), Expr::var("x"));
        assert_eq!(subst(&e, s("x"), &Expr::int(1)), e);
        let r = subst(&e, s("y"), &Expr::int(7));
        assert_eq!(r, Expr::let_("x", Expr::int(7), Expr::var("x")));
    }

    #[test]
    fn rename_tail_stops_at_shadowing() {
        // set{ v | v ← a, v ← b, p(v) }[a := v-free? ] — renaming the first
        // binder must not touch occurrences bound by the second.
        let e = Expr::comp(
            Monoid::Set,
            Expr::var("v"),
            vec![
                Expr::gen("v", Expr::var("src")),
                Expr::gen("v", Expr::var("other")),
            ],
        );
        // substitute src := v ⇒ the first generator's binder is renamed so
        // the replacement `v` is not captured; the result must be
        // α-equivalent: head refers to the *second* generator's binder.
        let r = subst(&e, s("src"), &Expr::var("v"));
        match &r {
            Expr::Comp { quals, head, .. } => {
                let Qual::Gen(v1, s1) = &quals[0] else { panic!() };
                assert_ne!(*v1, s("v"), "first binder renamed");
                assert_eq!(*s1, Expr::var("v"), "replacement inserted un-captured");
                let Qual::Gen(v2, s2) = &quals[1] else { panic!() };
                assert_eq!(*s2, Expr::var("other"));
                assert_ne!(*v2, *v1, "binders stay distinct");
                // The head must refer to the second binder (possibly
                // α-renamed alongside it).
                assert_eq!(**head, Expr::Var(*v2));
            }
            other => panic!("expected comp, got {other:?}"),
        }
    }
}
