//! # monoid-vector
//!
//! Vectors and arrays as monoids — the paper's §4.1 extension, as a
//! library.
//!
//! The lifted monoid `M[n]` (fixed-size vectors merged pointwise by `M`,
//! `unit(a, i)` a sparse one-hot vector) lives in `monoid-calculus`; this
//! crate builds the §4.1 programs on top of it:
//!
//! * [`ops`] — reverse (`sum[n]{ a [n−i−1] | a[i] ← x }`, the paper's
//!   example), permute/gather, rotate, histogram, inner product, and the
//!   `M[n]` merges themselves (pointwise add / max).
//! * [`matrix`] — matrices as `vector(vector(number))`: matrix–vector and
//!   matrix–matrix products and transpose as nested comprehensions, with
//!   plain-Rust references for cross-checking.
//! * [`fft`](mod@fft) — the Fourier transform as a query (Buneman \[7\]): the DFT as
//!   a single `sum[n]` comprehension over a twiddle-factor vector, plus a
//!   native radix-2 FFT used as the `O(n log n)` reference in benchmark
//!   B4.

pub mod fft;
pub mod matrix;
pub mod ops;

pub use fft::{dft_query, dft_reference, dft_via_query, fft, ifft, Complex};
pub use matrix::{matmul_expr, matmul_reference, matvec_expr, transpose_expr};
pub use ops::{
    eval_vector, histogram_expr, inner_product_expr, permute_expr, reverse_expr, rotate_expr,
};
