//! Matrices as vectors of vectors — §4.1's "arbitrary composition of type
//! constructors" applied to numerics.
//!
//! A matrix is a `vector(vector(number))`. Matrix–vector and
//! matrix–matrix products are nested comprehensions: the inner `sum`
//! comprehension is an inner product, the outer vector comprehension
//! scatters one result per row index. `transpose` is the index-swap
//! comprehension — something relational algebras cannot express without
//! special operators, which is the paper's §4.1 motivation.

use crate::ops::{eval_vector, range};
use monoid_calculus::error::{EvalError, EvalResult};
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::value::Value;

/// Build a matrix literal expression (row major).
pub fn int_matrix(rows: &[Vec<i64>]) -> Expr {
    Expr::VecLit(
        rows.iter()
            .map(|r| Expr::VecLit(r.iter().map(|&v| Expr::int(v)).collect()))
            .collect(),
    )
}

/// Matrix–vector product: `out[i] = sum{ row[j] * v[j] | row[i] ← m, … }`.
pub fn matvec_expr(m: Expr, v: Expr, n_rows: usize) -> Expr {
    let inner = Expr::comp(
        Monoid::Sum,
        Expr::var("x").mul(v.vec_index(Expr::var("j"))),
        vec![Expr::vec_gen("x", "j", Expr::var("row"))],
    );
    Expr::vec_comp(
        Monoid::Sum,
        Expr::int(n_rows as i64),
        inner,
        Expr::var("i"),
        vec![Expr::vec_gen("row", "i", m)],
    )
}

/// Matrix–matrix product for an `n×k · k×m` pair, as one nested vector
/// comprehension: `out[i] = vec[m]{ sum{ a_row[t]*b[t][j] } [j] | j ← 0..m }`.
pub fn matmul_expr(a: Expr, b: Expr, n: usize, m: usize) -> Expr {
    // Bind `b` once: indexing an unbound matrix expression would
    // re-evaluate it per cell access.
    let cell = Expr::comp(
        Monoid::Sum,
        Expr::var("x").mul(
            Expr::var("bm").vec_index(Expr::var("t")).vec_index(Expr::var("j")),
        ),
        vec![Expr::vec_gen("x", "t", Expr::var("arow"))],
    );
    let out_row = Expr::vec_comp(
        Monoid::Sum,
        Expr::int(m as i64),
        cell,
        Expr::var("j"),
        vec![Expr::gen("j", range(m))],
    );
    Expr::let_(
        "bm",
        b,
        Expr::vec_comp(
            Monoid::VecOf(Box::new(Monoid::Sum)),
            Expr::int(n as i64),
            out_row,
            Expr::var("i"),
            vec![Expr::vec_gen("arow", "i", a)],
        ),
    )
}

/// Transpose an `n×m` matrix: `out[j][i] = a[i][j]` — expressed by
/// building each output row as a gather over the input column.
pub fn transpose_expr(a: Expr, n: usize, m: usize) -> Expr {
    let out_row = Expr::vec_comp(
        Monoid::Sum,
        Expr::int(n as i64),
        Expr::var("am").vec_index(Expr::var("i")).vec_index(Expr::var("j")),
        Expr::var("i"),
        vec![Expr::gen("i", range(n))],
    );
    Expr::let_(
        "am",
        a,
        Expr::vec_comp(
            Monoid::VecOf(Box::new(Monoid::Sum)),
            Expr::int(m as i64),
            out_row,
            Expr::var("j"),
            vec![Expr::gen("j", range(m))],
        ),
    )
}

/// Evaluate a closed matrix expression into rows of `i64`.
pub fn eval_int_matrix(e: &Expr) -> EvalResult<Vec<Vec<i64>>> {
    let rows = eval_vector(e)?;
    rows.into_iter()
        .map(|row| match row {
            Value::Vector(items) => items
                .iter()
                .map(monoid_calculus::value::Value::as_int)
                .collect::<EvalResult<Vec<i64>>>(),
            other => Err(EvalError::TypeMismatch {
                op: "matrix row",
                detail: format!("expected vector, got {}", other.kind()),
            }),
        })
        .collect()
}

/// Plain-Rust reference matmul for cross-checking.
pub fn matmul_reference(a: &[Vec<i64>], b: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let n = a.len();
    let k = if n > 0 { a[0].len() } else { 0 };
    let m = if b.is_empty() { 0 } else { b[0].len() };
    let mut out = vec![vec![0i64; m]; n];
    for i in 0..n {
        for t in 0..k {
            let x = a[i][t];
            for j in 0..m {
                out[i][j] += x * b[t][j];
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use monoid_calculus::eval::eval_closed;

    #[test]
    fn matvec_works() {
        let m = int_matrix(&[vec![1, 2], vec![3, 4]]);
        let v = Expr::VecLit(vec![Expr::int(10), Expr::int(20)]);
        let e = matvec_expr(m, v, 2);
        let out = eval_vector(&e).unwrap();
        assert_eq!(out, vec![Value::Int(50), Value::Int(110)]);
    }

    #[test]
    fn matmul_matches_reference() {
        let a = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let b = vec![vec![7, 8], vec![9, 10], vec![11, 12]];
        let e = matmul_expr(int_matrix(&a), int_matrix(&b), 2, 2);
        let got = eval_int_matrix(&e).unwrap();
        assert_eq!(got, matmul_reference(&a, &b));
    }

    #[test]
    fn transpose_swaps_indices() {
        let a = vec![vec![1, 2, 3], vec![4, 5, 6]];
        let e = transpose_expr(int_matrix(&a), 2, 3);
        let got = eval_int_matrix(&e).unwrap();
        assert_eq!(got, vec![vec![1, 4], vec![2, 5], vec![3, 6]]);
    }

    #[test]
    fn transpose_transpose_is_identity() {
        let a = vec![vec![1, 2], vec![3, 4], vec![5, 6]];
        let t = transpose_expr(int_matrix(&a), 3, 2);
        let tt = transpose_expr(t, 2, 3);
        assert_eq!(eval_int_matrix(&tt).unwrap(), a);
    }

    #[test]
    fn identity_matrix_is_matmul_neutral() {
        let a = vec![vec![3, 1], vec![2, 7]];
        let id = vec![vec![1, 0], vec![0, 1]];
        let e = matmul_expr(int_matrix(&a), int_matrix(&id), 2, 2);
        assert_eq!(eval_int_matrix(&e).unwrap(), a);
    }

    #[test]
    fn matmul_evaluates_closed() {
        // sanity: whole thing is a closed calculus term
        let a = vec![vec![1]];
        let e = matmul_expr(int_matrix(&a), int_matrix(&a), 1, 1);
        assert!(eval_closed(&e).is_ok());
    }
}
