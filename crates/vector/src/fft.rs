//! The Fourier transform as a database query (Buneman \[7\], paper §4.1).
//!
//! The DFT `X[k] = Σⱼ x[j]·ω^{jk}` (ω = e^{-2πi/n}) is one vector
//! comprehension once the twiddle factors are data: two real-valued
//! `sum[n]` comprehensions (real and imaginary parts) over a generator
//! pair `(k, x[j])`, indexing a precomputed twiddle vector at `(j·k) mod n`.
//! The calculus needs no trigonometry — exactly the paper's point that
//! vector comprehensions subsume index-crunching computations.
//!
//! A plain-Rust iterative radix-2 FFT is provided as the `O(n log n)`
//! reference; tests and benchmark B4 cross-check the two (same answers,
//! crossing running times).

use crate::ops::{eval_vector, float_vec, range};
use monoid_calculus::error::{EvalError, EvalResult};
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use std::f64::consts::PI;

/// A complex sample.
pub type Complex = (f64, f64);

/// Twiddle factors `ω^t = e^{-2πit/n}` for `t = 0..n`, as two real vectors.
pub fn twiddles(n: usize) -> (Vec<f64>, Vec<f64>) {
    let mut re = Vec::with_capacity(n);
    let mut im = Vec::with_capacity(n);
    for t in 0..n {
        let angle = -2.0 * PI * t as f64 / n as f64;
        re.push(angle.cos());
        im.push(angle.sin());
    }
    (re, im)
}

/// Build the DFT-as-a-query: returns the pair of calculus expressions
/// `(X_re, X_im)` computing the transform of the (real, imaginary) input
/// vectors. Each is a single `sum[n]` vector comprehension:
///
/// ```text
/// sum[n]{ (x_re[j]·t_re − x_im[j]·t_im) [k] | k ← [0..n), xr[j] ← x_re }
/// ```
///
/// with `t_re = tw_re[(j·k) mod n]` (and symmetrically for `X_im`).
pub fn dft_query(x_re: &[f64], x_im: &[f64]) -> (Expr, Expr) {
    let n = x_re.len();
    assert_eq!(n, x_im.len(), "real/imaginary parts must have equal length");
    let (tw_re, tw_im) = twiddles(n);
    // The input and twiddle vectors are bound once with `let` — indexing a
    // vector *literal* would re-evaluate it per access, turning the O(n²)
    // transform into O(n³).
    let t_index = Expr::binop(
        monoid_calculus::expr::BinOp::Mod,
        Expr::var("j").mul(Expr::var("k")),
        Expr::int(n as i64),
    );
    let t_re = Expr::var("twr").vec_index(t_index.clone());
    let t_im = Expr::var("twi").vec_index(t_index);
    let x_im_at_j = Expr::var("xiv").vec_index(Expr::var("j"));

    let quals = vec![
        Expr::gen("k", range(n)),
        Expr::vec_gen("xr", "j", Expr::var("xrv")),
    ];

    // (xr + i·xi)(t_re + i·t_im) = (xr·t_re − xi·t_im) + i(xr·t_im + xi·t_re)
    let re_head = Expr::var("xr")
        .mul(t_re.clone())
        .sub(x_im_at_j.clone().mul(t_im.clone()));
    let im_head = Expr::var("xr").mul(t_im).add(x_im_at_j.mul(t_re));

    let bind_inputs = |body: Expr| {
        Expr::let_(
            "xrv",
            float_vec(x_re),
            Expr::let_(
                "xiv",
                float_vec(x_im),
                Expr::let_(
                    "twr",
                    float_vec(&tw_re),
                    Expr::let_("twi", float_vec(&tw_im), body),
                ),
            ),
        )
    };
    let re = bind_inputs(Expr::vec_comp(
        Monoid::Sum,
        Expr::int(n as i64),
        re_head,
        Expr::var("k"),
        quals.clone(),
    ));
    let im = bind_inputs(Expr::vec_comp(
        Monoid::Sum,
        Expr::int(n as i64),
        im_head,
        Expr::var("k"),
        quals,
    ));
    (re, im)
}

/// Evaluate the DFT query for a real-valued input.
pub fn dft_via_query(x: &[f64]) -> EvalResult<Vec<Complex>> {
    let zeros = vec![0.0; x.len()];
    let (re_e, im_e) = dft_query(x, &zeros);
    let re = eval_vector(&re_e)?;
    let im = eval_vector(&im_e)?;
    re.into_iter()
        .zip(im)
        .map(|(r, i)| {
            let fr = as_f64(&r)?;
            let fi = as_f64(&i)?;
            Ok((fr, fi))
        })
        .collect()
}

fn as_f64(v: &monoid_calculus::value::Value) -> EvalResult<f64> {
    use monoid_calculus::value::Value;
    match v {
        Value::Int(i) => Ok(*i as f64),
        Value::Float(x) => Ok(*x),
        other => Err(EvalError::TypeMismatch {
            op: "as_f64",
            detail: format!("expected number, got {}", other.kind()),
        }),
    }
}

/// Plain-Rust naive DFT, the direct `O(n²)` reference.
pub fn dft_reference(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = (0.0, 0.0);
            for (j, &(xr, xi)) in x.iter().enumerate() {
                let angle = -2.0 * PI * (j * k % n) as f64 / n as f64;
                let (tr, ti) = (angle.cos(), angle.sin());
                acc.0 += xr * tr - xi * ti;
                acc.1 += xr * ti + xi * tr;
            }
            acc
        })
        .collect()
}

/// Iterative radix-2 Cooley–Tukey FFT. `x.len()` must be a power of two.
pub fn fft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    assert!(n.is_power_of_two(), "fft length must be a power of two");
    let mut a = x.to_vec();
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i as u64).reverse_bits().wrapping_shr(64 - bits) as usize;
        if j > i {
            a.swap(i, j);
        }
    }
    let mut len = 2;
    while len <= n {
        let angle = -2.0 * PI / len as f64;
        let (wr, wi) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0, 0.0);
            for off in 0..len / 2 {
                let (er, ei) = a[start + off];
                let (or, oi) = a[start + off + len / 2];
                let (tr, ti) = (or * cr - oi * ci, or * ci + oi * cr);
                a[start + off] = (er + tr, ei + ti);
                a[start + off + len / 2] = (er - tr, ei - ti);
                let next = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = next.0;
                ci = next.1;
            }
        }
        len <<= 1;
    }
    a
}

/// Inverse FFT (for the round-trip property test).
pub fn ifft(x: &[Complex]) -> Vec<Complex> {
    let n = x.len() as f64;
    let conj: Vec<Complex> = x.iter().map(|&(r, i)| (r, -i)).collect();
    fft(&conj).into_iter().map(|(r, i)| (r / n, -i / n)).collect()
}

/// Max absolute difference between two complex vectors.
pub fn max_error(a: &[Complex], b: &[Complex]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&(ar, ai), &(br, bi))| (ar - br).abs().max((ai - bi).abs()))
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dft_query_matches_reference() {
        let x = [1.0, 2.0, 3.0, 4.0, 0.5, -1.5];
        let got = dft_via_query(&x).unwrap();
        let xs: Vec<Complex> = x.iter().map(|&r| (r, 0.0)).collect();
        let want = dft_reference(&xs);
        assert!(max_error(&got, &want) < 1e-9, "{got:?} vs {want:?}");
    }

    #[test]
    fn fft_matches_dft_reference() {
        let x: Vec<Complex> = (0..16).map(|i| ((i as f64).sin(), 0.0)).collect();
        let got = fft(&x);
        let want = dft_reference(&x);
        assert!(max_error(&got, &want) < 1e-9);
    }

    #[test]
    fn fft_matches_the_query_on_power_of_two() {
        let x = [3.0, 1.0, -2.0, 5.0, 0.0, 0.0, 1.0, 1.0];
        let via_query = dft_via_query(&x).unwrap();
        let xs: Vec<Complex> = x.iter().map(|&r| (r, 0.0)).collect();
        let via_fft = fft(&xs);
        assert!(max_error(&via_query, &via_fft) < 1e-9);
    }

    #[test]
    fn fft_round_trips() {
        let x: Vec<Complex> = (0..32).map(|i| ((i as f64).cos(), (i as f64 / 3.0).sin())).collect();
        let back = ifft(&fft(&x));
        assert!(max_error(&back, &x) < 1e-9);
    }

    #[test]
    fn dft_of_constant_is_impulse() {
        let x = [1.0, 1.0, 1.0, 1.0];
        let got = dft_via_query(&x).unwrap();
        assert!((got[0].0 - 4.0).abs() < 1e-9);
        for &(r, i) in &got[1..] {
            assert!(r.abs() < 1e-9 && i.abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn fft_rejects_non_power_of_two() {
        let _ = fft(&[(0.0, 0.0); 3]);
    }
}
