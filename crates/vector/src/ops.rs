//! Vector operations as monoid comprehensions (§4.1).
//!
//! The paper's point is that `M[n]` vector comprehensions express bulk
//! *and* index-aware operations declaratively: the comprehension
//! `vec[n]{ a [n−i−1] | a[i] ← x }` reverses a vector, a histogram is one
//! comprehension with a collision-merging index, and the FFT is a query
//! (Buneman \[7\]). This module provides builders that construct those
//! comprehensions as calculus expressions, plus plain-Rust reference
//! implementations used by tests and benchmarks to cross-check them.

use monoid_calculus::error::EvalResult;
use monoid_calculus::eval::eval_closed;
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::value::Value;

/// Build a vector literal expression from integers.
pub fn int_vec(values: &[i64]) -> Expr {
    Expr::VecLit(values.iter().map(|&v| Expr::int(v)).collect())
}

/// Build a vector literal expression from floats.
pub fn float_vec(values: &[f64]) -> Expr {
    Expr::VecLit(values.iter().map(|&v| Expr::float(v)).collect())
}

/// A list-literal range `[0, 1, …, n-1]`, used as a generator source for
/// index variables.
pub fn range(n: usize) -> Expr {
    Expr::CollLit(Monoid::List, (0..n as i64).map(Expr::int).collect())
}

/// The paper's reverse: `sum[n]{ a [n−i−1] | a[i] ← x }`.
pub fn reverse_expr(x: Expr, n: usize) -> Expr {
    Expr::vec_comp(
        Monoid::Sum,
        Expr::int(n as i64),
        Expr::var("a"),
        Expr::int(n as i64).sub(Expr::var("i")).sub(Expr::int(1)),
        vec![Expr::vec_gen("a", "i", x)],
    )
}

/// Gather by an index vector: `out[i] = x[perm[i]]`. The source is bound
/// once with `let` so indexing does not re-evaluate it.
pub fn permute_expr(x: Expr, perm: Expr, n: usize) -> Expr {
    Expr::let_(
        "xv",
        x,
        Expr::vec_comp(
            Monoid::Sum,
            Expr::int(n as i64),
            Expr::var("xv").vec_index(Expr::var("p")),
            Expr::var("i"),
            vec![Expr::vec_gen("p", "i", perm)],
        ),
    )
}

/// Cyclic shift left by `k`: `out[(i − k) mod n] = x[i]`.
pub fn rotate_expr(x: Expr, k: usize, n: usize) -> Expr {
    let n_e = Expr::int(n as i64);
    // (i + n - k) mod n
    let target = Expr::var("i")
        .add(Expr::int(n as i64 - k as i64))
        .binop_mod(n_e.clone());
    Expr::vec_comp(
        Monoid::Sum,
        n_e,
        Expr::var("a"),
        target,
        vec![Expr::vec_gen("a", "i", x)],
    )
}

/// Histogram with `buckets` bins: `sum[buckets]{ 1 [bucket(a)] | a ← xs }`
/// where `bucket(a) = a / width` clamped into range by the caller.
pub fn histogram_expr(xs: Expr, buckets: usize, width: i64) -> Expr {
    Expr::vec_comp(
        Monoid::Sum,
        Expr::int(buckets as i64),
        Expr::int(1),
        Expr::var("a").div(Expr::int(width)),
        vec![Expr::gen("a", xs)],
    )
}

/// Inner product `sum{ x[i] * y[i] | _[i] ← x }`. `y` is bound once.
pub fn inner_product_expr(x: Expr, y: Expr) -> Expr {
    Expr::let_(
        "yv",
        y,
        Expr::comp(
            Monoid::Sum,
            Expr::var("a").mul(Expr::var("yv").vec_index(Expr::var("i"))),
            vec![Expr::vec_gen("a", "i", x)],
        ),
    )
}

/// Pointwise sum of two vectors via the `M[n]` merge itself.
pub fn vector_add_expr(x: Expr, y: Expr) -> Expr {
    Expr::merge(Monoid::VecOf(Box::new(Monoid::Sum)), x, y)
}

/// Pointwise maximum (the `max[n]` monoid).
pub fn vector_max_expr(x: Expr, y: Expr) -> Expr {
    Expr::merge(Monoid::VecOf(Box::new(Monoid::Max)), x, y)
}

/// Evaluate a closed vector expression to a `Vec<Value>`.
pub fn eval_vector(e: &Expr) -> EvalResult<Vec<Value>> {
    match eval_closed(e)? {
        Value::Vector(items) => Ok(items.as_ref().clone()),
        other => Err(monoid_calculus::error::EvalError::TypeMismatch {
            op: "eval_vector",
            detail: format!("expected vector, got {}", other.kind()),
        }),
    }
}

/// Small extension trait to keep builders readable.
trait ExprExt {
    fn binop_mod(self, rhs: Expr) -> Expr;
}
impl ExprExt for Expr {
    fn binop_mod(self, rhs: Expr) -> Expr {
        Expr::binop(monoid_calculus::expr::BinOp::Mod, self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ints(v: &[i64]) -> Vec<Value> {
        v.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn reverse_matches_paper() {
        let e = reverse_expr(int_vec(&[1, 2, 3, 4]), 4);
        assert_eq!(eval_vector(&e).unwrap(), ints(&[4, 3, 2, 1]));
    }

    #[test]
    fn reverse_twice_is_identity() {
        let x = [5, 9, -2, 0, 7];
        let once = reverse_expr(int_vec(&x), x.len());
        let twice = reverse_expr(once, x.len());
        assert_eq!(eval_vector(&twice).unwrap(), ints(&x));
    }

    #[test]
    fn permute_gathers() {
        let e = permute_expr(int_vec(&[10, 20, 30]), int_vec(&[2, 0, 1]), 3);
        assert_eq!(eval_vector(&e).unwrap(), ints(&[30, 10, 20]));
    }

    #[test]
    fn rotate_shifts_cyclically() {
        let e = rotate_expr(int_vec(&[1, 2, 3, 4, 5]), 2, 5);
        assert_eq!(eval_vector(&e).unwrap(), ints(&[3, 4, 5, 1, 2]));
        // rotate by 0 is identity
        let e = rotate_expr(int_vec(&[1, 2, 3]), 0, 3);
        assert_eq!(eval_vector(&e).unwrap(), ints(&[1, 2, 3]));
    }

    #[test]
    fn histogram_counts_collisions() {
        // values 0..9 with width 5 → buckets [5, 5]
        let xs = Expr::CollLit(Monoid::List, (0..10).map(Expr::int).collect());
        let e = histogram_expr(xs, 2, 5);
        assert_eq!(eval_vector(&e).unwrap(), ints(&[5, 5]));
    }

    #[test]
    fn inner_product() {
        let e = inner_product_expr(int_vec(&[1, 2, 3]), int_vec(&[4, 5, 6]));
        assert_eq!(eval_closed(&e).unwrap(), Value::Int(32));
    }

    #[test]
    fn vector_add_and_max_merge_pointwise() {
        let e = vector_add_expr(int_vec(&[1, 2]), int_vec(&[10, 20]));
        assert_eq!(eval_vector(&e).unwrap(), ints(&[11, 22]));
        let e = vector_max_expr(int_vec(&[1, 20]), int_vec(&[10, 2]));
        assert_eq!(eval_vector(&e).unwrap(), ints(&[10, 20]));
    }

    #[test]
    fn out_of_range_index_is_an_error() {
        // A rotate with a bad target (index n) must error, not wrap.
        let e = Expr::vec_comp(
            Monoid::Sum,
            Expr::int(3),
            Expr::var("a"),
            Expr::int(3),
            vec![Expr::vec_gen("a", "i", int_vec(&[1, 2, 3]))],
        );
        assert!(eval_vector(&e).is_err());
    }
}
