//! Property tests for the §4.1 vector library: algebraic identities of the
//! comprehension-built operations, cross-checked against plain Rust.

use monoid_calculus::eval::eval_closed;
use monoid_calculus::expr::Expr;
use monoid_calculus::monoid::Monoid;
use monoid_calculus::value::Value;
use monoid_vector::ops::{self, eval_vector};
use monoid_vector::{fft, matrix};
use proptest::prelude::*;

fn ints(v: &[i64]) -> Vec<Value> {
    v.iter().map(|&i| Value::Int(i)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// reverse ∘ reverse = id.
    #[test]
    fn reverse_involutive(xs in prop::collection::vec(-50i64..50, 1..12)) {
        let n = xs.len();
        let once = monoid_vector::reverse_expr(ops::int_vec(&xs), n);
        let twice = monoid_vector::reverse_expr(once.clone(), n);
        prop_assert_eq!(eval_vector(&twice).unwrap(), ints(&xs));
        // And single reverse matches Rust's.
        let mut rev = xs.clone();
        rev.reverse();
        prop_assert_eq!(eval_vector(&once).unwrap(), ints(&rev));
    }

    /// rotate(k) ∘ rotate(n−k) = id.
    #[test]
    fn rotate_inverse(xs in prop::collection::vec(-50i64..50, 1..12), k in 0usize..12) {
        let n = xs.len();
        let k = k % n;
        let once = monoid_vector::rotate_expr(ops::int_vec(&xs), k, n);
        let back = monoid_vector::rotate_expr(once, (n - k) % n, n);
        prop_assert_eq!(eval_vector(&back).unwrap(), ints(&xs));
    }

    /// A histogram's bucket counts sum to the population size.
    #[test]
    fn histogram_total(xs in prop::collection::vec(0i64..100, 0..30)) {
        let src = Expr::CollLit(Monoid::List, xs.iter().map(|&x| Expr::int(x)).collect());
        let e = monoid_vector::histogram_expr(src, 10, 10);
        let buckets = eval_vector(&e).unwrap();
        let total: i64 = buckets.iter().map(|b| b.as_int().unwrap()).sum();
        prop_assert_eq!(total, xs.len() as i64);
    }

    /// Inner product symmetry and linearity against plain Rust.
    #[test]
    fn inner_product_reference(
        xs in prop::collection::vec(-20i64..20, 1..10),
        ys_seed in prop::collection::vec(-20i64..20, 1..10),
    ) {
        let n = xs.len().min(ys_seed.len());
        let xs = &xs[..n];
        let ys = &ys_seed[..n];
        let e = monoid_vector::inner_product_expr(ops::int_vec(xs), ops::int_vec(ys));
        let want: i64 = xs.iter().zip(ys).map(|(a, b)| a * b).sum();
        prop_assert_eq!(eval_closed(&e).unwrap(), Value::Int(want));
        // symmetry
        let sym = monoid_vector::inner_product_expr(ops::int_vec(ys), ops::int_vec(xs));
        prop_assert_eq!(eval_closed(&sym).unwrap(), Value::Int(want));
    }

    /// matmul comprehension == reference on random small matrices.
    #[test]
    fn matmul_reference_agreement(
        n in 1usize..4, k in 1usize..4, m in 1usize..4, seed in any::<u64>()
    ) {
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((s >> 33) as i64 % 10) - 5
        };
        let a: Vec<Vec<i64>> = (0..n).map(|_| (0..k).map(|_| next()).collect()).collect();
        let b: Vec<Vec<i64>> = (0..k).map(|_| (0..m).map(|_| next()).collect()).collect();
        let e = matrix::matmul_expr(matrix::int_matrix(&a), matrix::int_matrix(&b), n, m);
        prop_assert_eq!(
            matrix::eval_int_matrix(&e).unwrap(),
            monoid_vector::matmul_reference(&a, &b)
        );
    }

    /// transpose ∘ transpose = id.
    #[test]
    fn transpose_involutive(n in 1usize..5, m in 1usize..5, seed in any::<u64>()) {
        let a: Vec<Vec<i64>> = (0..n)
            .map(|i| (0..m).map(|j| ((seed >> ((i + j) % 60)) & 0xf) as i64).collect())
            .collect();
        let t = matrix::transpose_expr(matrix::int_matrix(&a), n, m);
        let tt = matrix::transpose_expr(t, m, n);
        prop_assert_eq!(matrix::eval_int_matrix(&tt).unwrap(), a);
    }

    /// The DFT query agrees with the reference DFT for arbitrary real
    /// inputs, and with the FFT on power-of-two sizes; Parseval's theorem
    /// holds.
    #[test]
    fn fourier_properties(xs in prop::collection::vec(-4.0f64..4.0, 1..17)) {
        let via_query = fft::dft_via_query(&xs).unwrap();
        let cx: Vec<fft::Complex> = xs.iter().map(|&r| (r, 0.0)).collect();
        let reference = fft::dft_reference(&cx);
        prop_assert!(fft::max_error(&via_query, &reference) < 1e-6);
        if xs.len().is_power_of_two() {
            let via_fft = fft::fft(&cx);
            prop_assert!(fft::max_error(&via_query, &via_fft) < 1e-6);
        }
        // Parseval: Σ|x|² = (1/n) Σ|X|².
        let time: f64 = xs.iter().map(|x| x * x).sum();
        let freq: f64 = via_query.iter().map(|(r, i)| r * r + i * i).sum::<f64>()
            / xs.len() as f64;
        prop_assert!((time - freq).abs() < 1e-6 * (1.0 + time.abs()));
    }

    /// ifft ∘ fft = id on power-of-two sizes.
    #[test]
    fn fft_roundtrip(log_n in 0u32..6, seed in any::<u64>()) {
        let n = 1usize << log_n;
        let xs: Vec<fft::Complex> = (0..n)
            .map(|i| {
                let a = ((seed >> (i % 60)) & 0xff) as f64 / 64.0 - 2.0;
                (a, -a / 2.0)
            })
            .collect();
        let back = fft::ifft(&fft::fft(&xs));
        prop_assert!(fft::max_error(&back, &xs) < 1e-9);
    }

    /// Pointwise vector monoid merges are associative and sized-checked.
    #[test]
    fn pointwise_merge_assoc(
        a in prop::collection::vec(-9i64..10, 1..8),
        seed in any::<u64>(),
    ) {
        let n = a.len();
        let derive = |off: u64| -> Vec<i64> {
            (0..n).map(|i| ((seed >> ((i as u64 + off) % 60)) & 0xf) as i64).collect()
        };
        let (b, c) = (derive(7), derive(13));
        let m = Monoid::VecOf(Box::new(Monoid::Sum));
        let va = Value::vector(ints(&a));
        let vb = Value::vector(ints(&b));
        let vc = Value::vector(ints(&c));
        use monoid_calculus::value::merge;
        let l = merge(&m, &merge(&m, &va, &vb).unwrap(), &vc).unwrap();
        let r = merge(&m, &va, &merge(&m, &vb, &vc).unwrap()).unwrap();
        prop_assert_eq!(l, r);
        // size mismatch errors
        let short = Value::vector(ints(&a[..n - 1]));
        if n > 1 {
            prop_assert!(merge(&m, &va, &short).is_err());
        }
    }
}
