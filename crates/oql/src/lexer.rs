//! The OQL lexer: source text → spanned tokens.
//!
//! OQL identifiers are letters, digits, `_`, and a trailing `#` (the
//! paper's schema uses fields like `bed#` and `hotel#`). Keywords are
//! case-insensitive. Strings use single or double quotes with `\`
//! escapes. `--` starts a line comment (as in SQL).

use crate::error::OqlError;
use crate::token::{Pos, SpannedTok, Tok};

/// Tokenize `src` completely (including a trailing `Eof` token).
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, OqlError> {
    Lexer::new(src).run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    offset: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer { src, bytes: src.as_bytes(), offset: 0, line: 1, col: 1 }
    }

    fn pos(&self) -> Pos {
        Pos { offset: self.offset, line: self.line, col: self.col }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.offset).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.bytes.get(self.offset + 1).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.offset += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn run(mut self) -> Result<Vec<SpannedTok>, OqlError> {
        let mut out = Vec::new();
        loop {
            self.skip_ws_and_comments();
            let pos = self.pos();
            let Some(b) = self.peek() else {
                out.push(SpannedTok { tok: Tok::Eof, pos });
                return Ok(out);
            };
            let tok = match b {
                b'0'..=b'9' => self.number(pos)?,
                b'\'' | b'"' => self.string(pos)?,
                b'a'..=b'z' | b'A'..=b'Z' | b'_' => self.ident(),
                b'$' => self.param(pos)?,
                b'(' => self.single(Tok::LParen),
                b')' => self.single(Tok::RParen),
                b'[' => self.single(Tok::LBracket),
                b']' => self.single(Tok::RBracket),
                b',' => self.single(Tok::Comma),
                b'.' => self.single(Tok::Dot),
                b':' => self.single(Tok::Colon),
                b';' => self.single(Tok::Semicolon),
                b'+' => self.single(Tok::Plus),
                b'-' => self.single(Tok::Minus),
                b'*' => self.single(Tok::Star),
                b'/' => self.single(Tok::Slash),
                b'%' => self.single(Tok::Mod),
                b'=' => self.single(Tok::Eq),
                b'|' => {
                    if self.peek2() == Some(b'|') {
                        self.bump();
                        self.bump();
                        Tok::Concat
                    } else {
                        return Err(OqlError::lex(pos, "stray `|` (did you mean `||`?)"));
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'=') => {
                            self.bump();
                            Tok::Le
                        }
                        Some(b'>') => {
                            self.bump();
                            Tok::Ne
                        }
                        _ => Tok::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'!' => {
                    if self.peek2() == Some(b'=') {
                        self.bump();
                        self.bump();
                        Tok::Ne
                    } else {
                        return Err(OqlError::lex(pos, "stray `!` (did you mean `!=`?)"));
                    }
                }
                other => {
                    return Err(OqlError::lex(
                        pos,
                        format!("unexpected character `{}`", other as char),
                    ))
                }
            };
            out.push(SpannedTok { tok, pos });
        }
    }

    fn single(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }

    fn skip_ws_and_comments(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\r' | b'\n') => {
                    self.bump();
                }
                Some(b'-') if self.peek2() == Some(b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return,
            }
        }
    }

    fn number(&mut self, pos: Pos) -> Result<Tok, OqlError> {
        let start = self.offset;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.bump();
        }
        let mut is_float = false;
        // A dot starts a fraction only if followed by a digit — `1.name`
        // must lex as `1` `.` `name`.
        if self.peek() == Some(b'.') && matches!(self.peek2(), Some(b'0'..=b'9')) {
            is_float = true;
            self.bump();
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.bump();
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            let mut lookahead = self.offset + 1;
            if matches!(self.bytes.get(lookahead), Some(b'+' | b'-')) {
                lookahead += 1;
            }
            if matches!(self.bytes.get(lookahead), Some(b'0'..=b'9')) {
                is_float = true;
                self.bump(); // e
                if matches!(self.peek(), Some(b'+' | b'-')) {
                    self.bump();
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.bump();
                }
            }
        }
        let text = &self.src[start..self.offset];
        if is_float {
            text.parse::<f64>()
                .map(Tok::Float)
                .map_err(|_| OqlError::lex(pos, format!("bad float literal `{text}`")))
        } else {
            text.parse::<i64>()
                .map(Tok::Int)
                .map_err(|_| OqlError::lex(pos, format!("integer literal `{text}` out of range")))
        }
    }

    fn string(&mut self, pos: Pos) -> Result<Tok, OqlError> {
        let quote = self.bump().expect("caller peeked");
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(OqlError::lex(pos, "unterminated string literal")),
                Some(b) if b == quote => return Ok(Tok::Str(s)),
                Some(b'\\') => match self.bump() {
                    Some(b'n') => s.push('\n'),
                    Some(b't') => s.push('\t'),
                    Some(b'\\') => s.push('\\'),
                    Some(b) if b == quote => s.push(b as char),
                    Some(other) => s.push(other as char),
                    None => return Err(OqlError::lex(pos, "unterminated string literal")),
                },
                Some(b) => {
                    // Re-assemble multi-byte UTF-8: push raw bytes via the
                    // source slice to stay correct.
                    if b.is_ascii() {
                        s.push(b as char);
                    } else {
                        // Walk back one byte and take the full char.
                        let start = self.offset - 1;
                        let ch = self.src[start..].chars().next().expect("valid utf8");
                        for _ in 1..ch.len_utf8() {
                            self.bump();
                        }
                        s.push(ch);
                    }
                }
            }
        }
    }

    fn ident(&mut self) -> Tok {
        let start = self.offset;
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
            self.bump();
        }
        // Trailing `#` for fields like `bed#`, `hotel#`.
        if self.peek() == Some(b'#') {
            self.bump();
        }
        let text = &self.src[start..self.offset];
        Tok::keyword(text).unwrap_or_else(|| Tok::Ident(text.to_string()))
    }

    /// A parameter placeholder: `$name` (identifier chars) or `$1`
    /// (positional, digits only). The `$` itself is not part of the name.
    fn param(&mut self, pos: Pos) -> Result<Tok, OqlError> {
        self.bump(); // `$`
        let start = self.offset;
        while matches!(self.peek(), Some(b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'_')) {
            self.bump();
        }
        if start == self.offset {
            return Err(OqlError::lex(pos, "`$` must be followed by a parameter name"));
        }
        Ok(Tok::Param(self.src[start..self.offset].to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(
            toks("SELECT distinct FrOm"),
            vec![Tok::Select, Tok::Distinct, Tok::From, Tok::Eof]
        );
    }

    #[test]
    fn numbers_and_paths() {
        assert_eq!(
            toks("x.bed# = 3"),
            vec![
                Tok::Ident("x".into()),
                Tok::Dot,
                Tok::Ident("bed#".into()),
                Tok::Eq,
                Tok::Int(3),
                Tok::Eof
            ]
        );
        assert_eq!(toks("1.5e2"), vec![Tok::Float(150.0), Tok::Eof]);
        assert_eq!(
            toks("r.price"),
            vec![Tok::Ident("r".into()), Tok::Dot, Tok::Ident("price".into()), Tok::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#"'Port\'land' "two""#),
            vec![Tok::Str("Port'land".into()), Tok::Str("two".into()), Tok::Eof]
        );
        assert_eq!(toks("'héllo'"), vec![Tok::Str("héllo".into()), Tok::Eof]);
    }

    #[test]
    fn operators() {
        assert_eq!(
            toks("<= >= <> != < > = || + - * / %"),
            vec![
                Tok::Le,
                Tok::Ge,
                Tok::Ne,
                Tok::Ne,
                Tok::Lt,
                Tok::Gt,
                Tok::Eq,
                Tok::Concat,
                Tok::Plus,
                Tok::Minus,
                Tok::Star,
                Tok::Slash,
                Tok::Mod,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("select -- the works\n 1"),
            vec![Tok::Select, Tok::Int(1), Tok::Eof]
        );
    }

    #[test]
    fn errors_carry_positions() {
        let err = lex("select @").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("1:8"), "position in {msg}");
    }

    #[test]
    fn unterminated_string_is_an_error() {
        assert!(lex("'abc").is_err());
    }

    #[test]
    fn parameter_placeholders() {
        assert_eq!(
            toks("c.name = $city and r.bed# >= $1"),
            vec![
                Tok::Ident("c".into()),
                Tok::Dot,
                Tok::Ident("name".into()),
                Tok::Eq,
                Tok::Param("city".into()),
                Tok::And,
                Tok::Ident("r".into()),
                Tok::Dot,
                Tok::Ident("bed#".into()),
                Tok::Ge,
                Tok::Param("1".into()),
                Tok::Eof
            ]
        );
        assert!(lex("$ name").is_err(), "bare `$` is rejected");
    }
}
