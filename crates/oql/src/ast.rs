//! The OQL abstract syntax (ODMG-93 subset used by the paper).
//!
//! Kept deliberately close to the grammar so the parser is transparent;
//! all semantic work happens in `translate`, which maps this AST into the
//! monoid calculus (the paper's §3 / Table 2).

use crate::token::Pos;
use monoid_calculus::symbol::Symbol;
use std::fmt;

/// A best-effort source position carried on binding AST nodes so the
/// static analyzer (`monoid_calculus::analysis`) can anchor diagnostics
/// to the original OQL text. Compares equal to everything — positions are
/// metadata, so `parse ∘ unparse` round-trips stay structurally equal.
#[derive(Debug, Clone, Copy, Default)]
pub struct AstPos(pub Option<Pos>);

impl PartialEq for AstPos {
    fn eq(&self, _other: &AstPos) -> bool {
        true
    }
}

impl From<Pos> for AstPos {
    fn from(p: Pos) -> AstPos {
        AstPos(Some(p))
    }
}

/// A whole OQL program: zero or more `define name as query;` bindings
/// followed by the main query.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub defines: Vec<(Symbol, OqlExpr)>,
    pub query: OqlExpr,
}

/// Sort direction in `order by`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    Asc,
    Desc,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl fmt::Display for Agg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Agg::Count => "count",
            Agg::Sum => "sum",
            Agg::Avg => "avg",
            Agg::Min => "min",
            Agg::Max => "max",
        };
        write!(f, "{s}")
    }
}

/// Binary operators in OQL expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OqlBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
    /// String concatenation `||`.
    Concat,
}

/// Collection constructors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollCons {
    Set,
    Bag,
    List,
    Array,
}

/// Set-theoretic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetOp {
    Union,
    Intersect,
    Except,
}

/// Quantifier kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quant {
    /// `exists x in e: p`
    Exists,
    /// `for all x in e: p`
    ForAll,
}

/// One `from` clause binding: `x in e` / `e as x` / `e x`.
#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    pub var: Symbol,
    pub source: OqlExpr,
    /// Where `var` appears in the source text (position metadata; ignored
    /// by equality).
    pub var_pos: AstPos,
}

/// One `group by` key: `label: expr`.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupKey {
    pub label: Symbol,
    pub expr: OqlExpr,
}

/// One `order by` key.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderKey {
    pub expr: OqlExpr,
    pub dir: Dir,
}

/// The projection of a select: a single expression, or a named list
/// (`select x.a as a, x.b as b …`, sugar for a struct).
#[derive(Debug, Clone, PartialEq)]
pub enum Projection {
    Expr(OqlExpr),
    Named(Vec<(Symbol, OqlExpr)>),
}

/// An OQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum OqlExpr {
    IntLit(i64),
    FloatLit(f64),
    StrLit(String),
    BoolLit(bool),
    Nil,
    /// A variable or persistent-root / define name.
    Name(Symbol),
    /// A late-bound parameter placeholder `$name` / `$1`; the symbol
    /// carries the `$` prefix, so it can never collide with a `Name`.
    Param(Symbol),
    /// Path expression `e.field`.
    Path(Box<OqlExpr>, Symbol),
    /// Indexing `e[i]` on lists/arrays.
    Index(Box<OqlExpr>, Box<OqlExpr>),
    BinOp(OqlBinOp, Box<OqlExpr>, Box<OqlExpr>),
    Not(Box<OqlExpr>),
    Neg(Box<OqlExpr>),
    /// Membership `e1 in e2`.
    In(Box<OqlExpr>, Box<OqlExpr>),
    /// `e like 'pat%'` with `%` wildcards.
    Like(Box<OqlExpr>, String),
    /// Aggregates `count(e)`, `sum(e)`, …
    Agg(Agg, Box<OqlExpr>),
    /// `exists x in e: p` / `for all x in e: p`.
    Quantified {
        quant: Quant,
        var: Symbol,
        source: Box<OqlExpr>,
        pred: Box<OqlExpr>,
        /// Where `var` appears in the source text.
        var_pos: AstPos,
    },
    /// `element(e)`.
    Element(Box<OqlExpr>),
    /// `flatten(e)`.
    Flatten(Box<OqlExpr>),
    /// `listtoset(e)`.
    ListToSet(Box<OqlExpr>),
    /// `struct(a: e1, b: e2, …)`.
    Struct(Vec<(Symbol, OqlExpr)>),
    /// `set(…)`, `bag(…)`, `list(…)`, `array(…)`.
    Collection(CollCons, Vec<OqlExpr>),
    /// `e1 union e2`, etc.
    SetOp(SetOp, Box<OqlExpr>, Box<OqlExpr>),
    /// The big one.
    Select {
        distinct: bool,
        proj: Box<Projection>,
        from: Vec<FromClause>,
        filter: Option<Box<OqlExpr>>,
        /// Where the `where` predicate begins (its first token), when
        /// there is one — diagnostics about the predicate anchor here.
        filter_pos: AstPos,
        group_by: Vec<GroupKey>,
        having: Option<Box<OqlExpr>>,
        order_by: Vec<OrderKey>,
        /// Where the `select` keyword appears in the source text.
        pos: AstPos,
    },
}

impl OqlExpr {
    pub fn path(self, field: impl Into<Symbol>) -> OqlExpr {
        OqlExpr::Path(Box::new(self), field.into())
    }

    pub fn name(n: &str) -> OqlExpr {
        OqlExpr::Name(Symbol::new(n))
    }
}
