//! # monoid-oql
//!
//! An OQL (ODMG-93) front end for the monoid comprehension calculus —
//! the language the paper demonstrates *coverage* for in §3.
//!
//! * [`lexer`] / [`token`] — spanned, case-insensitive-keyword tokens,
//!   including the paper's `bed#`-style identifiers.
//! * [`parser`] — recursive descent over the OQL subset the paper uses:
//!   select-from-where (with `distinct`, `group by`/`having`, `order by`),
//!   quantifiers (`exists x in e: p`, `for all x in e: p`), aggregates,
//!   membership, path expressions, `struct`/collection constructors,
//!   `element`/`flatten`/`listtoset`, set operators, `define`, `like`,
//!   indexing, and subqueries at arbitrary points.
//! * [`translate`] — the §3 translation into monoid comprehensions, with
//!   the C/I legality restriction enforced and documented deterministic
//!   coercions where OQL semantics demand them.
//! * [`unparse`](mod@unparse) — render ASTs back to OQL source
//!   (`parse ∘ unparse ∘ parse = parse`).
//!
//! ```
//! use monoid_oql::compile;
//! use monoid_calculus::pretty::pretty;
//! # use monoid_calculus::types::{Schema, ClassDef, Type};
//! # use monoid_calculus::symbol::Symbol;
//! # let mut schema = Schema::new();
//! # schema.add_class(ClassDef {
//! #     name: Symbol::new("DocCity"),
//! #     state: Type::record(vec![(Symbol::new("name"), Type::Str)]),
//! #     extent: Some(Symbol::new("DocCities")),
//! #     superclass: None,
//! # });
//! let q = compile(&schema, "select c.name from c in DocCities").unwrap();
//! assert_eq!(pretty(&q), "bag{ c.name | c ← DocCities }");
//! ```

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;
pub mod translate;
pub mod unparse;

pub use error::OqlError;
pub use parser::{parse_program, parse_query};
pub use translate::{compile, compile_analyzed, compile_typed, Translator};
pub use unparse::{unparse, unparse_program};
