//! OQL front-end errors: lexing, parsing, and translation (which folds in
//! calculus type errors, including the paper's C/I legality violations).

use crate::token::Pos;
use monoid_calculus::error::TypeError;
use std::fmt;

/// Any error from the OQL front end.
#[derive(Debug, Clone, PartialEq)]
pub enum OqlError {
    /// Lexical error at a position.
    Lex { pos: Pos, msg: String },
    /// Parse error at a position.
    Parse { pos: Pos, msg: String },
    /// Translation-time error (unknown name, unsupported construct, …).
    Translate(String),
    /// A calculus type error surfaced while translating (e.g. an illegal
    /// homomorphism).
    Type(TypeError),
}

impl OqlError {
    pub fn lex(pos: Pos, msg: impl Into<String>) -> OqlError {
        OqlError::Lex { pos, msg: msg.into() }
    }

    pub fn parse(pos: Pos, msg: impl Into<String>) -> OqlError {
        OqlError::Parse { pos, msg: msg.into() }
    }

    pub fn translate(msg: impl Into<String>) -> OqlError {
        OqlError::Translate(msg.into())
    }
}

impl fmt::Display for OqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OqlError::Lex { pos, msg } => write!(f, "lex error at {pos}: {msg}"),
            OqlError::Parse { pos, msg } => write!(f, "parse error at {pos}: {msg}"),
            OqlError::Translate(msg) => write!(f, "translation error: {msg}"),
            OqlError::Type(e) => write!(f, "type error: {e}"),
        }
    }
}

impl std::error::Error for OqlError {}

impl From<TypeError> for OqlError {
    fn from(e: TypeError) -> OqlError {
        OqlError::Type(e)
    }
}
